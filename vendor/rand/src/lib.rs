//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the rand 0.8 API the workspace
//! uses: a seedable deterministic generator ([`rngs::StdRng`]), the
//! [`Rng`] extension trait with `gen`, `gen_range`, and `gen_bool`, and
//! [`seq::SliceRandom::shuffle`].
//!
//! Determinism contract: the same seed always produces the same stream on
//! every platform (xoshiro256** seeded via SplitMix64). Streams are NOT
//! bit-compatible with the real rand crate — every consumer in this
//! workspace only relies on seed-determinism, never on specific values.

/// A source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full value range of the
/// `Standard` distribution (here: only what the workspace needs).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`. Panics if `low >= high`.
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

#[inline]
fn uniform_u64<R: RngCore>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX % width);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % width;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let width = (high - low) as u64;
                low + uniform_u64(rng, width) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                if low == high {
                    return low;
                }
                let width = (high - low) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low + uniform_u64(rng, width + 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        loop {
            let u = f64::sample_standard(rng);
            let v = low + (high - low) * u;
            // Floating rounding can land exactly on `high`; resample.
            if v < high {
                return v;
            }
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "gen_range: empty range");
        if low == high {
            return low;
        }
        let u = f64::sample_standard(rng);
        low + (high - low) * u
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing random-value extension trait.
pub trait Rng: RngCore + Sized {
    /// Draws a value from the standard distribution for `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic, portable).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! The workspace's deterministic generator.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's
    /// ChaCha12-based `StdRng`; seed-deterministic but not stream
    /// compatible with the real crate).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice shuffling.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y: usize = rng.gen_range(5..8);
            assert!((5..8).contains(&y));
            let z: f64 = rng.gen_range(1.0..=1.0);
            assert_eq!(z, 1.0);
            let w: u64 = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
    }

    #[test]
    fn unit_interval_is_half_open() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
