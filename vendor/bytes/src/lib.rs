//! Offline stand-in for the `bytes` crate.
//!
//! [`BytesMut`] is a growable buffer with big-endian `put_*` writers;
//! [`Bytes`] is a cheaply cloneable shared view with big-endian `get_*`
//! readers that consume from the front. Both APIs are exposed through the
//! [`Buf`] / [`BufMut`] traits so `use bytes::{Buf, BufMut, ...}` works
//! exactly as with the real crate. Readers panic when the buffer runs
//! short, matching the real crate; callers bound-check via
//! [`Buf::remaining`].

use std::ops::Range;
use std::sync::Arc;

/// Read access to a contiguous byte cursor (big-endian decoders).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }

    /// Reads `N` bytes into an array (helper behind the `get_*`s).
    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

/// Write access to a growable byte buffer (big-endian encoders).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Growable write buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable shared [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
            start: 0,
            end_offset: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Cheaply cloneable immutable byte buffer; reading consumes from the
/// front of this view without affecting clones.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    /// Distance of this view's end from the end of `data`.
    end_offset: usize,
}

impl Bytes {
    /// A view over a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
            start: 0,
            end_offset: 0,
        }
    }

    fn end(&self) -> usize {
        self.data.len() - self.end_offset
    }

    /// Unread length of this view.
    pub fn len(&self) -> usize {
        self.end() - self.start
    }

    /// `true` if fully consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the unread bytes (shares the allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`Bytes::len`].
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end_offset: self.data.len() - (self.start + range.end),
        }
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end()]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::new(data),
            start: 0,
            end_offset: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_round_trip() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f64(1.5);
        b.put_slice(&[9, 9]);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 2);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.chunk(), &[9, 9]);
    }

    #[test]
    fn slice_is_a_shared_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(1..4);
        assert_eq!(mid.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 6);
        let empty = b.slice(0..0);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic]
    fn get_past_end_panics() {
        let mut b = Bytes::from_static(b"x");
        let _ = b.get_u32();
    }

    #[test]
    fn reading_does_not_affect_clones() {
        let mut a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        let _ = a.get_u16();
        assert_eq!(a.remaining(), 2);
        assert_eq!(b.remaining(), 4);
    }
}
