//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, range and tuple strategies,
//! `prop_map`, `proptest::collection::vec`, `proptest::bool::ANY`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated deterministically from the test name, so a failure
//! reproduces on re-run. There is no shrinking: the failing case's number
//! is reported instead, and `PROPTEST_CASE=<n>` re-runs just that case.

/// Deterministic generator driving case generation (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds a generator; same seed, same cases, every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = move || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, width)`.
    #[inline]
    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        let zone = u64::MAX - (u64::MAX % width);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % width;
            }
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs did not satisfy a `prop_assume!` precondition.
    Reject,
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if lo == hi { return lo; }
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        loop {
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v < self.end {
                return v;
            }
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod bool {
    //! Boolean strategies.

    use super::{Strategy, TestRng};

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s with lengths drawn from `len` and
    /// elements from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vector strategy over `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The case loop behind the `proptest!` macro.

    pub use super::{ProptestConfig, TestCaseError, TestRng};

    /// Runs `cases` deterministic cases of `body`, reporting the first
    /// failure with enough context to reproduce it.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let only: Option<u32> = std::env::var("PROPTEST_CASE")
            .ok()
            .and_then(|v| v.parse().ok());
        let mut rejected = 0u32;
        let mut case = 0u32;
        let mut executed = 0u32;
        while executed < config.cases {
            if let Some(target) = only {
                if case != target {
                    case += 1;
                    executed += 1;
                    continue;
                }
            }
            let mut rng = TestRng::seed_from_u64(base ^ (u64::from(case) << 32));
            match body(&mut rng) {
                Ok(()) => {
                    case += 1;
                    executed += 1;
                }
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    case += 1;
                    assert!(
                        rejected < config.cases.saturating_mul(16).max(1024),
                        "{name}: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: case {case} failed: {msg}\n\
                         (re-run just this case with PROPTEST_CASE={case})"
                    );
                }
            }
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    //! Everything the tests import.

    pub use crate::bool as prop_bool;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                #[allow(unused_mut)]
                let mut case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                case()
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`) at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left != right` (both: `{:?}`) at {}:{}",
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_work(
            x in 0usize..10,
            (a, b) in (0.0..1.0f64, 5u64..9),
            v in crate::collection::vec(0u32..100, 1..5),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(x < 10);
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((5..9).contains(&b));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 100));
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = (0.0..1000.0f64, 0usize..50).prop_map(|(f, i)| (f, i));
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
        }
    }
}
