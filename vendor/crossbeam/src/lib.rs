//! Offline stand-in for the `crossbeam` crate.
//!
//! `thread::scope` wraps `std::thread::scope` (available since Rust
//! 1.63) behind crossbeam's callback signature — the closure receives a
//! `&Scope` with a `spawn(|_| ...)` method and `scope` returns
//! `thread::Result<R>`. `channel` re-exports multi-producer channels
//! backed by `std::sync::mpsc` with crossbeam's `unbounded()` /
//! `Sender` / `Receiver` names.

pub mod thread {
    //! Scoped threads.

    /// Result of a whole scope: `Err` if any panic escaped a spawned
    /// thread (after all threads joined), mirroring crossbeam.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle for spawning threads tied to the scope's lifetime.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature) so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    //! Multi-producer channels (std-backed).

    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Sending half; cloneable across threads.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; errors if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    /// Receiving half. Cloneable (crossbeam channels are MPMC); clones
    /// share one underlying std receiver behind a mutex.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; errors once the channel is empty
        /// and all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .recv()
                .map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .expect("channel receiver poisoned")
                .try_recv()
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }

        /// Blocking iterator over remaining values.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Blocking iterator; ends when the channel disconnects.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    /// Error: message could not be delivered (receivers dropped).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error: channel is empty and disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing available right now.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Creates a channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3];
        let sum = crate::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(|_| data.len() as u64);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 9);
    }

    #[test]
    fn scope_surfaces_panics() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_roundtrip_multi_producer() {
        let (tx, rx) = crate::channel::unbounded::<(usize, u32)>();
        crate::thread::scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send((i, i as u32 * 10)).unwrap());
            }
        })
        .unwrap();
        drop(tx);
        let mut got: Vec<_> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 0), (1, 10), (2, 20), (3, 30)]);
    }
}
