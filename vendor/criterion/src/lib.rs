//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with real timing:
//! each benchmark is warmed up, then measured over a fixed wall-clock
//! budget, and the median per-iteration time is printed.
//!
//! No statistical analysis, HTML reports, or baseline files; the point
//! is honest relative numbers from `cargo bench` in an offline build.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier so the optimizer cannot delete benchmarked work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain arg.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1200),
            filter,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.full, f);
        self
    }

    fn run_one<F>(&self, full_name: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: run the routine until the budget elapses.
        let mut bencher = Bencher {
            budget: self.warm_up,
            samples: Vec::new(),
        };
        f(&mut bencher);
        // Measurement.
        let mut bencher = Bencher {
            budget: self.measure,
            samples: Vec::with_capacity(64),
        };
        f(&mut bencher);
        let mut per_iter = bencher.samples;
        if per_iter.is_empty() {
            println!("{full_name:<56} (no samples)");
            return;
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        println!(
            "{full_name:<56} median {:>12} (min {}, max {}, {} samples)",
            fmt_nanos(median),
            fmt_nanos(lo),
            fmt_nanos(hi),
            per_iter.len()
        );
    }
}

fn fmt_nanos(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Benchmarks `f` under `group/id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Accepted for API compatibility; sampling here is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Ends the group (no-op; exists to match the real API).
    pub fn finish(self) {}
}

/// Identifier for one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just a parameter, for single-function groups.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: Vec<u128>,
}

impl Bencher {
    /// Times repeated calls of `routine` until the budget elapses,
    /// recording per-iteration nanoseconds in batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate batch size so each sample is ~100us of work.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().as_nanos().max(1);
        let batch = (100_000 / one).clamp(1, 100_000) as u32;

        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let per_iter = t0.elapsed().as_nanos() / u128::from(batch);
            self.samples.push(per_iter);
        }
    }
}

/// Declares a group of benchmark entry points.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            budget: Duration::from_millis(20),
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(3));
            acc
        });
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn ids_format_as_expected() {
        let id = BenchmarkId::new("rrstr", 25);
        assert_eq!(id.full, "rrstr/25");
        let id = BenchmarkId::from_parameter("GMP");
        assert_eq!(id.full, "GMP");
    }
}
