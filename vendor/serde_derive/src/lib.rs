//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! the workspace only needs the derives to compile, not to produce
//! impls, because no serializer backend exists in the offline build.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
