//! Offline stand-in for the `serde` crate.
//!
//! The workspace uses serde only as derive markers on config structs (no
//! serializer backend is present in the offline build), so this crate
//! provides the `Serialize` / `Deserialize` trait names and re-exports
//! no-op derive macros of the same names. Code that derives them
//! compiles unchanged; actual (de)serialization is simply not available
//! until the real crate can be fetched.

/// Marker for types that can be serialized (no backend available here).
pub trait Serialize {}

/// Marker for types that can be deserialized (no backend available here).
pub trait Deserialize<'de> {}

/// Owned-deserialization marker, mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
