//! Minimal SVG rendering of topologies, Steiner trees, and multicast routes.
//!
//! The examples use this module to emit figures comparable to the paper's
//! diagrams (Figures 1, 4, 8). No external dependencies; the output is a
//! plain SVG string the caller can write to a file.

use std::fmt::Write as _;

use gmp_geom::{Aabb, Point};

/// An SVG scene being assembled. Coordinates are in network meters; the
/// renderer flips the y-axis so north is up.
#[derive(Debug)]
pub struct SvgScene {
    bounds: Aabb,
    body: String,
}

impl SvgScene {
    /// Creates a scene covering `bounds` (typically the deployment area).
    pub fn new(bounds: Aabb) -> Self {
        SvgScene {
            bounds,
            body: String::new(),
        }
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        (p.x - self.bounds.min.x, self.bounds.max.y - p.y)
    }

    /// Draws a filled circle of radius `r` meters at `p`.
    pub fn circle(&mut self, p: Point, r: f64, color: &str) -> &mut Self {
        let (x, y) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{r:.2}" fill="{color}"/>"#
        );
        self
    }

    /// Draws an unfilled circle (e.g. a radio range) at `p`.
    pub fn ring(&mut self, p: Point, r: f64, color: &str) -> &mut Self {
        let (x, y) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.2}" cy="{y:.2}" r="{r:.2}" fill="none" stroke="{color}" stroke-width="1" stroke-dasharray="4 4"/>"#
        );
        self
    }

    /// Draws a line segment between two points.
    pub fn line(&mut self, a: Point, b: Point, color: &str, width: f64) -> &mut Self {
        let (x1, y1) = self.tx(a);
        let (x2, y2) = self.tx(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{color}" stroke-width="{width:.2}"/>"#
        );
        self
    }

    /// Draws a dashed line segment (used for virtual Steiner tree edges,
    /// mirroring the paper's figures).
    pub fn dashed_line(&mut self, a: Point, b: Point, color: &str, width: f64) -> &mut Self {
        let (x1, y1) = self.tx(a);
        let (x2, y2) = self.tx(b);
        let _ = writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{color}" stroke-width="{width:.2}" stroke-dasharray="6 4"/>"#
        );
        self
    }

    /// Draws a text label at `p`.
    pub fn label(&mut self, p: Point, text: &str, color: &str) -> &mut Self {
        let (x, y) = self.tx(p);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="12" fill="{color}">{text}</text>"#
        );
        self
    }

    /// Finalizes the scene into a standalone SVG document.
    pub fn finish(&self) -> String {
        let w = self.bounds.width();
        let h = self.bounds.height();
        format!(
            concat!(
                r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" "#,
                r#"viewBox="0 0 {w} {h}">"#,
                "\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n{body}</svg>\n"
            ),
            w = w,
            h = h,
            body = self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scene_renders_valid_svg_shell() {
        let mut s = SvgScene::new(Aabb::square(100.0));
        s.circle(Point::new(10.0, 10.0), 2.0, "black")
            .ring(Point::new(10.0, 10.0), 20.0, "gray")
            .line(Point::new(0.0, 0.0), Point::new(100.0, 100.0), "blue", 1.0)
            .dashed_line(Point::new(0.0, 100.0), Point::new(100.0, 0.0), "red", 1.0)
            .label(Point::new(50.0, 50.0), "s", "black");
        let svg = s.finish();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("<circle"));
        assert!(svg.contains("stroke-dasharray"));
        assert!(svg.contains(">s</text>"));
    }

    #[test]
    fn y_axis_is_flipped() {
        let mut s = SvgScene::new(Aabb::square(100.0));
        s.circle(Point::new(0.0, 0.0), 1.0, "black");
        let svg = s.finish();
        // Network origin (bottom-left) maps to SVG (0, 100).
        assert!(svg.contains(r#"cx="0.00" cy="100.00""#));
    }
}
