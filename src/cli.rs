//! The `gmp` command-line tool: generate, inspect, run, and render
//! scenarios from the shell.
//!
//! ```text
//! gmp generate --nodes 500 --area 800 --seed 7 --tasks 10 --k 12 OUT.txt
//! gmp info SCENARIO.txt
//! gmp run SCENARIO.txt --protocol gmp
//! gmp render SCENARIO.txt OUT.svg [--task N --protocol gmp]
//! ```
//!
//! The command logic lives in [`run_cli`] (taking arguments and returning
//! the report text) so integration tests can drive it without spawning a
//! process.

use std::fmt::Write as _;
use std::path::PathBuf;

use gmp_baselines::{DsmRouter, GrdRouter, LgkRouter, LgsRouter, PbmRouter, SmtRouter};
use gmp_core::GmpRouter;
use gmp_net::Topology;
use gmp_sim::{MulticastTask, Protocol, Scenario, SimConfig, TaskRunner};

use crate::viz::SvgScene;

/// Builds a protocol by CLI name.
///
/// # Errors
///
/// Returns the list of valid names when `name` is unknown.
pub fn protocol_by_name(name: &str) -> Result<Box<dyn Protocol>, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "gmp" => Box::new(GmpRouter::new()),
        "gmpnr" => Box::new(GmpRouter::without_radio_range_awareness()),
        "pbm" => Box::new(PbmRouter::new()),
        "lgs" => Box::new(LgsRouter::new()),
        "lgk" => Box::new(LgkRouter::new(2)),
        "grd" => Box::new(GrdRouter::new()),
        "dsm" => Box::new(DsmRouter::new()),
        "smt" => Box::new(SmtRouter::new()),
        other => {
            return Err(format!(
                "unknown protocol `{other}` (expected gmp|gmpnr|pbm|lgs|lgk|grd|dsm|smt)"
            ))
        }
    })
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = args.remove(i + 1);
        args.remove(i);
        value
            .parse()
            .map_err(|_| format!("bad value for {flag}: {value}"))
    } else {
        Ok(default)
    }
}

/// Runs one CLI invocation and returns the text to print.
///
/// # Errors
///
/// Returns a usage or processing error message.
pub fn run_cli(args: &[String]) -> Result<String, String> {
    let mut args: Vec<String> = args.to_vec();
    if args.is_empty() {
        return Err(usage());
    }
    let command = args.remove(0);
    match command.as_str() {
        "generate" => cmd_generate(args),
        "info" => cmd_info(args),
        "run" => cmd_run(args),
        "render" => cmd_render(args),
        "--help" | "-h" | "help" => Ok(usage()),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    concat!(
        "gmp — geographic multicast toolbox\n\n",
        "commands:\n",
        "  generate --nodes N --area M --seed S --tasks T --k K OUT.txt\n",
        "  info SCENARIO.txt\n",
        "  run SCENARIO.txt [--protocol gmp|gmpnr|pbm|lgs|lgk|grd|dsm|smt]\n",
        "  render SCENARIO.txt OUT.svg [--task N] [--protocol NAME]\n"
    )
    .to_string()
}

fn cmd_generate(mut args: Vec<String>) -> Result<String, String> {
    let nodes: usize = parse_flag(&mut args, "--nodes", 500)?;
    let area: f64 = parse_flag(&mut args, "--area", 1000.0)?;
    let seed: u64 = parse_flag(&mut args, "--seed", 0)?;
    let tasks: usize = parse_flag(&mut args, "--tasks", 10)?;
    let k: usize = parse_flag(&mut args, "--k", 12)?;
    let radio: f64 = parse_flag(&mut args, "--radio-range", 150.0)?;
    let out = args.pop().ok_or("generate needs an output path")?;
    if !args.is_empty() {
        return Err(format!("unexpected arguments: {args:?}"));
    }
    let config = SimConfig::paper()
        .with_area_side(area)
        .with_node_count(nodes)
        .with_radio_range(radio);
    let topo = Topology::random(&config.topology_config(), seed);
    let tasks: Vec<MulticastTask> = (0..tasks)
        .map(|t| MulticastTask::random(&topo, k, seed * 1000 + t as u64))
        .collect();
    let scenario = Scenario::capture(&topo, tasks);
    scenario
        .save(&PathBuf::from(&out))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    Ok(format!(
        "wrote {out}: {nodes} nodes over {area}×{area} m, {} tasks of k={k}\n",
        scenario.tasks.len()
    ))
}

fn load(path: &str) -> Result<Scenario, String> {
    Scenario::load(&PathBuf::from(path)).map_err(|e| format!("cannot load {path}: {e}"))
}

fn cmd_info(args: Vec<String>) -> Result<String, String> {
    let path = args.first().ok_or("info needs a scenario path")?;
    let scenario = load(path)?;
    let topo = scenario.topology();
    let mut out = String::new();
    let _ = writeln!(out, "scenario   : {path}");
    let _ = writeln!(
        out,
        "area       : {:.0} × {:.0} m",
        topo.area().width(),
        topo.area().height()
    );
    let _ = writeln!(out, "nodes      : {}", topo.len());
    let _ = writeln!(out, "radio range: {:.0} m", topo.radio_range());
    let _ = writeln!(out, "avg degree : {:.1}", topo.average_degree());
    let _ = writeln!(out, "connected  : {}", topo.is_connected());
    let _ = writeln!(out, "tasks      : {}", scenario.tasks.len());
    for (i, t) in scenario.tasks.iter().enumerate() {
        let _ = writeln!(out, "  task {i}: {} → {} destinations", t.source, t.k());
    }
    Ok(out)
}

fn cmd_run(mut args: Vec<String>) -> Result<String, String> {
    let protocol_name: String = parse_flag(&mut args, "--protocol", "gmp".to_string())?;
    let path = args.first().ok_or("run needs a scenario path")?;
    let scenario = load(path)?;
    let topo = scenario.topology();
    let config = SimConfig::paper()
        .with_area_side(topo.area().width())
        .with_node_count(topo.len())
        .with_radio_range(topo.radio_range());
    let runner = TaskRunner::new(&topo, &config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>10} {:>14} {:>12} {:>10}",
        "task", "hops", "per-dest hops", "energy (J)", "delivered"
    );
    let mut total_hops = 0usize;
    let mut failures = 0usize;
    for (i, task) in scenario.tasks.iter().enumerate() {
        let mut proto = protocol_by_name(&protocol_name)?;
        let report = runner.run(proto.as_mut(), task);
        total_hops += report.transmissions;
        if !report.delivered_all() {
            failures += 1;
        }
        let _ = writeln!(
            out,
            "{:<6} {:>10} {:>14.2} {:>12.3} {:>7}/{}",
            i,
            report.transmissions,
            report.mean_dest_hops().unwrap_or(f64::NAN),
            report.energy_j,
            report.delivered_count(),
            task.k()
        );
    }
    let _ = writeln!(
        out,
        "\n{} tasks, protocol {}: {} total transmissions, {} failed task(s)",
        scenario.tasks.len(),
        protocol_name,
        total_hops,
        failures
    );
    Ok(out)
}

fn cmd_render(mut args: Vec<String>) -> Result<String, String> {
    let protocol_name: String = parse_flag(&mut args, "--protocol", "gmp".to_string())?;
    let task_idx: usize = parse_flag(&mut args, "--task", 0)?;
    if args.len() != 2 {
        return Err("render needs SCENARIO.txt and OUT.svg".into());
    }
    let scenario = load(&args[0])?;
    let topo = scenario.topology();
    let task = scenario
        .tasks
        .get(task_idx)
        .ok_or_else(|| format!("scenario has no task {task_idx}"))?;
    let config = SimConfig::paper()
        .with_area_side(topo.area().width())
        .with_node_count(topo.len())
        .with_radio_range(topo.radio_range());
    let mut proto = protocol_by_name(&protocol_name)?;
    let report = TaskRunner::new(&topo, &config).run(proto.as_mut(), task);
    let mut scene = SvgScene::new(topo.area());
    for node in topo.nodes() {
        scene.circle(node.pos, 1.5, "#cccccc");
    }
    for &(a, b) in &report.links {
        scene.line(topo.pos(a), topo.pos(b), "#3366cc", 1.2);
    }
    scene.circle(topo.pos(task.source), 6.0, "#118811");
    for &d in &task.dests {
        scene.circle(topo.pos(d), 5.0, "#cc3311");
    }
    std::fs::write(&args[1], scene.finish()).map_err(|e| format!("cannot write svg: {e}"))?;
    Ok(format!(
        "rendered task {task_idx} ({} transmissions, {}/{} delivered) to {}\n",
        report.transmissions,
        report.delivered_count(),
        task.k(),
        args[1]
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("gmp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_info_run_render_pipeline() {
        let scenario_path = tmp("pipeline.txt");
        let svg_path = tmp("pipeline.svg");
        let out = run_cli(&s(&[
            "generate",
            "--nodes",
            "200",
            "--area",
            "600",
            "--seed",
            "3",
            "--tasks",
            "3",
            "--k",
            "6",
            &scenario_path,
        ]))
        .unwrap();
        assert!(out.contains("200 nodes"));

        let info = run_cli(&s(&["info", &scenario_path])).unwrap();
        assert!(info.contains("nodes      : 200"));
        assert!(info.contains("tasks      : 3"));

        for proto in ["gmp", "gmpnr", "lgs", "grd", "dsm", "smt", "pbm", "lgk"] {
            let run = run_cli(&s(&["run", &scenario_path, "--protocol", proto])).unwrap();
            assert!(run.contains("3 tasks"), "{proto}: {run}");
        }

        let render = run_cli(&s(&[
            "render",
            &scenario_path,
            &svg_path,
            "--task",
            "1",
            "--protocol",
            "gmp",
        ]))
        .unwrap();
        assert!(render.contains("rendered task 1"));
        let svg = std::fs::read_to_string(&svg_path).unwrap();
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn helpful_errors() {
        assert!(run_cli(&[]).is_err());
        assert!(run_cli(&s(&["bogus"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run_cli(&s(&["run"])).is_err());
        assert!(run_cli(&s(&["run", "/nonexistent/file.txt"]))
            .unwrap_err()
            .contains("cannot load"));
        assert!(protocol_by_name("nope").is_err());
        let help = run_cli(&s(&["help"])).unwrap();
        assert!(help.contains("generate"));
    }

    #[test]
    fn flag_parsing() {
        let mut args = s(&["--nodes", "42", "rest"]);
        let n: usize = parse_flag(&mut args, "--nodes", 7).unwrap();
        assert_eq!(n, 42);
        assert_eq!(args, s(&["rest"]));
        let d: usize = parse_flag(&mut args, "--nodes", 7).unwrap();
        assert_eq!(d, 7);
        let mut bad = s(&["--nodes"]);
        assert!(parse_flag::<usize>(&mut bad, "--nodes", 7).is_err());
        let mut notnum = s(&["--nodes", "abc"]);
        assert!(parse_flag::<usize>(&mut notnum, "--nodes", 7).is_err());
    }
}
