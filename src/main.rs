//! Thin binary wrapper around [`gmp::cli::run_cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match gmp::cli::run_cli(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
