//! # GMP: Distributed Geographic Multicast Routing in Wireless Sensor Networks
//!
//! Facade crate for the reproduction of Wu & Candan (ICDCS 2006). It
//! re-exports the whole workspace under a single dependency:
//!
//! * [`geom`] — 2-D geometry, including the exact 3-point Fermat/Steiner point;
//! * [`net`] — network model, topologies, planarization, face routing;
//! * [`steiner`] — the rrSTR heuristic, reduction ratio, MST, and KMB;
//! * [`sim`] — the discrete-event WSN simulator and metrics;
//! * [`gmp`] — the GMP protocol itself (the paper's contribution);
//! * [`baselines`] — PBM, LGS, LGK, GRD, and centralized SMT comparators;
//! * [`groups`] — source-maintained multicast group membership (extension);
//! * [`viz`] — SVG rendering of topologies, trees, and routes.
//!
//! # Quickstart
//!
//! ```
//! use gmp::net::Topology;
//! use gmp::sim::{MulticastTask, SimConfig, TaskRunner};
//! use gmp::gmp::GmpRouter;
//!
//! // Small random network (paper-scale would be 1000 nodes over 1 km²).
//! let config = SimConfig::paper().with_area_side(500.0).with_node_count(150);
//! let topo = Topology::random(&config.topology_config(), 42);
//! let task = MulticastTask::random(&topo, 5, 7);
//! let report = TaskRunner::new(&topo, &config).run(&mut GmpRouter::new(), &task);
//! assert!(report.delivered_all());
//! ```

#![forbid(unsafe_code)]

pub use gmp_baselines as baselines;
pub use gmp_core as gmp;
pub use gmp_geom as geom;
pub use gmp_groups as groups;
pub use gmp_net as net;
pub use gmp_sim as sim;
pub use gmp_steiner as steiner;

pub mod cli;
pub mod viz;
