//! Property pins for the CSR adjacency layout and the sharded lazy
//! substrate.
//!
//! The CSR refactor and the tile-by-tile generator are pure storage/
//! scheduling changes — neither may alter a single neighbor list:
//!
//! * [`Topology`] adjacency (now CSR) must equal the brute-force O(n²)
//!   unit-disk adjacency the original `Vec<Vec<NodeId>>` path computed,
//!   across seeds, placements, and hole configs;
//! * lazy [`ShardedTopology`] queries must be bit-identical to the eager
//!   topology built from its full materialization — same node order, same
//!   positions, same sorted neighbor lists — regardless of the order tiles
//!   are faulted in.

use gmp_geom::{Aabb, Point};
use gmp_net::topology::{Hole, Placement};
use gmp_net::{NodeId, ShardConfig, ShardedTopology, Topology, TopologyConfig};
use proptest::prelude::*;

/// The pre-CSR reference: brute-force unit-disk adjacency, sorted rows.
fn brute_force_adjacency(positions: &[Point], radio_range: f64) -> Vec<Vec<NodeId>> {
    let rr_sq = radio_range * radio_range;
    (0..positions.len())
        .map(|i| {
            let mut row: Vec<NodeId> = (0..positions.len())
                .filter(|&j| j != i && positions[i].dist_sq(positions[j]) <= rr_sq)
                .map(|j| NodeId(j as u32))
                .collect();
            row.sort();
            row
        })
        .collect()
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    (0usize..3, 0.0f64..20.0, 1usize..4, 20.0f64..60.0).prop_map(
        |(which, jitter, clusters, spread)| match which {
            0 => Placement::UniformRandom,
            1 => Placement::GridJitter { jitter },
            _ => Placement::Clustered { clusters, spread },
        },
    )
}

/// Holes that never cover the whole 500 m area: small circles away from
/// the corners.
fn holes_strategy() -> impl Strategy<Value = Vec<Hole>> {
    proptest::collection::vec(
        (100.0f64..400.0, 100.0f64..400.0, 30.0f64..80.0).prop_map(|(x, y, radius)| Hole::Circle {
            center: Point::new(x, y),
            radius,
        }),
        0..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csr_adjacency_matches_brute_force(
        seed in 0u64..1000,
        n in 60usize..200,
        placement in placement_strategy(),
        holes in holes_strategy(),
    ) {
        let mut config = TopologyConfig::new(500.0, n, 120.0).with_placement(placement);
        config.holes = holes;
        let topo = Topology::random(&config, seed);
        let want = brute_force_adjacency(topo.positions_ref(), 120.0);
        prop_assert_eq!(topo.adjacency().rows(), n);
        for (i, row) in want.iter().enumerate() {
            prop_assert_eq!(topo.neighbors(NodeId(i as u32)), row.as_slice(), "node {}", i);
        }
    }

    #[test]
    fn lazy_substrate_matches_full_materialization(
        seed in 0u64..1000,
        n in 200usize..600,
        holes in holes_strategy(),
    ) {
        let mut config = ShardConfig::new(900.0, n, 150.0).with_tile_side(300.0);
        config.holes = holes;
        let st = ShardedTopology::new(config, seed);
        let full = st.materialize_full();
        prop_assert_eq!(full.len(), n);
        let mut out = Vec::new();
        for i in 0..n {
            let id = NodeId(i as u32);
            prop_assert_eq!(st.pos(id), full.pos(id), "position of node {}", i);
            st.neighbors_into(id, &mut out);
            prop_assert_eq!(out.as_slice(), full.neighbors(id), "neighbors of node {}", i);
        }
    }

    #[test]
    fn region_interior_matches_full_network(
        seed in 0u64..500,
        wx in 0.0f64..500.0,
        wy in 0.0f64..500.0,
    ) {
        let st = ShardedTopology::new(
            ShardConfig::new(1200.0, 900, 150.0).with_tile_side(300.0),
            seed,
        );
        let full = st.materialize_full();
        let window = Aabb::new(Point::new(wx, wy), Point::new(wx + 400.0, wy + 400.0));
        let view = st.materialize_region(window);
        let rr = st.radio_range();
        let b = view.topology.area();
        for local in 0..view.topology.len() {
            let lid = NodeId(local as u32);
            let p = view.topology.pos(lid);
            let interior = p.x - b.min.x > rr
                && b.max.x - p.x > rr
                && p.y - b.min.y > rr
                && b.max.y - p.y > rr;
            if !interior {
                continue;
            }
            let got: Vec<NodeId> = view
                .topology
                .neighbors(lid)
                .iter()
                .map(|&nb| view.global(nb))
                .collect();
            prop_assert_eq!(
                got.as_slice(),
                full.neighbors(view.global(lid)),
                "interior node {:?}", view.global(lid)
            );
        }
    }
}

/// Tile materialization order must not influence anything: fault tiles in
/// three different orders and compare every neighbor list.
#[test]
fn materialization_order_is_irrelevant() {
    let config = || ShardConfig::new(900.0, 500, 150.0).with_tile_side(300.0);
    let forward = ShardedTopology::new(config(), 11);
    let backward = ShardedTopology::new(config(), 11);
    let lazy = ShardedTopology::new(config(), 11);
    let full_fwd = forward.materialize_full();
    // Touch tiles back-to-front via per-node queries before materializing.
    let mut out = Vec::new();
    for i in (0..backward.len()).rev() {
        backward.neighbors_into(NodeId(i as u32), &mut out);
    }
    let full_bwd = backward.materialize_full();
    assert_eq!(full_fwd.positions(), full_bwd.positions());
    for i in 0..lazy.len() {
        let id = NodeId(i as u32);
        lazy.neighbors_into(id, &mut out);
        assert_eq!(out.as_slice(), full_fwd.neighbors(id));
    }
}

/// A paper-scale sharded deployment agrees with the plain eager
/// constructor fed the same positions (node order, adjacency, planar
/// graphs are all downstream of these two facts).
#[test]
fn paper_scale_full_materialization_matches_eager_constructor() {
    let st = ShardedTopology::new(ShardConfig::paper_density(1000, 150.0), 42);
    let full = st.materialize_full();
    let eager = Topology::from_positions(full.positions(), full.area(), 150.0);
    assert_eq!(full.positions(), eager.positions());
    assert_eq!(full.adjacency(), eager.adjacency());
}
