//! Random-waypoint node mobility (extension).
//!
//! The paper evaluates static sensor networks, but its baselines (PBM,
//! LGS) come from the MANET literature where nodes move. This module
//! provides the standard random-waypoint model so the workspace can
//! quantify how stale position information degrades geographic
//! forwarding: each node repeatedly picks a uniform random waypoint,
//! travels there at a uniform random speed, pauses, and repeats.
//!
//! The model is purely kinematic: call [`RandomWaypoint::advance`] to move
//! time forward and [`RandomWaypoint::snapshot`] to materialize a
//! [`Topology`] of the current positions.

use gmp_geom::{Aabb, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::topology::Topology;

/// Per-node kinematic state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MobileNode {
    pos: Point,
    target: Point,
    speed: f64,
    pause_left: f64,
}

/// The random-waypoint mobility model.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    area: Aabb,
    radio_range: f64,
    speed_range: (f64, f64),
    pause_range: (f64, f64),
    nodes: Vec<MobileNode>,
    rng: StdRng,
    time: f64,
}

impl RandomWaypoint {
    /// Creates a model with `node_count` nodes placed uniformly at random.
    ///
    /// `speed_range` is in m/s and `pause_range` in seconds; both are
    /// inclusive and may be degenerate (`(v, v)`).
    ///
    /// # Panics
    ///
    /// Panics if a range is reversed or a speed is non-positive.
    pub fn new(
        area: Aabb,
        node_count: usize,
        radio_range: f64,
        speed_range: (f64, f64),
        pause_range: (f64, f64),
        seed: u64,
    ) -> Self {
        assert!(
            speed_range.0 > 0.0 && speed_range.0 <= speed_range.1,
            "bad speed range"
        );
        assert!(
            pause_range.0 >= 0.0 && pause_range.0 <= pause_range.1,
            "bad pause range"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = |rng: &mut StdRng| {
            Point::new(
                rng.gen_range(area.min.x..=area.max.x),
                rng.gen_range(area.min.y..=area.max.y),
            )
        };
        let nodes = (0..node_count)
            .map(|_| {
                let pos = sample(&mut rng);
                let target = sample(&mut rng);
                let speed = rng.gen_range(speed_range.0..=speed_range.1);
                MobileNode {
                    pos,
                    target,
                    speed,
                    pause_left: 0.0,
                }
            })
            .collect();
        RandomWaypoint {
            area,
            radio_range,
            speed_range,
            pause_range,
            nodes,
            rng,
            time: 0.0,
        }
    }

    /// The current simulated time, seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Current node positions.
    pub fn positions(&self) -> Vec<Point> {
        self.nodes.iter().map(|n| n.pos).collect()
    }

    /// Advances the model by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative or non-finite.
    pub fn advance(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt >= 0.0, "dt must be non-negative");
        self.time += dt;
        // Borrow the rng parts we need up front to appease the borrow
        // checker inside the loop.
        let speed_range = self.speed_range;
        let pause_range = self.pause_range;
        let area = self.area;
        for i in 0..self.nodes.len() {
            let mut remaining = dt;
            while remaining > 0.0 {
                let node = &mut self.nodes[i];
                if node.pause_left > 0.0 {
                    let pause = node.pause_left.min(remaining);
                    node.pause_left -= pause;
                    remaining -= pause;
                    continue;
                }
                let to_target = node.target - node.pos;
                let dist = to_target.norm();
                let step = node.speed * remaining;
                if step < dist {
                    node.pos += to_target * (step / dist);
                    remaining = 0.0;
                } else {
                    // Arrive, pause, then pick a new waypoint.
                    node.pos = node.target;
                    remaining -= dist / node.speed;
                    node.pause_left = self.rng.gen_range(pause_range.0..=pause_range.1);
                    node.target = Point::new(
                        self.rng.gen_range(area.min.x..=area.max.x),
                        self.rng.gen_range(area.min.y..=area.max.y),
                    );
                    node.speed = self.rng.gen_range(speed_range.0..=speed_range.1);
                }
            }
        }
    }

    /// Materializes the current positions as an immutable [`Topology`].
    pub fn snapshot(&self) -> Topology {
        Topology::from_positions(self.positions(), self.area, self.radio_range)
    }
}

/// Fraction of directed unit-disk links in `old` that no longer exist in
/// `new` — the staleness damage metric for geographic forwarding tables.
///
/// # Panics
///
/// Panics if the two topologies have different node counts.
pub fn broken_link_fraction(old: &Topology, new: &Topology) -> f64 {
    assert_eq!(old.len(), new.len(), "same node set required");
    let mut total = 0usize;
    let mut broken = 0usize;
    for node in old.nodes() {
        for &n in old.neighbors(node.id) {
            total += 1;
            if !new.neighbors(node.id).contains(&n) {
                broken += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        broken as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(seed: u64) -> RandomWaypoint {
        RandomWaypoint::new(Aabb::square(500.0), 80, 100.0, (1.0, 5.0), (0.0, 2.0), seed)
    }

    #[test]
    fn positions_stay_inside_the_area() {
        let mut m = model(1);
        for _ in 0..50 {
            m.advance(3.0);
            for p in m.positions() {
                assert!(m.area.contains(p), "node escaped to {p}");
            }
        }
    }

    #[test]
    fn movement_respects_the_speed_bound() {
        let mut m = model(2);
        let before = m.positions();
        let dt = 2.0;
        m.advance(dt);
        let after = m.positions();
        for (a, b) in before.iter().zip(&after) {
            assert!(
                a.dist(*b) <= 5.0 * dt + 1e-9,
                "node moved {} m in {dt} s at max speed 5 m/s",
                a.dist(*b)
            );
        }
    }

    #[test]
    fn advancing_is_deterministic_per_seed() {
        let mut a = model(3);
        let mut b = model(3);
        for _ in 0..10 {
            a.advance(1.5);
            b.advance(1.5);
        }
        assert_eq!(a.positions(), b.positions());
        let mut c = model(4);
        c.advance(15.0);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn zero_dt_is_a_no_op() {
        let mut m = model(5);
        let before = m.positions();
        m.advance(0.0);
        assert_eq!(m.positions(), before);
        assert_eq!(m.time(), 0.0);
    }

    #[test]
    fn time_accumulates() {
        let mut m = model(6);
        m.advance(1.0);
        m.advance(2.5);
        assert!((m.time() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_matches_positions() {
        let mut m = model(7);
        m.advance(4.0);
        let topo = m.snapshot();
        assert_eq!(topo.positions(), m.positions());
        assert_eq!(topo.radio_range(), 100.0);
    }

    #[test]
    fn broken_links_grow_with_staleness() {
        let mut m = model(8);
        let t0 = m.snapshot();
        m.advance(2.0);
        let t2 = m.snapshot();
        m.advance(18.0);
        let t20 = m.snapshot();
        let b0 = broken_link_fraction(&t0, &t0);
        let b2 = broken_link_fraction(&t0, &t2);
        let b20 = broken_link_fraction(&t0, &t20);
        assert_eq!(b0, 0.0);
        assert!(b2 <= b20, "staleness 2 s ({b2}) vs 20 s ({b20})");
        assert!(b20 > 0.0, "20 s of movement must break some links");
    }

    #[test]
    #[should_panic(expected = "speed range")]
    fn reversed_speed_range_panics() {
        RandomWaypoint::new(Aabb::square(100.0), 5, 50.0, (5.0, 1.0), (0.0, 0.0), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_dt_panics() {
        model(9).advance(-1.0);
    }
}
