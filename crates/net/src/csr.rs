//! Compressed sparse row (CSR) storage for per-node variable-length data.
//!
//! A `Vec<Vec<T>>` adjacency costs one heap allocation per node plus a
//! pointer-chasing indirection per lookup; at 10⁵–10⁶ nodes that is tens of
//! megabytes of allocator metadata and a cache miss per row. [`Csr`] packs
//! the same ragged data into exactly two flat arrays — `offsets` (one `u32`
//! per row plus a sentinel) and `data` — so row lookup is two adjacent
//! index reads and the whole structure is two allocations regardless of
//! node count.

use std::fmt;

/// Flat ragged-array storage: `row(i)` is `data[offsets[i]..offsets[i+1]]`.
///
/// Offsets are `u32`: the total element count must stay below 2³². A fully
/// materialized 1M-node unit-disk graph at the paper's density (~69
/// neighbors/node) is ~7 × 10⁷ entries, comfortably inside that — and the
/// sharded substrate never materializes whole-network adjacency anyway.
#[derive(Clone, PartialEq)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T> Csr<T> {
    /// An empty CSR with zero rows.
    pub fn new() -> Self {
        Csr {
            offsets: vec![0],
            data: Vec::new(),
        }
    }

    /// An empty CSR pre-sized for `rows` rows and `entries` total elements.
    pub fn with_capacity(rows: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Csr {
            offsets,
            data: Vec::with_capacity(entries),
        }
    }

    /// Builds a CSR from ragged rows, consuming them.
    pub fn from_rows<I>(rows: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = T>,
    {
        let mut csr = Csr::new();
        for row in rows {
            csr.push_row(row);
        }
        csr
    }

    /// Appends one row; elements are drained from `row`.
    ///
    /// # Panics
    ///
    /// Panics if the total element count would exceed `u32::MAX`.
    pub fn push_row<I: IntoIterator<Item = T>>(&mut self, row: I) {
        self.data.extend(row);
        let end = u32::try_from(self.data.len()).expect("CSR data exceeds u32 offsets");
        self.offsets.push(end);
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the CSR has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// Total number of stored elements across all rows.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// The `i`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.data[start..end]
    }

    /// Iterates over all rows in order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[T]> + '_ {
        (0..self.rows()).map(move |i| self.row(i))
    }

    /// Heap footprint in bytes (offsets + data), for memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.data.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Csr::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Csr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_csr_has_no_rows() {
        let csr: Csr<u32> = Csr::new();
        assert_eq!(csr.rows(), 0);
        assert!(csr.is_empty());
        assert_eq!(csr.total_len(), 0);
    }

    #[test]
    fn rows_round_trip() {
        let rows = vec![vec![1u32, 2, 3], vec![], vec![4], vec![5, 6]];
        let csr = Csr::from_rows(rows.clone());
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.total_len(), 6);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(csr.row(i), row.as_slice());
        }
        assert_eq!(csr.iter().count(), 4);
    }

    #[test]
    fn push_row_appends_in_order() {
        let mut csr = Csr::with_capacity(2, 4);
        csr.push_row([10i64, 20]);
        csr.push_row([30]);
        assert_eq!(csr.row(0), &[10, 20]);
        assert_eq!(csr.row(1), &[30]);
    }

    #[test]
    fn equality_is_structural() {
        let a = Csr::from_rows(vec![vec![1u8], vec![2, 3]]);
        let b = Csr::from_rows(vec![vec![1u8], vec![2, 3]]);
        let c = Csr::from_rows(vec![vec![1u8, 2], vec![3]]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn heap_bytes_counts_both_arrays() {
        let csr = Csr::from_rows(vec![vec![1u32, 2, 3]]);
        assert!(csr.heap_bytes() >= 3 * 4 + 2 * 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_row_panics() {
        let csr: Csr<u32> = Csr::new();
        let _ = csr.row(0);
    }
}
