//! Deployment topologies: node placement generators and the immutable
//! [`Topology`] the simulator and protocols operate on.

use std::sync::OnceLock;

use gmp_geom::{Aabb, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::Csr;
use crate::grid::GridIndex;
use crate::node::{Node, NodeId};
use crate::planar::{planarize, PlanarKind};

/// Cap on rejection-sampling attempts when drawing a node position that
/// avoids every hole. Hitting it means the holes (practically) cover the
/// sampling region; the generators panic with the offending hole config
/// instead of spinning forever.
pub(crate) const MAX_PLACEMENT_ATTEMPTS: usize = 100_000;

/// How nodes are placed in the deployment area.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Independently uniform over the area — the paper's deployment model
    /// ("1000 nodes are uniformly distributed in the network").
    UniformRandom,
    /// A regular √n × √n grid, with each node perturbed by a uniform jitter
    /// of at most `jitter` meters per axis. Useful for reproducible
    /// structured layouts.
    GridJitter {
        /// Maximum per-axis perturbation in meters.
        jitter: f64,
    },
    /// Gaussian clusters: `clusters` centers placed uniformly, each node
    /// assigned to a random center with normal spread `spread`.
    Clustered {
        /// Number of cluster centers.
        clusters: usize,
        /// Standard deviation of node positions around their center.
        spread: f64,
    },
}

/// An obstacle carved out of the deployment: no node is placed inside.
///
/// Holes create routing *voids*, exercising GMP's group splitting and
/// perimeter mode (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Hole {
    /// A circular void.
    Circle {
        /// Void center.
        center: Point,
        /// Void radius in meters.
        radius: f64,
    },
    /// A rectangular void.
    Rect(Aabb),
}

impl Hole {
    /// Returns `true` if `p` falls inside the hole.
    pub fn contains(&self, p: Point) -> bool {
        match *self {
            Hole::Circle { center, radius } => p.dist_sq(center) < radius * radius,
            Hole::Rect(r) => r.contains(p),
        }
    }
}

/// Parameters for generating a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyConfig {
    /// Deployment area.
    pub area: Aabb,
    /// Number of nodes to place.
    pub node_count: usize,
    /// Radio range in meters (the paper uses 150 m).
    pub radio_range: f64,
    /// Placement strategy.
    pub placement: Placement,
    /// Voids carved out of the deployment.
    pub holes: Vec<Hole>,
}

impl TopologyConfig {
    /// Convenience constructor: uniform placement over a square area of the
    /// given side, with no holes.
    pub fn new(area_side: f64, node_count: usize, radio_range: f64) -> Self {
        TopologyConfig {
            area: Aabb::square(area_side),
            node_count,
            radio_range,
            placement: Placement::UniformRandom,
            holes: Vec::new(),
        }
    }

    /// The paper's Table 1 deployment: 1000 nodes uniform over
    /// 1000 m × 1000 m with a 150 m radio range.
    pub fn paper() -> Self {
        TopologyConfig::new(1000.0, 1000, 150.0)
    }

    /// Replaces the placement strategy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Adds a hole (void) to the deployment.
    pub fn with_hole(mut self, hole: Hole) -> Self {
        self.holes.push(hole);
        self
    }

    /// Replaces the node count (used for the Fig. 15 density sweep).
    pub fn with_node_count(mut self, node_count: usize) -> Self {
        self.node_count = node_count;
        self
    }
}

/// An immutable node deployment with precomputed unit-disk adjacency.
///
/// All protocol code receives a `&Topology` and may only use *local*
/// information from it (its own position and its neighbors' positions);
/// the centralized SMT baseline is the documented exception.
///
/// Storage is struct-of-arrays: node positions live in one flat `Vec`
/// (a node record is synthesized on demand by [`Topology::nodes`]) and
/// adjacency, planar subgraphs, and neighbor distances are [`Csr`] layouts
/// — two flat arrays each, independent of node count.
#[derive(Debug)]
pub struct Topology {
    positions: Vec<Point>,
    area: Aabb,
    radio_range: f64,
    adjacency: Csr<NodeId>,
    gabriel: OnceLock<Csr<NodeId>>,
    rng_graph: OnceLock<Csr<NodeId>>,
    neighbor_dists: OnceLock<Csr<f64>>,
}

impl Topology {
    /// Builds a topology from explicit node positions.
    ///
    /// # Panics
    ///
    /// Panics if `radio_range` is not strictly positive.
    pub fn from_positions(positions: Vec<Point>, area: Aabb, radio_range: f64) -> Self {
        assert!(radio_range > 0.0, "radio range must be positive");
        let grid = GridIndex::build(area, radio_range, &positions);
        // Straight into CSR: one reused query buffer, no per-node Vec.
        let mut adjacency = Csr::with_capacity(positions.len(), positions.len() * 8);
        let mut buf: Vec<NodeId> = Vec::new();
        for (i, &p) in positions.iter().enumerate() {
            buf.clear();
            grid.within_into(&positions, p, radio_range, Some(NodeId(i as u32)), &mut buf);
            buf.sort_unstable();
            adjacency.push_row(buf.iter().copied());
        }
        Topology {
            positions,
            area,
            radio_range,
            adjacency,
            gabriel: OnceLock::new(),
            rng_graph: OnceLock::new(),
            neighbor_dists: OnceLock::new(),
        }
    }

    /// Generates a topology from `config` with a deterministic `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// use gmp_net::{Topology, TopologyConfig};
    /// let topo = Topology::random(&TopologyConfig::paper(), 42);
    /// assert_eq!(topo.len(), 1000);
    /// assert!(topo.is_connected());
    /// ```
    pub fn random(config: &TopologyConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positions = Vec::with_capacity(config.node_count);
        let area = config.area;
        let sample_free = |rng: &mut StdRng, holes: &[Hole]| -> Point {
            for _ in 0..MAX_PLACEMENT_ATTEMPTS {
                let p = Point::new(
                    rng.gen_range(area.min.x..=area.max.x),
                    rng.gen_range(area.min.y..=area.max.y),
                );
                if !holes.iter().any(|h| h.contains(p)) {
                    return p;
                }
            }
            panic!(
                "holes cover the deployment area {area:?}: no free point found \
                 in {MAX_PLACEMENT_ATTEMPTS} attempts (holes: {holes:?})"
            );
        };
        match &config.placement {
            Placement::UniformRandom => {
                for _ in 0..config.node_count {
                    positions.push(sample_free(&mut rng, &config.holes));
                }
            }
            Placement::GridJitter { jitter } => {
                let side = (config.node_count as f64).sqrt().ceil() as usize;
                let dx = area.width() / side as f64;
                let dy = area.height() / side as f64;
                'outer: for gy in 0..side {
                    for gx in 0..side {
                        if positions.len() == config.node_count {
                            break 'outer;
                        }
                        let base = Point::new(
                            area.min.x + (gx as f64 + 0.5) * dx,
                            area.min.y + (gy as f64 + 0.5) * dy,
                        );
                        let p = Point::new(
                            (base.x + rng.gen_range(-jitter..=*jitter))
                                .clamp(area.min.x, area.max.x),
                            (base.y + rng.gen_range(-jitter..=*jitter))
                                .clamp(area.min.y, area.max.y),
                        );
                        if config.holes.iter().any(|h| h.contains(p)) {
                            positions.push(sample_free(&mut rng, &config.holes));
                        } else {
                            positions.push(p);
                        }
                    }
                }
            }
            Placement::Clustered { clusters, spread } => {
                let centers: Vec<Point> = (0..*clusters.max(&1))
                    .map(|_| sample_free(&mut rng, &config.holes))
                    .collect();
                for _ in 0..config.node_count {
                    let mut attempts = 0usize;
                    loop {
                        let c = centers[rng.gen_range(0..centers.len())];
                        // Box–Muller normal sample.
                        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                        let u2: f64 = rng.gen_range(0.0..1.0);
                        let r = (-2.0 * u1.ln()).sqrt() * spread;
                        let theta = std::f64::consts::TAU * u2;
                        let p = Point::new(c.x + r * theta.cos(), c.y + r * theta.sin());
                        if area.contains(p) && !config.holes.iter().any(|h| h.contains(p)) {
                            positions.push(p);
                            break;
                        }
                        attempts += 1;
                        assert!(
                            attempts < MAX_PLACEMENT_ATTEMPTS,
                            "clustered placement found no free point around any of {} centers \
                             in {MAX_PLACEMENT_ATTEMPTS} attempts (spread {spread}, holes: {:?})",
                            centers.len(),
                            config.holes,
                        );
                    }
                }
            }
        }
        Topology::from_positions(positions, area, config.radio_range)
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the topology has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The deployment area.
    #[inline]
    pub fn area(&self) -> Aabb {
        self.area
    }

    /// The radio range every node uses, in meters.
    #[inline]
    pub fn radio_range(&self) -> f64 {
        self.radio_range
    }

    /// The position of node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn pos(&self, id: NodeId) -> Point {
        self.positions[id.index()]
    }

    /// Iterates over all node records in id order. Records are synthesized
    /// from the flat position array — the topology stores no `Vec<Node>`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = Node> + '_ {
        self.positions
            .iter()
            .enumerate()
            .map(|(i, &p)| Node::new(NodeId(i as u32), p))
    }

    /// All node positions, indexable by [`NodeId::index`].
    pub fn positions(&self) -> Vec<Point> {
        self.positions.clone()
    }

    /// All node positions as a borrowed slice, indexable by
    /// [`NodeId::index`] — the allocation-free form of
    /// [`Topology::positions`].
    #[inline]
    pub fn positions_ref(&self) -> &[Point] {
        &self.positions
    }

    /// The unit-disk neighbors of `id` (all nodes within radio range),
    /// sorted by id.
    #[inline]
    pub fn neighbors(&self, id: NodeId) -> &[NodeId] {
        self.adjacency.row(id.index())
    }

    /// Full unit-disk adjacency as a CSR layout; row `i` is the sorted
    /// neighbor list of node `i`.
    #[inline]
    pub fn adjacency(&self) -> &Csr<NodeId> {
        &self.adjacency
    }

    /// The neighbor of `id` closest to `target`, or `None` if `id` has no
    /// neighbors.
    pub fn closest_neighbor_to(&self, id: NodeId, target: Point) -> Option<NodeId> {
        self.neighbors(id).iter().copied().min_by(|&a, &b| {
            self.pos(a)
                .dist_sq(target)
                .total_cmp(&self.pos(b).dist_sq(target))
        })
    }

    /// The planarized neighbor lists for the requested planar subgraph,
    /// computed lazily once and cached.
    pub fn planar_neighbors(&self, kind: PlanarKind, id: NodeId) -> &[NodeId] {
        let cache = match kind {
            PlanarKind::Gabriel => &self.gabriel,
            PlanarKind::RelativeNeighborhood => &self.rng_graph,
        };
        let adj = cache.get_or_init(|| planarize(self, kind));
        adj.row(id.index())
    }

    /// The distances from `id` to each of its unit-disk neighbors, sorted
    /// ascending; computed lazily once and cached. Because the values are
    /// the same `dist` results a caller would compute per neighbor, a
    /// `partition_point` over this slice counts exactly the neighbors a
    /// linear distance filter would keep (power-control listener counts).
    pub fn neighbor_distances(&self, id: NodeId) -> &[f64] {
        let all = self.neighbor_dists.get_or_init(|| {
            let mut csr = Csr::with_capacity(self.len(), self.adjacency.total_len());
            let mut d: Vec<f64> = Vec::new();
            for (i, neigh) in self.adjacency.iter().enumerate() {
                let p = self.positions[i];
                d.clear();
                d.extend(neigh.iter().map(|&n| p.dist(self.positions[n.index()])));
                d.sort_unstable_by(|a, b| a.total_cmp(b));
                csr.push_row(d.iter().copied());
            }
            csr
        });
        all.row(id.index())
    }

    /// Whether the unit-disk graph is connected (BFS from node 0).
    pub fn is_connected(&self) -> bool {
        if self.positions.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::from([NodeId(0)]);
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = queue.pop_front() {
            for &v in self.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    count += 1;
                    queue.push_back(v);
                }
            }
        }
        count == self.len()
    }

    /// Average unit-disk degree — the paper's density knob (Fig. 15 sweeps
    /// the node count, which sweeps this).
    pub fn average_degree(&self) -> f64 {
        if self.positions.is_empty() {
            return 0.0;
        }
        self.adjacency.total_len() as f64 / self.len() as f64
    }

    /// Approximate heap footprint of the always-materialized storage
    /// (positions + CSR adjacency), in bytes. Lazily cached planar graphs
    /// and neighbor distances are included only once computed.
    pub fn heap_bytes(&self) -> usize {
        let lazy = |c: &OnceLock<Csr<NodeId>>| c.get().map_or(0, Csr::heap_bytes);
        self.positions.capacity() * std::mem::size_of::<Point>()
            + self.adjacency.heap_bytes()
            + lazy(&self.gabriel)
            + lazy(&self.rng_graph)
            + self.neighbor_dists.get().map_or(0, Csr::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_topology_is_deterministic_per_seed() {
        let config = TopologyConfig::new(300.0, 50, 100.0);
        let a = Topology::random(&config, 9);
        let b = Topology::random(&config, 9);
        let c = Topology::random(&config, 10);
        assert_eq!(a.positions(), b.positions());
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn adjacency_is_symmetric_and_within_range() {
        let config = TopologyConfig::new(400.0, 80, 120.0);
        let topo = Topology::random(&config, 3);
        for n in topo.nodes() {
            for &m in topo.neighbors(n.id) {
                assert!(topo.pos(n.id).dist(topo.pos(m)) <= 120.0 + 1e-9);
                assert!(
                    topo.neighbors(m).contains(&n.id),
                    "adjacency must be symmetric"
                );
                assert_ne!(m, n.id, "no self loops");
            }
        }
    }

    #[test]
    fn holes_exclude_nodes() {
        let hole = Hole::Circle {
            center: Point::new(250.0, 250.0),
            radius: 100.0,
        };
        let config = TopologyConfig::new(500.0, 200, 100.0).with_hole(hole);
        let topo = Topology::random(&config, 5);
        for n in topo.nodes() {
            assert!(!hole.contains(n.pos));
        }
    }

    #[test]
    fn rect_hole_contains() {
        let hole = Hole::Rect(Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0)));
        assert!(hole.contains(Point::new(5.0, 5.0)));
        assert!(!hole.contains(Point::new(15.0, 5.0)));
    }

    #[test]
    fn grid_placement_produces_exact_count() {
        let config = TopologyConfig::new(100.0, 37, 30.0)
            .with_placement(Placement::GridJitter { jitter: 2.0 });
        let topo = Topology::random(&config, 1);
        assert_eq!(topo.len(), 37);
        for n in topo.nodes() {
            assert!(topo.area().contains(n.pos));
        }
    }

    #[test]
    fn clustered_placement_stays_in_area() {
        let config = TopologyConfig::new(200.0, 60, 50.0).with_placement(Placement::Clustered {
            clusters: 3,
            spread: 20.0,
        });
        let topo = Topology::random(&config, 8);
        assert_eq!(topo.len(), 60);
        for n in topo.nodes() {
            assert!(topo.area().contains(n.pos));
        }
    }

    #[test]
    fn paper_config_matches_table_1() {
        let c = TopologyConfig::paper();
        assert_eq!(c.node_count, 1000);
        assert_eq!(c.radio_range, 150.0);
        assert_eq!(c.area.width(), 1000.0);
        assert_eq!(c.area.height(), 1000.0);
    }

    #[test]
    fn closest_neighbor_is_closest() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(0.0, 20.0),
            Point::new(5.0, 5.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 50.0);
        let target = Point::new(9.0, 1.0);
        assert_eq!(topo.closest_neighbor_to(NodeId(0), target), Some(NodeId(1)));
    }

    #[test]
    fn neighbor_distances_are_sorted_and_match_linear_filter() {
        let config = TopologyConfig::new(400.0, 80, 120.0);
        let topo = Topology::random(&config, 3);
        for n in topo.nodes() {
            let dists = topo.neighbor_distances(n.id);
            assert_eq!(dists.len(), topo.neighbors(n.id).len());
            assert!(dists.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
            // A partition_point cutoff counts exactly what the linear
            // distance filter counts, for any cutoff.
            for cutoff in [0.0, 30.0, 61.7, 120.0, 200.0] {
                let linear = topo
                    .neighbors(n.id)
                    .iter()
                    .filter(|&&m| topo.pos(n.id).dist(topo.pos(m)) <= cutoff)
                    .count();
                assert_eq!(dists.partition_point(|&d| d <= cutoff), linear);
            }
        }
    }

    #[test]
    fn positions_ref_matches_positions() {
        let config = TopologyConfig::new(300.0, 50, 100.0);
        let topo = Topology::random(&config, 9);
        assert_eq!(topo.positions(), topo.positions_ref().to_vec());
    }

    #[test]
    fn dense_random_network_is_connected() {
        // Paper density: 1000 nodes / km² with 150 m range ⇒ avg degree ≈ 69.
        let config = TopologyConfig::new(1000.0, 500, 150.0);
        let topo = Topology::random(&config, 11);
        assert!(topo.is_connected());
        assert!(topo.average_degree() > 10.0);
    }

    #[test]
    fn single_node_topology_is_connected() {
        let topo = Topology::from_positions(vec![Point::new(1.0, 1.0)], Aabb::square(10.0), 5.0);
        assert!(topo.is_connected());
        assert!(topo.neighbors(NodeId(0)).is_empty());
        assert_eq!(topo.average_degree(), 0.0);
    }

    #[test]
    fn disconnected_topology_detected() {
        let topo = Topology::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(100.0, 100.0)],
            Aabb::square(200.0),
            10.0,
        );
        assert!(!topo.is_connected());
    }
}
