//! Node identifiers and node records.

use std::fmt;

use gmp_geom::Point;

/// Dense index of a node within a [`Topology`](crate::Topology).
///
/// In the paper's model a node's *location* is its network address; `NodeId`
/// is merely the simulator-side handle used to index position tables. It is
/// a transparent newtype so it can never be confused with hop counts or
/// other integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usize, for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A sensor node: an id plus a fixed location.
///
/// Nodes are stationary for the duration of a simulation (the paper's
/// evaluation uses static sensor networks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Node {
    /// The node's dense identifier.
    pub id: NodeId,
    /// The node's location, which also serves as its network address.
    pub pos: Point,
}

impl Node {
    /// Creates a node record.
    pub const fn new(id: NodeId, pos: Point) -> Self {
        Node { id, pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_and_displays() {
        let id = NodeId::from(42u32);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
    }

    #[test]
    fn node_ids_order_by_value() {
        assert!(NodeId(3) < NodeId(10));
    }

    #[test]
    fn node_construction() {
        let n = Node::new(NodeId(1), Point::new(2.0, 3.0));
        assert_eq!(n.id, NodeId(1));
        assert_eq!(n.pos, Point::new(2.0, 3.0));
    }
}
