//! Sharded lazy spatial substrate for 100k–1M node deployments.
//!
//! [`Topology`] materializes every node and its full unit-disk adjacency up
//! front — fine at the paper's 1000 nodes, hopeless at a million. GMP's
//! scaling claim (Section 4) is that forwarding cost depends only on the
//! *local* neighborhood, so the substrate should too: a routing task that
//! touches a 1 km² window of a 1000 km² deployment should cost O(window),
//! not O(network).
//!
//! [`ShardedTopology`] delivers that by splitting the deployment area into
//! coarse square *tiles*, each owning a contiguous range of global
//! [`NodeId`]s and its own fine [`GridIndex`]. A tile's nodes are generated
//! deterministically from `(seed, tile_coord)` the first time anything
//! touches the tile — positions, neighbor queries, and region
//! materialization all agree regardless of the order (or thread) in which
//! tiles are first faulted in, because each tile's RNG stream is a pure
//! function of the seed and its coordinates.
//!
//! Determinism contract (pinned by `tests/substrate_parity.rs`):
//!
//! * node ids are assigned tile-by-tile in row-major tile order, nodes
//!   within a tile in generation order — so [`ShardedTopology::materialize_full`]
//!   yields positions in exactly global-id order;
//! * lazy [`ShardedTopology::neighbors_into`] returns the same sorted
//!   neighbor list as the eager [`Topology`] built from the full
//!   materialization;
//! * [`ShardedTopology::materialize_region`] over any window yields a
//!   [`Topology`] whose interior nodes (further than one radio range from
//!   the region edge) have identical neighbor lists to the full network.

use std::sync::OnceLock;

use gmp_geom::{Aabb, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grid::GridIndex;
use crate::node::NodeId;
use crate::topology::{Hole, Topology, MAX_PLACEMENT_ATTEMPTS};

/// The paper's deployment density: 1000 nodes uniformly distributed over
/// 1000 m × 1000 m (Table 1), i.e. 0.001 nodes/m².
pub const PAPER_DENSITY: f64 = 0.001;

/// Parameters for a [`ShardedTopology`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardConfig {
    /// Deployment area.
    pub area: Aabb,
    /// Total number of nodes across the whole deployment.
    pub node_count: usize,
    /// Radio range in meters.
    pub radio_range: f64,
    /// Side of a coarse tile in meters. Must be at least `radio_range` so a
    /// neighbor query touches at most the 3 × 3 block of tiles around a
    /// point.
    pub tile_side: f64,
    /// Voids carved out of the deployment.
    pub holes: Vec<Hole>,
}

impl ShardConfig {
    /// A square deployment of the given side with the default tile size
    /// (8 × the radio range — 1200 m tiles at the paper's 150 m range, so a
    /// tile holds ~1440 nodes at paper density).
    pub fn new(area_side: f64, node_count: usize, radio_range: f64) -> Self {
        ShardConfig {
            area: Aabb::square(area_side),
            node_count,
            radio_range,
            tile_side: radio_range * 8.0,
            holes: Vec::new(),
        }
    }

    /// A deployment of `node_count` nodes at the paper's density
    /// ([`PAPER_DENSITY`]): the area side grows as √n, keeping the expected
    /// degree at the paper's ~69 regardless of scale.
    pub fn paper_density(node_count: usize, radio_range: f64) -> Self {
        let side = (node_count as f64 / PAPER_DENSITY).sqrt();
        ShardConfig::new(side, node_count, radio_range)
    }

    /// Replaces the tile side.
    pub fn with_tile_side(mut self, tile_side: f64) -> Self {
        self.tile_side = tile_side;
        self
    }

    /// Adds a hole (void) to the deployment.
    pub fn with_hole(mut self, hole: Hole) -> Self {
        self.holes.push(hole);
        self
    }
}

/// One materialized tile: its nodes' positions (locally indexed) and a fine
/// spatial index over them.
#[derive(Debug)]
struct Tile {
    /// Global id of the tile's first node; local index `i` is global
    /// `base + i`.
    base: u32,
    positions: Vec<Point>,
    grid: GridIndex,
}

/// A million-node-capable deployment that materializes tiles on demand.
///
/// Construction costs O(tile count) — it computes only the per-tile node
/// budgets, never the nodes themselves. Every query then materializes just
/// the tiles it touches, so the memory footprint tracks the *touched
/// region*, not the network size.
#[derive(Debug)]
pub struct ShardedTopology {
    config: ShardConfig,
    seed: u64,
    tiles_x: usize,
    tiles_y: usize,
    /// Global node-id range of tile `t` (row-major) is
    /// `starts[t]..starts[t + 1]`; derived from cumulative clipped tile
    /// areas so the budget is deterministic, monotone, and sums to exactly
    /// `node_count`.
    starts: Vec<u32>,
    tiles: Vec<OnceLock<Tile>>,
}

impl ShardedTopology {
    /// Creates the substrate. No nodes are generated yet.
    ///
    /// # Panics
    ///
    /// Panics if the radio range is not strictly positive, if the tile side
    /// is smaller than the radio range, or if `node_count` exceeds `u32`
    /// range.
    pub fn new(config: ShardConfig, seed: u64) -> Self {
        assert!(config.radio_range > 0.0, "radio range must be positive");
        assert!(
            config.tile_side >= config.radio_range,
            "tile side {} must be at least the radio range {}",
            config.tile_side,
            config.radio_range
        );
        let n = u32::try_from(config.node_count).expect("node count exceeds u32 ids");
        let tiles_x = (config.area.width() / config.tile_side).ceil().max(1.0) as usize;
        let tiles_y = (config.area.height() / config.tile_side).ceil().max(1.0) as usize;
        let tile_count = tiles_x * tiles_y;

        // Budget nodes to tiles proportionally to clipped tile area, via
        // rounded cumulative sums: starts[t] = round(n * cum_area / total).
        // Rounding the *prefix* (not the per-tile count) keeps the total
        // exact and the sequence monotone.
        let mut starts = Vec::with_capacity(tile_count + 1);
        starts.push(0u32);
        let total_area: f64 = config.area.area();
        let mut cum = 0.0;
        for t in 0..tile_count {
            let (tx, ty) = (t % tiles_x, t / tiles_x);
            cum += tile_bounds(&config, tx, ty).area();
            let s = if t + 1 == tile_count {
                n
            } else {
                ((n as f64) * (cum / total_area)).round() as u32
            };
            starts.push(s.clamp(starts[t], n));
        }

        let tiles = (0..tile_count).map(|_| OnceLock::new()).collect();
        ShardedTopology {
            config,
            seed,
            tiles_x,
            tiles_y,
            starts,
            tiles,
        }
    }

    /// Total number of nodes in the deployment (materialized or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.config.node_count
    }

    /// Returns `true` if the deployment has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.config.node_count == 0
    }

    /// The deployment area.
    #[inline]
    pub fn area(&self) -> Aabb {
        self.config.area
    }

    /// The radio range in meters.
    #[inline]
    pub fn radio_range(&self) -> f64 {
        self.config.radio_range
    }

    /// Number of coarse tiles (materialized or not).
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tiles.len()
    }

    /// Tiles materialized so far.
    pub fn materialized_tiles(&self) -> usize {
        self.tiles.iter().filter(|t| t.get().is_some()).count()
    }

    /// Nodes generated so far (sum over materialized tiles).
    pub fn materialized_nodes(&self) -> usize {
        self.tiles
            .iter()
            .filter_map(|t| t.get())
            .map(|t| t.positions.len())
            .sum()
    }

    /// Approximate heap footprint of the materialized state in bytes
    /// (tile budgets + generated positions; the per-tile grid index is
    /// counted by its bucket contents).
    pub fn heap_bytes(&self) -> usize {
        let tiles: usize = self
            .tiles
            .iter()
            .filter_map(|t| t.get())
            .map(|t| {
                // positions + one grid bucket entry per node (ids are u32).
                t.positions.capacity() * std::mem::size_of::<Point>()
                    + t.positions.len() * std::mem::size_of::<NodeId>()
            })
            .sum();
        self.starts.capacity() * std::mem::size_of::<u32>() + tiles
    }

    /// The position of node `id`, materializing its tile if needed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pos(&self, id: NodeId) -> Point {
        let t = self.tile_of(id);
        let tile = self.tile(t);
        tile.positions[(id.0 - tile.base) as usize]
    }

    /// Appends the sorted unit-disk neighbors of `id` to `out` (which is
    /// cleared first), materializing only the tiles the radio disk touches.
    /// Bit-identical to `Topology::neighbors` on the fully materialized
    /// network.
    pub fn neighbors_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let center = self.pos(id);
        let rr = self.config.radio_range;
        let (tx0, ty0) = self.tile_coords_clamped(center.x - rr, center.y - rr);
        let (tx1, ty1) = self.tile_coords_clamped(center.x + rr, center.y + rr);
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let tile = self.tile(ty * self.tiles_x + tx);
                let exclude = (id.0 >= tile.base
                    && (id.0 - tile.base) < tile.positions.len() as u32)
                    .then(|| NodeId(id.0 - tile.base));
                let mark = out.len();
                tile.grid
                    .within_into(&tile.positions, center, rr, exclude, out);
                for v in &mut out[mark..] {
                    v.0 += tile.base;
                }
            }
        }
        out.sort_unstable();
    }

    /// The sorted unit-disk neighbors of `id` as a fresh `Vec` — the
    /// allocating convenience form of [`ShardedTopology::neighbors_into`].
    pub fn neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(id, &mut out);
        out
    }

    /// Materializes every tile intersecting `window` (plus nothing else)
    /// and builds an eager [`Topology`] over their nodes, with a mapping
    /// back to global ids. Nodes further than one radio range inside the
    /// covered region have exactly their full-network adjacency; nodes on
    /// the rim may be missing cross-boundary neighbors, so callers should
    /// inflate `window` by their routing slack before calling.
    pub fn materialize_region(&self, window: Aabb) -> RegionView {
        let (tx0, ty0) = self.tile_coords_clamped(window.min.x, window.min.y);
        let (tx1, ty1) = self.tile_coords_clamped(window.max.x, window.max.y);
        let mut positions = Vec::new();
        let mut global_ids = Vec::new();
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let t = ty * self.tiles_x + tx;
                let tile = self.tile(t);
                positions.extend_from_slice(&tile.positions);
                global_ids.extend((0..tile.positions.len() as u32).map(|i| NodeId(tile.base + i)));
            }
        }
        let bounds = Aabb::new(
            tile_bounds(&self.config, tx0, ty0).min,
            tile_bounds(&self.config, tx1, ty1).max,
        );
        RegionView {
            topology: Topology::from_positions(positions, bounds, self.config.radio_range),
            global_ids,
        }
    }

    /// Materializes the whole deployment as an eager [`Topology`], with
    /// positions in global-id order. Intended for parity testing and small
    /// deployments — this is exactly the O(n·degree) build the sharded
    /// substrate exists to avoid.
    pub fn materialize_full(&self) -> Topology {
        let mut positions = Vec::with_capacity(self.len());
        for t in 0..self.tiles.len() {
            positions.extend_from_slice(&self.tile(t).positions);
        }
        Topology::from_positions(positions, self.config.area, self.config.radio_range)
    }

    /// Global ids of all nodes whose position lies inside `window`,
    /// materializing only the tiles the window touches. Sorted ascending.
    pub fn ids_in(&self, window: Aabb) -> Vec<NodeId> {
        let (tx0, ty0) = self.tile_coords_clamped(window.min.x, window.min.y);
        let (tx1, ty1) = self.tile_coords_clamped(window.max.x, window.max.y);
        let mut ids = Vec::new();
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let tile = self.tile(ty * self.tiles_x + tx);
                for (i, &p) in tile.positions.iter().enumerate() {
                    if window.contains(p) {
                        ids.push(NodeId(tile.base + i as u32));
                    }
                }
            }
        }
        ids
    }

    /// Row-major tile index owning global node `id` (binary search over the
    /// tile budgets — no materialization).
    fn tile_of(&self, id: NodeId) -> usize {
        assert!(
            (id.0 as usize) < self.config.node_count,
            "node id {id:?} out of range for {} nodes",
            self.config.node_count
        );
        self.starts.partition_point(|&s| s <= id.0) - 1
    }

    /// Clamped tile coordinates of the tile containing point `(x, y)`.
    fn tile_coords_clamped(&self, x: f64, y: f64) -> (usize, usize) {
        let tx = ((x - self.config.area.min.x) / self.config.tile_side)
            .floor()
            .clamp(0.0, (self.tiles_x - 1) as f64) as usize;
        let ty = ((y - self.config.area.min.y) / self.config.tile_side)
            .floor()
            .clamp(0.0, (self.tiles_y - 1) as f64) as usize;
        (tx, ty)
    }

    /// The materialized tile `t`, generating it on first touch. `OnceLock`
    /// makes concurrent first touches race-safe: every thread computes the
    /// same value (the generator is a pure function of `(seed, tx, ty)`),
    /// and one result wins.
    fn tile(&self, t: usize) -> &Tile {
        self.tiles[t].get_or_init(|| {
            let (tx, ty) = (t % self.tiles_x, t / self.tiles_x);
            let bounds = tile_bounds(&self.config, tx, ty);
            let count = (self.starts[t + 1] - self.starts[t]) as usize;
            let mut rng = StdRng::seed_from_u64(tile_seed(self.seed, tx as u64, ty as u64));
            let mut positions = Vec::with_capacity(count);
            for _ in 0..count {
                positions.push(sample_free_in(&mut rng, bounds, &self.config.holes));
            }
            let grid = GridIndex::build(bounds, self.config.radio_range, &positions);
            Tile {
                base: self.starts[t],
                positions,
                grid,
            }
        })
    }
}

/// A window of a [`ShardedTopology`] materialized as an eager [`Topology`],
/// with region-local node ids. `topology` node `i` is global node
/// `global_ids[i]`.
#[derive(Debug)]
pub struct RegionView {
    /// The eagerly built topology over the covered tiles.
    pub topology: Topology,
    /// Region-local id → global id, strictly ascending.
    pub global_ids: Vec<NodeId>,
}

impl RegionView {
    /// Global id of region-local node `local`.
    #[inline]
    pub fn global(&self, local: NodeId) -> NodeId {
        self.global_ids[local.index()]
    }

    /// Region-local id of global node `g`, if the region contains it.
    pub fn local_of(&self, g: NodeId) -> Option<NodeId> {
        self.global_ids
            .binary_search(&g)
            .ok()
            .map(|i| NodeId(i as u32))
    }
}

/// Clipped bounds of tile `(tx, ty)`: a full `tile_side` square except at
/// the area's right/top edge.
fn tile_bounds(config: &ShardConfig, tx: usize, ty: usize) -> Aabb {
    let min = Point::new(
        config.area.min.x + tx as f64 * config.tile_side,
        config.area.min.y + ty as f64 * config.tile_side,
    );
    let max = Point::new(
        (min.x + config.tile_side).min(config.area.max.x),
        (min.y + config.tile_side).min(config.area.max.y),
    );
    Aabb::new(min, max)
}

/// Deterministic per-tile RNG seed: a splitmix64 finalizer over the global
/// seed mixed with the tile coordinates, so neighboring tiles (and
/// neighboring seeds) get uncorrelated streams.
fn tile_seed(seed: u64, tx: u64, ty: u64) -> u64 {
    let mut z =
        seed ^ tx.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ty.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Rejection-samples a point uniform over `bounds` avoiding every hole,
/// with the same attempt cap and diagnostic as `Topology::random`.
fn sample_free_in(rng: &mut StdRng, bounds: Aabb, holes: &[Hole]) -> Point {
    for _ in 0..MAX_PLACEMENT_ATTEMPTS {
        let p = Point::new(
            rng.gen_range(bounds.min.x..=bounds.max.x),
            rng.gen_range(bounds.min.y..=bounds.max.y),
        );
        if !holes.iter().any(|h| h.contains(p)) {
            return p;
        }
    }
    panic!(
        "holes cover tile {bounds:?}: no free point found in \
         {MAX_PLACEMENT_ATTEMPTS} attempts (holes: {holes:?})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ShardedTopology {
        // 4 × 4 tiles of 300 m over a 1200 m area.
        ShardedTopology::new(
            ShardConfig::new(1200.0, 800, 150.0).with_tile_side(300.0),
            7,
        )
    }

    #[test]
    fn budgets_sum_to_node_count_and_are_monotone() {
        let st = small();
        assert_eq!(*st.starts.last().unwrap() as usize, st.len());
        assert!(st.starts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(st.starts.len(), st.tile_count() + 1);
    }

    #[test]
    fn construction_materializes_nothing() {
        let st = ShardedTopology::new(ShardConfig::paper_density(1_000_000, 150.0), 1);
        assert_eq!(st.len(), 1_000_000);
        assert_eq!(st.materialized_tiles(), 0);
        assert_eq!(st.materialized_nodes(), 0);
    }

    #[test]
    fn pos_touches_one_tile() {
        let st = small();
        let _ = st.pos(NodeId(0));
        assert_eq!(st.materialized_tiles(), 1);
    }

    #[test]
    fn tile_of_agrees_with_budgets() {
        let st = small();
        for t in 0..st.tile_count() {
            for id in st.starts[t]..st.starts[t + 1] {
                assert_eq!(st.tile_of(NodeId(id)), t);
            }
        }
    }

    #[test]
    fn nodes_stay_inside_their_tile() {
        let st = small();
        for t in 0..st.tile_count() {
            let (tx, ty) = (t % st.tiles_x, t / st.tiles_x);
            let bounds = tile_bounds(&st.config, tx, ty);
            for id in st.starts[t]..st.starts[t + 1] {
                assert!(bounds.contains(st.pos(NodeId(id))));
            }
        }
    }

    #[test]
    fn lazy_neighbors_match_full_materialization() {
        let st = small();
        let full = st.materialize_full();
        let mut out = Vec::new();
        for i in (0..st.len()).step_by(17) {
            let id = NodeId(i as u32);
            st.neighbors_into(id, &mut out);
            assert_eq!(out.as_slice(), full.neighbors(id), "node {i}");
            assert_eq!(st.pos(id), full.pos(id));
        }
    }

    #[test]
    fn generation_is_deterministic_and_order_independent() {
        let a = small();
        let b = small();
        // Touch b's tiles in reverse order; positions must still agree.
        for t in (0..b.tile_count()).rev() {
            let _ = b.tile(t);
        }
        for i in (0..a.len()).step_by(29) {
            assert_eq!(a.pos(NodeId(i as u32)), b.pos(NodeId(i as u32)));
        }
        let c = ShardedTopology::new(
            ShardConfig::new(1200.0, 800, 150.0).with_tile_side(300.0),
            8,
        );
        assert_ne!(a.pos(NodeId(0)), c.pos(NodeId(0)), "seed must matter");
    }

    #[test]
    fn region_interior_adjacency_matches_full() {
        let st = small();
        let full = st.materialize_full();
        let window = Aabb::new(Point::new(300.0, 300.0), Point::new(900.0, 900.0));
        let view = st.materialize_region(window);
        assert!(view.topology.len() < st.len(), "region must be a subset");
        let rr = st.radio_range();
        for local in 0..view.topology.len() {
            let lid = NodeId(local as u32);
            let p = view.topology.pos(lid);
            let b = view.topology.area();
            let interior = p.x - b.min.x > rr
                && b.max.x - p.x > rr
                && p.y - b.min.y > rr
                && b.max.y - p.y > rr;
            if !interior {
                continue;
            }
            let got: Vec<NodeId> = view
                .topology
                .neighbors(lid)
                .iter()
                .map(|&n| view.global(n))
                .collect();
            assert_eq!(got.as_slice(), full.neighbors(view.global(lid)));
        }
    }

    #[test]
    fn region_view_id_mapping_round_trips() {
        let st = small();
        let view = st.materialize_region(Aabb::new(Point::new(0.0, 0.0), Point::new(400.0, 400.0)));
        assert!(view.global_ids.windows(2).all(|w| w[0] < w[1]));
        for local in 0..view.topology.len() {
            let lid = NodeId(local as u32);
            assert_eq!(view.local_of(view.global(lid)), Some(lid));
        }
        assert_eq!(view.local_of(NodeId(st.len() as u32 - 1)), None);
    }

    #[test]
    fn ids_in_window_match_positions() {
        let st = small();
        let window = Aabb::new(Point::new(100.0, 100.0), Point::new(500.0, 500.0));
        let ids = st.ids_in(window);
        assert!(!ids.is_empty());
        for &id in &ids {
            assert!(window.contains(st.pos(id)));
        }
        let full = st.materialize_full();
        let brute: Vec<NodeId> = (0..full.len() as u32)
            .map(NodeId)
            .filter(|&id| window.contains(full.pos(id)))
            .collect();
        assert_eq!(ids, brute);
    }

    #[test]
    fn million_node_query_touches_only_local_tiles() {
        let st = ShardedTopology::new(ShardConfig::paper_density(1_000_000, 150.0), 42);
        let mut out = Vec::new();
        st.neighbors_into(NodeId(500_000), &mut out);
        assert!(!out.is_empty(), "paper density should give ~69 neighbors");
        assert!(
            st.materialized_tiles() <= 4,
            "a single query must not fault in more than the 2×2 tile block \
             around the point, got {}",
            st.materialized_tiles()
        );
    }

    #[test]
    fn holes_respected_in_tiles() {
        let hole = Hole::Circle {
            center: Point::new(600.0, 600.0),
            radius: 200.0,
        };
        let st = ShardedTopology::new(
            ShardConfig::new(1200.0, 500, 150.0)
                .with_tile_side(300.0)
                .with_hole(hole),
            3,
        );
        let full = st.materialize_full();
        for n in full.nodes() {
            assert!(!hole.contains(n.pos));
        }
    }

    #[test]
    #[should_panic(expected = "holes cover tile")]
    fn fully_holed_tile_panics_with_diagnostic() {
        let st = ShardedTopology::new(
            ShardConfig::new(600.0, 100, 150.0)
                .with_tile_side(300.0)
                .with_hole(Hole::Rect(Aabb::new(
                    Point::new(-1.0, -1.0),
                    Point::new(301.0, 301.0),
                ))),
            1,
        );
        let _ = st.pos(NodeId(0)); // tile (0,0) is fully covered
    }

    #[test]
    fn paper_density_area_side() {
        let c = ShardConfig::paper_density(1000, 150.0);
        assert!((c.area.width() - 1000.0).abs() < 1e-6);
        let c = ShardConfig::paper_density(1_000_000, 150.0);
        assert!((c.area.width() - 31_622.776).abs() < 1e-2);
    }
}
