//! Wireless sensor network model substrate for the GMP reproduction.
//!
//! This crate implements the network model of Section 2 of the paper: a set
//! of nodes with known coordinates deployed in a 2-D area, communicating
//! over a unit-disk radio of fixed range. It provides:
//!
//! * [`Topology`] — an immutable node deployment with precomputed unit-disk
//!   adjacency and a uniform-grid spatial index;
//! * [`topology::TopologyConfig`] — seeded random/grid/clustered generators,
//!   including deployments with *holes* (voids) for perimeter-routing tests;
//! * [`planar`] — local planarization by Gabriel graph and Relative
//!   Neighborhood Graph, as required by right-hand-rule traversal \[29, 9\];
//! * [`face`] — GPSR-style perimeter (face) routing primitives \[4, 13\];
//! * [`traversal`] — guaranteed-delivery FACE-1 face walks (both
//!   orientations, live-subgraph planarization) for MCFR/GVG;
//! * [`graph`] — generic shortest-path utilities over the unit-disk graph,
//!   used by the centralized SMT baseline.
//!
//! # Example
//!
//! ```
//! use gmp_net::topology::{Topology, TopologyConfig};
//!
//! let config = TopologyConfig::new(500.0, 100, 150.0);
//! let topo = Topology::random(&config, 7);
//! assert_eq!(topo.len(), 100);
//! let some_node = gmp_net::NodeId(0);
//! // Every neighbor is within radio range.
//! for &n in topo.neighbors(some_node) {
//!     assert!(topo.pos(some_node).dist(topo.pos(n)) <= 150.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csr;
pub mod face;
pub mod graph;
pub mod grid;
pub mod mobility;
pub mod node;
pub mod planar;
pub mod shard;
pub mod topology;
pub mod traversal;

pub use csr::Csr;
pub use face::PerimeterState;
pub use node::{Node, NodeId};
pub use planar::PlanarKind;
pub use shard::{RegionView, ShardConfig, ShardedTopology};
pub use topology::{Topology, TopologyConfig};
pub use traversal::{FaceDir, FacePhase, FaceScratch, FaceWalk};
