//! Guaranteed-delivery face traversal (FACE-1) on the planar subgraphs.
//!
//! GPSR's perimeter mode ([`crate::face`]) changes faces *eagerly*: the
//! moment a chosen edge crosses the entry–destination line closer to the
//! destination, the packet hops to the adjacent face. That heuristic is
//! fast but has known counterexamples on valid planar graphs. The
//! protocols built on this module (MCFR, arXiv:1706.05263; GVG void
//! traversal, arXiv:0803.3632) *claim* guaranteed delivery, and the
//! delivery-guarantee oracle in `gmp-faults` falsifies such claims — so
//! this engine implements the provably correct FACE-1 discipline instead:
//!
//! 1. **Scan**: tour the entire current face (next-edge-by-angle from the
//!    arrival direction), recording the crossing of the anchor–destination
//!    segment that lands *strictly closest* to the destination.
//! 2. **Seek**: re-walk the tour to the recorded best edge and cross it
//!    *virtually* — the anchor advances to the crossing point and the
//!    adjacent face's tour starts at the same node, without a radio hop.
//! 3. If a full scan finds no crossing strictly closer than the anchor,
//!    the destination is provably unreachable from the current component.
//!
//! Successive anchors are collinear on the original stall-point–destination
//! segment and advance strictly monotonically, so the walk terminates on
//! every finite planar graph. Both orientations ([`FaceDir::Ccw`] and
//! [`FaceDir::Cw`]) are supported so MCFR can race a left and a right
//! traversal per destination.
//!
//! Fault plans complicate matters: the cached planarization of the full
//! topology can disconnect once dead nodes are removed (a dead witness
//! wrongly suppresses a Gabriel edge between two live nodes). Walks
//! therefore run on the planarization of the *live* subgraph, recomputed
//! locally per node via [`crate::planar::live_planar_neighbors_into`] into
//! a reusable [`FaceScratch`] — allocation-free after warm-up and
//! bit-identical to the cached rows when every node is alive.

use gmp_geom::point::ccw_sweep;
use gmp_geom::{Point, Segment, Vec2};

use crate::face::{FaceRoutingError, RouteOutcome};
use crate::node::NodeId;
use crate::planar::{live_planar_neighbors_into, PlanarKind};
use crate::topology::Topology;

/// Orientation of a face traversal: which way the tour turns around each
/// face. Running one walk in each direction (MCFR) races the short way
/// around a void against the long way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaceDir {
    /// Tour faces by taking the first edge counterclockwise from the
    /// arrival direction (the right-hand rule, as in [`crate::face`]).
    Ccw,
    /// Mirror image: first edge clockwise from the arrival direction.
    Cw,
}

/// Which half of the FACE-1 discipline the walk is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FacePhase {
    /// Touring the whole face, recording the best crossing.
    Scan,
    /// Re-walking the tour to the recorded best edge to cross there.
    Seek,
}

/// The best crossing of the anchor–destination segment found so far on
/// the current face tour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossing {
    /// The directed half-edge (tail, head) whose segment crosses.
    pub edge: (NodeId, NodeId),
    /// Where it crosses the anchor–destination line.
    pub at: Point,
}

/// Per-destination FACE-1 walk state, carried in the packet.
///
/// The walk's orientation ([`FaceDir`]) is deliberately *not* stored here:
/// protocols keep it alongside the walk so a promoted (greedy-again) agent
/// remembers its lineage after the walk state is dropped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceWalk {
    /// Distance from the stall node (where greedy gave up) to the
    /// destination; any node strictly closer may resume greedy.
    pub start_dist: f64,
    /// Current anchor: the stall point, advanced to each face-crossing
    /// point. All anchors lie on the stall-point–destination segment.
    pub anchor: Point,
    /// Scan or seek.
    pub phase: FacePhase,
    /// First half-edge of the current face tour, for completion detection.
    pub first: (NodeId, NodeId),
    /// The node this walk was forwarded from.
    pub prev: NodeId,
    /// Best crossing recorded during the current scan.
    pub best: Option<Crossing>,
}

/// Reusable buffer for the live-filtered planar neighbor lists, so face
/// steps allocate nothing after warm-up.
#[derive(Debug, Default)]
pub struct FaceScratch {
    buf: Vec<NodeId>,
}

impl FaceScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The planar neighbors of `u` restricted to `alive` nodes: the cached
    /// full-topology row when no liveness mask is in effect, otherwise the
    /// locally recomputed planarization of the live subgraph (bit-identical
    /// to the cached row when the mask is all-true).
    pub fn planar<'a>(
        &'a mut self,
        topo: &'a Topology,
        kind: PlanarKind,
        alive: Option<&[bool]>,
        u: NodeId,
    ) -> &'a [NodeId] {
        match alive {
            None => topo.planar_neighbors(kind, u),
            Some(mask) => {
                live_planar_neighbors_into(topo, u, kind, mask, &mut self.buf);
                &self.buf
            }
        }
    }
}

impl FaceWalk {
    /// Starts a face walk at `at` (a greedy local minimum) toward `dest`.
    ///
    /// Returns the first hop and the walk state to carry there, or `None`
    /// if `at` has no live planar neighbors (isolated in the live graph).
    pub fn begin(
        topo: &Topology,
        kind: PlanarKind,
        alive: Option<&[bool]>,
        dir: FaceDir,
        at: NodeId,
        dest: Point,
        scratch: &mut FaceScratch,
    ) -> Option<(NodeId, FaceWalk)> {
        let x = topo.pos(at);
        let neighbors = scratch.planar(topo, kind, alive, at);
        let mut ref_dir = dest - x;
        if ref_dir.norm_sq() <= gmp_geom::EPS * gmp_geom::EPS {
            ref_dir = Vec2::new(1.0, 0.0);
        }
        let next = first_turn(topo, x, neighbors, ref_dir, dir, false)?;
        let mut walk = FaceWalk {
            start_dist: x.dist(dest),
            anchor: x,
            phase: FacePhase::Scan,
            first: (at, next),
            prev: at,
            best: None,
        };
        walk.consider(x, topo.pos(next), (at, next), dest);
        Some((next, walk))
    }

    /// Computes the next hop of the walk from `current`, updating the
    /// state (tour progress, phase transitions, virtual face crossings).
    ///
    /// # Errors
    ///
    /// * [`FaceRoutingError::Stuck`] if `current` has no live planar
    ///   neighbors (or the carried state is inconsistent);
    /// * [`FaceRoutingError::LoopDetected`] if a full face scan found no
    ///   crossing strictly closer than the anchor: the destination is
    ///   unreachable from this component.
    #[allow(clippy::too_many_arguments)]
    pub fn next(
        &mut self,
        topo: &Topology,
        kind: PlanarKind,
        alive: Option<&[bool]>,
        dir: FaceDir,
        current: NodeId,
        dest: Point,
        scratch: &mut FaceScratch,
    ) -> Result<NodeId, FaceRoutingError> {
        let x = topo.pos(current);
        let neighbors = scratch.planar(topo, kind, alive, current);
        let mut from_pos = topo.pos(self.prev);
        let mut entering = false;
        // At most three state transitions can cascade at one node without
        // forwarding (scan-complete -> seek, seek -> virtual cross, cross
        // -> first edge of the new face), so this loop is bounded.
        for _ in 0..4 {
            let mut ref_dir = from_pos - x;
            if ref_dir.norm_sq() <= gmp_geom::EPS * gmp_geom::EPS {
                ref_dir = Vec2::new(1.0, 0.0);
            }
            let next = first_turn(topo, x, neighbors, ref_dir, dir, true)
                .ok_or(FaceRoutingError::Stuck)?;
            let edge = (current, next);
            if entering {
                // First edge of the face entered by the virtual crossing.
                self.first = edge;
                self.consider(x, topo.pos(next), edge, dest);
                self.prev = current;
                return Ok(next);
            }
            match self.phase {
                FacePhase::Scan => {
                    if edge == self.first {
                        // Tour complete. No crossing closer than the
                        // anchor proves the destination unreachable.
                        if self.best.is_none() {
                            return Err(FaceRoutingError::LoopDetected);
                        }
                        self.phase = FacePhase::Seek;
                        continue; // reprocess this edge in seek phase
                    }
                    self.consider(x, topo.pos(next), edge, dest);
                    self.prev = current;
                    return Ok(next);
                }
                FacePhase::Seek => {
                    let Some(best) = self.best else {
                        // Unreachable via begin/next; possible only for a
                        // hand-built (e.g. wire-decoded) state.
                        return Err(FaceRoutingError::Stuck);
                    };
                    if edge == best.edge {
                        // Virtual crossing: advance the anchor and start
                        // touring the adjacent face from this same node,
                        // as if we had arrived along the crossed edge.
                        self.anchor = best.at;
                        self.phase = FacePhase::Scan;
                        self.best = None;
                        from_pos = topo.pos(next);
                        entering = true;
                        continue;
                    }
                    self.prev = current;
                    return Ok(next);
                }
            }
        }
        Err(FaceRoutingError::Stuck)
    }

    /// `true` when a node at `here` has made strict progress past the
    /// stall point, so the agent may resume greedy forwarding.
    pub fn promotes(&self, here: Point, dest: Point) -> bool {
        here.dist(dest) < self.start_dist - gmp_geom::EPS
    }

    /// Records `edge` as the best crossing if its segment properly crosses
    /// the anchor–destination segment strictly closer to the destination
    /// than both the anchor and any crossing recorded so far.
    fn consider(&mut self, tail: Point, head: Point, edge: (NodeId, NodeId), dest: Point) {
        let seg = Segment::new(tail, head);
        let line = Segment::new(self.anchor, dest);
        if !seg.properly_crosses(&line) {
            return;
        }
        let Some(at) = seg.line_intersection(&line) else {
            return;
        };
        let d = at.dist(dest);
        if d >= self.anchor.dist(dest) - gmp_geom::EPS {
            return;
        }
        let better = match self.best {
            Some(b) => d < b.at.dist(dest),
            None => true,
        };
        if better {
            self.best = Some(Crossing { edge, at });
        }
    }
}

/// The neighbor whose edge is first in `dir`'s turning order from
/// `ref_dir`. The [`FaceDir::Ccw`] case matches `face::first_ccw`; the
/// clockwise case mirrors the sweep. With `zero_is_full_turn`, a neighbor
/// exactly along `ref_dir` (the arrival edge) sorts last.
fn first_turn(
    topo: &Topology,
    x: Point,
    neighbors: &[NodeId],
    ref_dir: Vec2,
    dir: FaceDir,
    zero_is_full_turn: bool,
) -> Option<NodeId> {
    let mut best: Option<(f64, NodeId)> = None;
    for &n in neighbors {
        let d = topo.pos(n) - x;
        if d.norm_sq() <= gmp_geom::EPS * gmp_geom::EPS {
            continue; // co-located neighbor: skip
        }
        let raw = ccw_sweep(ref_dir, d);
        let mut sweep = match dir {
            FaceDir::Ccw => raw,
            FaceDir::Cw => {
                if raw <= 1e-12 {
                    0.0
                } else {
                    std::f64::consts::TAU - raw
                }
            }
        };
        if zero_is_full_turn && sweep <= 1e-12 {
            sweep = std::f64::consts::TAU;
        }
        match best {
            Some((s, _)) if s <= sweep => {}
            _ => best = Some((sweep, n)),
        }
    }
    best.map(|(_, n)| n)
}

/// Greedy-face-greedy unicast on the live planar graph: greedy geographic
/// forwarding, FACE-1 recovery at local minima, promotion back to greedy
/// on strict progress past the stall point. Guaranteed to deliver on any
/// connected topology given enough hops; the reference driver for the
/// traversal engine's tests and proofs-by-proptest.
///
/// # Example
///
/// ```
/// use gmp_net::traversal::{gfg_route, FaceDir};
/// use gmp_net::{NodeId, PlanarKind, Topology, TopologyConfig};
/// let topo = Topology::random(&TopologyConfig::new(500.0, 200, 120.0), 1);
/// let out = gfg_route(&topo, PlanarKind::Gabriel, FaceDir::Ccw, NodeId(0), NodeId(199), 5000);
/// if topo.is_connected() {
///     assert!(out.is_delivered());
/// }
/// ```
pub fn gfg_route(
    topo: &Topology,
    kind: PlanarKind,
    dir: FaceDir,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
) -> RouteOutcome {
    let target = topo.pos(dst);
    let mut scratch = FaceScratch::new();
    let mut path = vec![src];
    let mut current = src;
    let mut walk: Option<FaceWalk> = None;
    for _ in 0..max_hops {
        if current == dst {
            return RouteOutcome::Delivered(path);
        }
        let here = topo.pos(current);
        if let Some(w) = &walk {
            if w.promotes(here, target) {
                walk = None;
            }
        }
        let next = match &mut walk {
            None => {
                let greedy = topo
                    .neighbors(current)
                    .iter()
                    .copied()
                    .filter(|&n| topo.pos(n).dist_sq(target) < here.dist_sq(target))
                    .min_by(|&a, &b| {
                        topo.pos(a)
                            .dist_sq(target)
                            .total_cmp(&topo.pos(b).dist_sq(target))
                    });
                match greedy {
                    Some(n) => n,
                    None => {
                        match FaceWalk::begin(topo, kind, None, dir, current, target, &mut scratch)
                        {
                            Some((n, w)) => {
                                walk = Some(w);
                                n
                            }
                            None => return RouteOutcome::Unreachable(path),
                        }
                    }
                }
            }
            Some(w) => match w.next(topo, kind, None, dir, current, target, &mut scratch) {
                Ok(n) => n,
                Err(_) => return RouteOutcome::Unreachable(path),
            },
        };
        path.push(next);
        current = next;
    }
    if current == dst {
        RouteOutcome::Delivered(path)
    } else {
        RouteOutcome::HopLimit(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Hole, Topology, TopologyConfig};
    use gmp_geom::Aabb;

    fn square_topo() -> Topology {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        Topology::from_positions(positions, Aabb::square(50.0), 12.0)
    }

    #[test]
    fn ccw_and_cw_walk_a_square_in_opposite_orders() {
        let topo = square_topo();
        let dest = Point::new(100.0, 5.0);
        let mut scratch = FaceScratch::new();
        let kind = PlanarKind::Gabriel;

        let (n_ccw, mut w_ccw) = FaceWalk::begin(
            &topo,
            kind,
            None,
            FaceDir::Ccw,
            NodeId(0),
            dest,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(n_ccw, NodeId(3), "ccw first edge turns up the left side");
        let n2 = w_ccw
            .next(&topo, kind, None, FaceDir::Ccw, n_ccw, dest, &mut scratch)
            .unwrap();
        assert_eq!(n2, NodeId(2));

        let (n_cw, mut w_cw) = FaceWalk::begin(
            &topo,
            kind,
            None,
            FaceDir::Cw,
            NodeId(0),
            dest,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(n_cw, NodeId(1), "cw first edge turns along the bottom");
        let n2 = w_cw
            .next(&topo, kind, None, FaceDir::Cw, n_cw, dest, &mut scratch)
            .unwrap();
        assert_eq!(n2, NodeId(2));
    }

    #[test]
    fn begin_fails_on_isolated_node() {
        let topo = Topology::from_positions(vec![Point::new(0.0, 0.0)], Aabb::square(10.0), 5.0);
        let mut scratch = FaceScratch::new();
        assert!(FaceWalk::begin(
            &topo,
            PlanarKind::Gabriel,
            None,
            FaceDir::Ccw,
            NodeId(0),
            Point::new(5.0, 5.0),
            &mut scratch
        )
        .is_none());
    }

    #[test]
    fn full_scan_without_crossing_reports_unreachable() {
        // Two nodes and a far-away destination: the outer face tour finds
        // no edge crossing the anchor-dest segment closer than the anchor.
        let positions = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
        let topo = Topology::from_positions(positions, Aabb::square(600.0), 20.0);
        let out = gfg_route(
            &topo,
            PlanarKind::Gabriel,
            FaceDir::Ccw,
            NodeId(0),
            NodeId(1),
            100,
        );
        assert!(out.is_delivered());
        // Island destination.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(500.0, 500.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(600.0), 20.0);
        for dir in [FaceDir::Ccw, FaceDir::Cw] {
            let out = gfg_route(&topo, PlanarKind::Gabriel, dir, NodeId(0), NodeId(2), 1000);
            assert!(matches!(out, RouteOutcome::Unreachable(_)), "got {out:?}");
        }
    }

    #[test]
    fn gfg_delivers_on_random_connected_topologies_both_directions() {
        for seed in 0..5u64 {
            let topo = Topology::random(&TopologyConfig::new(600.0, 200, 120.0), seed);
            if !topo.is_connected() {
                continue;
            }
            for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
                for dir in [FaceDir::Ccw, FaceDir::Cw] {
                    for (s, d) in [(0u32, 199u32), (7, 150), (23, 42)] {
                        let out = gfg_route(&topo, kind, dir, NodeId(s), NodeId(d), 5000);
                        assert!(
                            out.is_delivered(),
                            "seed {seed} {kind:?} {dir:?} route {s}->{d}: {:?} hops",
                            out.path().len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gfg_delivers_across_hole_topologies() {
        let config = TopologyConfig::new(600.0, 300, 100.0).with_hole(Hole::Circle {
            center: Point::new(300.0, 300.0),
            radius: 150.0,
        });
        for seed in 0..3u64 {
            let topo = Topology::random(&config, seed);
            if !topo.is_connected() {
                continue;
            }
            let near = |target: Point| {
                topo.nodes()
                    .min_by(|a, b| a.pos.dist_sq(target).total_cmp(&b.pos.dist_sq(target)))
                    .unwrap()
                    .id
            };
            let s = near(Point::new(50.0, 50.0));
            let d = near(Point::new(550.0, 550.0));
            for dir in [FaceDir::Ccw, FaceDir::Cw] {
                let out = gfg_route(&topo, PlanarKind::Gabriel, dir, s, d, 8000);
                assert!(
                    out.is_delivered(),
                    "seed {seed} {dir:?}: {:?} hops",
                    out.path().len()
                );
            }
        }
    }

    #[test]
    fn live_filtered_scratch_matches_cached_rows_when_all_alive() {
        let topo = Topology::random(&TopologyConfig::new(500.0, 120, 120.0), 77);
        let alive = vec![true; topo.len()];
        let mut scratch = FaceScratch::new();
        for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
            for i in 0..topo.len() {
                let u = NodeId(i as u32);
                let filtered = scratch.planar(&topo, kind, Some(&alive), u).to_vec();
                assert_eq!(
                    filtered.as_slice(),
                    topo.planar_neighbors(kind, u),
                    "node {i} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn dead_witness_revives_suppressed_gabriel_edge() {
        // w sits in the diametral disk of (u, v): alive it blocks the
        // edge; dead it must not, or the live graph disconnects.
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 1.0),
                Point::new(100.0, 0.0),
            ],
            Aabb::square(200.0),
            150.0,
        );
        let mut scratch = FaceScratch::new();
        let all = vec![true; 3];
        let without_witness = vec![true, false, true];
        let rows = scratch
            .planar(&topo, PlanarKind::Gabriel, Some(&all), NodeId(0))
            .to_vec();
        assert!(!rows.contains(&NodeId(2)), "live witness blocks the edge");
        let rows = scratch
            .planar(
                &topo,
                PlanarKind::Gabriel,
                Some(&without_witness),
                NodeId(0),
            )
            .to_vec();
        assert!(rows.contains(&NodeId(2)), "dead witness frees the edge");
        assert!(!rows.contains(&NodeId(1)), "dead neighbors are dropped");
    }

    #[test]
    fn promotion_threshold_is_strict() {
        let walk = FaceWalk {
            start_dist: 10.0,
            anchor: Point::new(0.0, 0.0),
            phase: FacePhase::Scan,
            first: (NodeId(0), NodeId(1)),
            prev: NodeId(0),
            best: None,
        };
        let dest = Point::new(0.0, 0.0);
        assert!(walk.promotes(Point::new(5.0, 0.0), dest));
        assert!(!walk.promotes(Point::new(10.0, 0.0), dest));
        assert!(!walk.promotes(Point::new(11.0, 0.0), dest));
    }

    #[test]
    fn seek_without_best_errors_instead_of_panicking() {
        let topo = square_topo();
        let mut scratch = FaceScratch::new();
        let mut walk = FaceWalk {
            start_dist: 10.0,
            anchor: Point::new(0.0, 0.0),
            phase: FacePhase::Seek,
            first: (NodeId(2), NodeId(3)),
            prev: NodeId(1),
            best: None,
        };
        let r = walk.next(
            &topo,
            PlanarKind::Gabriel,
            None,
            FaceDir::Ccw,
            NodeId(0),
            Point::new(100.0, 5.0),
            &mut scratch,
        );
        assert_eq!(r, Err(FaceRoutingError::Stuck));
    }
}
