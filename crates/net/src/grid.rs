//! Uniform-grid spatial index over node positions.
//!
//! Neighbor queries ("all nodes within radio range of a point") dominate
//! topology construction, so the index buckets nodes into square cells of
//! side equal to the query radius; a range query inspects at most the 3 × 3
//! block of cells around the query point.

use gmp_geom::{Aabb, Point};

use crate::node::NodeId;

/// A uniform grid bucketing node positions for radius queries.
#[derive(Debug, Clone)]
pub struct GridIndex {
    origin: Point,
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<NodeId>>,
}

impl GridIndex {
    /// Builds an index over `positions` covering `bounds`, tuned for radius
    /// queries of `radius` meters.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive.
    pub fn build(bounds: Aabb, radius: f64, positions: &[Point]) -> Self {
        assert!(radius > 0.0, "query radius must be positive");
        let cell = radius;
        let cols = (bounds.width() / cell).ceil().max(1.0) as usize + 1;
        let rows = (bounds.height() / cell).ceil().max(1.0) as usize + 1;
        let mut idx = GridIndex {
            origin: bounds.min,
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
        };
        for (i, &p) in positions.iter().enumerate() {
            let b = idx.bucket_of(p);
            idx.buckets[b].push(NodeId(i as u32));
        }
        idx
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell).floor();
        let cy = ((p.y - self.origin.y) / self.cell).floor();
        let cx = cx.clamp(0.0, (self.cols - 1) as f64) as usize;
        let cy = cy.clamp(0.0, (self.rows - 1) as f64) as usize;
        (cx, cy)
    }

    fn bucket_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// Returns the ids of all nodes whose position (looked up in
    /// `positions`) is within `radius` of `center`, **excluding** any node
    /// whose id equals `exclude`.
    ///
    /// `radius` must not exceed the radius the index was built with, or the
    /// query may miss nodes; this is debug-asserted.
    pub fn within(
        &self,
        positions: &[Point],
        center: Point,
        radius: f64,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.within_into(positions, center, radius, exclude, &mut out);
        out
    }

    /// Allocation-free form of [`GridIndex::within`]: **appends** matching
    /// ids to `out` without clearing it, so a reused buffer never touches
    /// the allocator once grown and multi-grid callers (the sharded
    /// substrate) can accumulate one result across several indices.
    /// Callers owning the buffer clear it before the first call.
    pub fn within_into(
        &self,
        positions: &[Point],
        center: Point,
        radius: f64,
        exclude: Option<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        debug_assert!(
            radius <= self.cell + gmp_geom::EPS,
            "query radius {radius} exceeds index cell {}",
            self.cell
        );
        let (cx, cy) = self.cell_coords(center);
        let r_sq = radius * radius;
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y1 = (cy + 1).min(self.rows - 1);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                for &id in &self.buckets[gy * self.cols + gx] {
                    if Some(id) == exclude {
                        continue;
                    }
                    if positions[id.index()].dist_sq(center) <= r_sq {
                        out.push(id);
                    }
                }
            }
        }
    }

    /// The bounds this index was built over.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        Aabb::new(
            self.origin,
            Point::new(
                self.origin.x + self.cols as f64 * self.cell,
                self.origin.y + self.rows as f64 * self.cell,
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;

    fn brute_force(
        positions: &[Point],
        center: Point,
        radius: f64,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = positions
            .iter()
            .enumerate()
            .filter(|(i, p)| Some(NodeId(*i as u32)) != exclude && p.dist(center) <= radius + 1e-12)
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        v.sort();
        v
    }

    #[test]
    fn matches_brute_force_on_fixed_layout() {
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(20.0, 10.0),
            Point::new(90.0, 90.0),
            Point::new(15.0, 12.0),
            Point::new(10.0, 25.0),
        ];
        let idx = GridIndex::build(Aabb::square(100.0), 15.0, &positions);
        let mut got = idx.within(&positions, Point::new(12.0, 11.0), 15.0, None);
        got.sort();
        let want = brute_force(&positions, Point::new(12.0, 11.0), 15.0, None);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_brute_force_randomized() {
        // Deterministic pseudo-random layout without pulling in `rand` here.
        let mut seed = 0x243F_6A88_85A3_08D3u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let positions: Vec<Point> = (0..500)
            .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
            .collect();
        let idx = GridIndex::build(Aabb::square(1000.0), 150.0, &positions);
        for q in 0..50 {
            let center = positions[q * 7];
            let exclude = Some(NodeId((q * 7) as u32));
            let mut got = idx.within(&positions, center, 150.0, exclude);
            got.sort();
            assert_eq!(got, brute_force(&positions, center, 150.0, exclude));
        }
    }

    #[test]
    fn query_points_outside_bounds_are_clamped() {
        let positions = vec![Point::new(1.0, 1.0)];
        let idx = GridIndex::build(Aabb::square(100.0), 10.0, &positions);
        let got = idx.within(&positions, Point::new(-5.0, -5.0), 10.0, None);
        assert!(got.contains(&NodeId(0)));
    }

    #[test]
    fn exclude_removes_the_center_node() {
        let positions = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let idx = GridIndex::build(Aabb::square(10.0), 5.0, &positions);
        let got = idx.within(&positions, positions[0], 5.0, Some(NodeId(0)));
        assert_eq!(got, vec![NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        GridIndex::build(Aabb::square(10.0), 0.0, &[]);
    }

    #[test]
    fn within_into_appends_without_clearing() {
        let positions = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let idx = GridIndex::build(Aabb::square(10.0), 5.0, &positions);
        let mut out = vec![NodeId(99)];
        idx.within_into(&positions, positions[0], 5.0, Some(NodeId(0)), &mut out);
        assert_eq!(out, vec![NodeId(99), NodeId(1)]);
        // And the result matches the allocating variant after the prefix.
        assert_eq!(
            out[1..].to_vec(),
            idx.within(&positions, positions[0], 5.0, Some(NodeId(0)))
        );
    }
}
