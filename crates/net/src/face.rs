//! GPSR-style perimeter (face) routing.
//!
//! When greedy geographic forwarding hits a *void* — no neighbor closer to
//! the destination — unicast schemes \[4, 13, 31\] switch the packet into
//! perimeter mode: it traverses the boundary of the void by the right-hand
//! rule over a planarized graph until it reaches a node closer to the
//! destination than where it entered. GMP and PBM reuse exactly this
//! machinery, except the "destination" is the *average location* of a group
//! of void destinations (Section 4.1), so the target is an arbitrary point
//! that need not coincide with any node.
//!
//! The implementation follows GPSR \[13\]:
//!
//! * the packet remembers where it entered perimeter mode (`entry`), where
//!   it entered the current face (`face_entry`), and the first edge taken
//!   on the current face (for loop detection);
//! * at each node the next edge is the first one counterclockwise about the
//!   node from the edge it arrived on (right-hand rule);
//! * before traversing an edge that crosses the `face_entry`–`dest` line at
//!   a point closer to `dest`, the packet moves to the adjacent face.

use gmp_geom::point::ccw_sweep;
use gmp_geom::{Point, Segment};

use crate::node::NodeId;
use crate::planar::PlanarKind;
use crate::topology::Topology;

/// Why perimeter forwarding could not produce a next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaceRoutingError {
    /// The current node has no planar neighbors (isolated node).
    Stuck,
    /// The packet completed a full tour of the current face without finding
    /// a closer node: the destination is unreachable from here.
    LoopDetected,
}

impl std::fmt::Display for FaceRoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaceRoutingError::Stuck => write!(f, "node has no planar neighbors"),
            FaceRoutingError::LoopDetected => {
                write!(f, "perimeter traversal looped; destination unreachable")
            }
        }
    }
}

impl std::error::Error for FaceRoutingError {}

/// Per-packet state carried while in perimeter mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerimeterState {
    /// The geographic target (a node position, or a group's average
    /// location in GMP/PBM).
    pub dest: Point,
    /// Location of the node where the packet entered perimeter mode (GPSR's
    /// `Lp`): the exit test compares progress against this.
    pub entry: Point,
    /// Point where the packet entered the current face (GPSR's `Lf`).
    pub face_entry: Point,
    /// First edge traversed on the current face, for loop detection.
    pub first_edge: Option<(NodeId, NodeId)>,
    /// The node the packet was forwarded from, if any.
    pub prev: Option<NodeId>,
}

impl PerimeterState {
    /// Starts perimeter mode at a node located at `here`, aiming for
    /// `dest`.
    pub fn enter(here: Point, dest: Point) -> Self {
        PerimeterState {
            dest,
            entry: here,
            face_entry: here,
            first_edge: None,
            prev: None,
        }
    }

    /// GPSR's recovery-exit test: `true` when the node at `here` is
    /// strictly closer to the destination than the perimeter entry point,
    /// so greedy forwarding can resume.
    pub fn closer_than_entry(&self, here: Point) -> bool {
        here.dist(self.dest) < self.entry.dist(self.dest) - gmp_geom::EPS
    }
}

/// Computes the next hop for a perimeter-mode packet at `current`,
/// updating `state` (face changes, loop-detection edge, `prev`).
///
/// # Errors
///
/// * [`FaceRoutingError::Stuck`] if `current` has no planar neighbors;
/// * [`FaceRoutingError::LoopDetected`] if the traversal would re-walk the
///   first edge of the current face, proving the destination unreachable.
pub fn perimeter_next_hop(
    topo: &Topology,
    kind: PlanarKind,
    current: NodeId,
    state: &mut PerimeterState,
) -> Result<NodeId, FaceRoutingError> {
    let x = topo.pos(current);
    let neighbors = topo.planar_neighbors(kind, current);
    if neighbors.is_empty() {
        return Err(FaceRoutingError::Stuck);
    }

    // Reference direction for the right-hand rule: the edge we arrived on,
    // or the straight line toward the destination when entering.
    let mut ref_dir = match state.prev {
        Some(p) => topo.pos(p) - x,
        None => state.dest - x,
    };
    if ref_dir.norm_sq() <= gmp_geom::EPS * gmp_geom::EPS {
        // Current node sits exactly on the target point; aim anywhere.
        ref_dir = gmp_geom::Vec2::new(1.0, 0.0);
    }

    // On entry, the first edge is the first one counterclockwise from the
    // destination line (sweep 0 allowed); afterwards the arrival edge
    // itself must be taken last (sweep 0 treated as a full turn).
    let zero_is_full_turn = state.prev.is_some();

    let mut candidate =
        first_ccw(topo, x, neighbors, ref_dir, zero_is_full_turn).ok_or(FaceRoutingError::Stuck)?;

    // Face changes: while the chosen edge crosses the face_entry–dest line
    // at a point closer to the destination, hop to the adjacent face by
    // advancing to the next edge counterclockwise.
    for _ in 0..=neighbors.len() {
        let edge = Segment::new(x, topo.pos(candidate));
        let line = Segment::new(state.face_entry, state.dest);
        if edge.properly_crosses(&line) {
            if let Some(i) = edge.line_intersection(&line) {
                if i.dist(state.dest) < state.face_entry.dist(state.dest) - gmp_geom::EPS {
                    state.face_entry = i;
                    state.first_edge = None;
                    let new_ref = topo.pos(candidate) - x;
                    candidate = first_ccw(topo, x, neighbors, new_ref, true)
                        .ok_or(FaceRoutingError::Stuck)?;
                    continue;
                }
            }
        }
        break;
    }

    let edge = (current, candidate);
    match state.first_edge {
        Some(e0) if e0 == edge => return Err(FaceRoutingError::LoopDetected),
        Some(_) => {}
        None => state.first_edge = Some(edge),
    }
    state.prev = Some(current);
    Ok(candidate)
}

/// The neighbor whose edge is first counterclockwise from `ref_dir`.
///
/// With `zero_is_full_turn`, a neighbor exactly along `ref_dir` (the node
/// we arrived from) sorts last, producing the bounce-back-on-dead-end
/// behaviour of the right-hand rule.
fn first_ccw(
    topo: &Topology,
    x: Point,
    neighbors: &[NodeId],
    ref_dir: gmp_geom::Vec2,
    zero_is_full_turn: bool,
) -> Option<NodeId> {
    let mut best: Option<(f64, NodeId)> = None;
    for &n in neighbors {
        let d = topo.pos(n) - x;
        if d.norm_sq() <= gmp_geom::EPS * gmp_geom::EPS {
            continue; // co-located neighbor: skip
        }
        let mut sweep = ccw_sweep(ref_dir, d);
        if zero_is_full_turn && sweep <= 1e-12 {
            sweep = std::f64::consts::TAU;
        }
        match best {
            Some((s, _)) if s <= sweep => {}
            _ => best = Some((sweep, n)),
        }
    }
    best.map(|(_, n)| n)
}

/// Outcome of a full GPSR unicast route computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The destination node was reached; the path includes both endpoints.
    Delivered(Vec<NodeId>),
    /// The hop budget was exhausted.
    HopLimit(Vec<NodeId>),
    /// Perimeter traversal proved the destination unreachable.
    Unreachable(Vec<NodeId>),
}

impl RouteOutcome {
    /// The nodes visited, regardless of outcome.
    pub fn path(&self) -> &[NodeId] {
        match self {
            RouteOutcome::Delivered(p)
            | RouteOutcome::HopLimit(p)
            | RouteOutcome::Unreachable(p) => p,
        }
    }

    /// `true` when the destination was reached.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered(_))
    }
}

/// Full GPSR unicast: greedy geographic forwarding with perimeter-mode
/// recovery, from `src` to `dst`, giving up after `max_hops` transmissions.
///
/// This is both the reference implementation the face-routing tests lean
/// on and the engine of the GRD baseline (one independent unicast per
/// multicast destination).
/// # Example
///
/// ```
/// use gmp_net::face::gpsr_route;
/// use gmp_net::{NodeId, PlanarKind, Topology, TopologyConfig};
/// let topo = Topology::random(&TopologyConfig::new(500.0, 200, 120.0), 1);
/// let out = gpsr_route(&topo, PlanarKind::Gabriel, NodeId(0), NodeId(199), 500);
/// if topo.is_connected() {
///     assert!(out.is_delivered());
/// }
/// ```
pub fn gpsr_route(
    topo: &Topology,
    kind: PlanarKind,
    src: NodeId,
    dst: NodeId,
    max_hops: usize,
) -> RouteOutcome {
    let target = topo.pos(dst);
    let mut path = vec![src];
    let mut current = src;
    let mut perimeter: Option<PerimeterState> = None;
    for _ in 0..max_hops {
        if current == dst {
            return RouteOutcome::Delivered(path);
        }
        // Try to resume greedy whenever we have made progress past the
        // perimeter entry point.
        if let Some(state) = perimeter {
            if state.closer_than_entry(topo.pos(current)) {
                perimeter = None;
            }
        }
        let next = if perimeter.is_none() {
            let here = topo.pos(current);
            let greedy = topo
                .neighbors(current)
                .iter()
                .copied()
                .filter(|&n| topo.pos(n).dist_sq(target) < here.dist_sq(target))
                .min_by(|&a, &b| {
                    topo.pos(a)
                        .dist_sq(target)
                        .total_cmp(&topo.pos(b).dist_sq(target))
                });
            match greedy {
                Some(n) => n,
                None => {
                    let mut state = PerimeterState::enter(here, target);
                    match perimeter_next_hop(topo, kind, current, &mut state) {
                        Ok(n) => {
                            perimeter = Some(state);
                            n
                        }
                        Err(_) => return RouteOutcome::Unreachable(path),
                    }
                }
            }
        } else {
            match perimeter
                .as_mut()
                .map(|state| perimeter_next_hop(topo, kind, current, state))
            {
                Some(Ok(n)) => n,
                _ => return RouteOutcome::Unreachable(path),
            }
        };
        path.push(next);
        current = next;
    }
    if current == dst {
        RouteOutcome::Delivered(path)
    } else {
        RouteOutcome::HopLimit(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Hole, Topology, TopologyConfig};
    use gmp_geom::Aabb;

    #[test]
    fn greedy_route_on_a_line() {
        let positions = (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 12.0);
        let out = gpsr_route(&topo, PlanarKind::Gabriel, NodeId(0), NodeId(4), 100);
        assert_eq!(
            out,
            RouteOutcome::Delivered(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)])
        );
    }

    #[test]
    fn perimeter_routes_around_a_concave_void() {
        // Grid over [0,100]² with a rectangular bay removed: x ∈ {40,50,60},
        // y ∈ [30,80]. Greedy from below the bay toward a node above it
        // dead-ends against the bay wall, forcing perimeter recovery.
        let mut positions = Vec::new();
        let mut src = None;
        let mut dst = None;
        for gx in 0..=10 {
            for gy in 0..=10 {
                let (x, y) = (gx as f64 * 10.0, gy as f64 * 10.0);
                if (40.0..=60.0).contains(&x) && (30.0..=80.0).contains(&y) {
                    continue; // the void
                }
                if (x, y) == (50.0, 20.0) {
                    src = Some(NodeId(positions.len() as u32));
                }
                if (x, y) == (50.0, 90.0) {
                    dst = Some(NodeId(positions.len() as u32));
                }
                positions.push(Point::new(x, y));
            }
        }
        let topo = Topology::from_positions(positions, Aabb::square(200.0), 15.0);
        let (src, dst) = (src.unwrap(), dst.unwrap());
        // Sanity: greedy alone is stuck at the bay wall.
        let under_wall = topo.pos(src);
        let target = topo.pos(dst);
        assert!(topo
            .neighbors(src)
            .iter()
            .all(|&n| topo.pos(n).dist(target) >= under_wall.dist(target)));
        let out = gpsr_route(&topo, PlanarKind::Gabriel, src, dst, 200);
        assert!(
            out.is_delivered(),
            "expected delivery around void, got {out:?}"
        );
        assert!(out.path().len() > 8, "path must detour around the bay");
    }

    #[test]
    fn unreachable_destination_is_detected() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(500.0, 500.0), // isolated island
        ];
        let topo = Topology::from_positions(positions, Aabb::square(600.0), 20.0);
        let out = gpsr_route(&topo, PlanarKind::Gabriel, NodeId(0), NodeId(2), 1000);
        assert!(matches!(out, RouteOutcome::Unreachable(_)), "got {out:?}");
    }

    #[test]
    fn gpsr_delivers_on_random_connected_topologies() {
        for seed in 0..5u64 {
            let topo = Topology::random(&TopologyConfig::new(600.0, 200, 120.0), seed);
            if !topo.is_connected() {
                continue;
            }
            for (s, d) in [(0u32, 199u32), (7, 150), (23, 42)] {
                let out = gpsr_route(&topo, PlanarKind::Gabriel, NodeId(s), NodeId(d), 2000);
                assert!(
                    out.is_delivered(),
                    "seed {seed} route {s}->{d} failed: {:?}",
                    out.path().len()
                );
            }
        }
    }

    #[test]
    fn gpsr_delivers_across_a_hole_topology() {
        let config = TopologyConfig::new(600.0, 300, 100.0).with_hole(Hole::Circle {
            center: Point::new(300.0, 300.0),
            radius: 150.0,
        });
        for seed in 0..3u64 {
            let topo = Topology::random(&config, seed);
            if !topo.is_connected() {
                continue;
            }
            // Route across the hole: pick the nodes nearest opposite corners.
            let near = |target: Point| {
                topo.nodes()
                    .min_by(|a, b| a.pos.dist_sq(target).total_cmp(&b.pos.dist_sq(target)))
                    .unwrap()
                    .id
            };
            let s = near(Point::new(50.0, 50.0));
            let d = near(Point::new(550.0, 550.0));
            let out = gpsr_route(&topo, PlanarKind::Gabriel, s, d, 3000);
            assert!(out.is_delivered(), "seed {seed}: {:?}", out.path().len());
        }
    }

    #[test]
    fn perimeter_state_exit_test() {
        let state = PerimeterState::enter(Point::new(0.0, 0.0), Point::new(100.0, 0.0));
        assert!(state.closer_than_entry(Point::new(50.0, 0.0)));
        assert!(!state.closer_than_entry(Point::new(0.0, 10.0)));
        assert!(!state.closer_than_entry(Point::new(0.0, 0.0)));
    }

    #[test]
    fn right_hand_rule_walks_a_square_face() {
        // Square of side 10 with the packet entering at node 0 heading for
        // a point outside; the traversal must walk the face edges in order.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(50.0), 12.0);
        // Destination far to the right; entering perimeter at node 0.
        let dest = Point::new(100.0, 5.0);
        let mut state = PerimeterState::enter(topo.pos(NodeId(0)), dest);
        let n1 = perimeter_next_hop(&topo, PlanarKind::Gabriel, NodeId(0), &mut state).unwrap();
        // First edge counterclockwise from the line toward (100, 5) is the
        // edge to node 3 (87° ccw); node 1 is nearly a full turn away.
        assert_eq!(n1, NodeId(3));
        let n2 = perimeter_next_hop(&topo, PlanarKind::Gabriel, n1, &mut state).unwrap();
        // Arrived from node 0; next ccw about node 3 from edge (3,0) is 2.
        assert_eq!(n2, NodeId(2));
    }

    #[test]
    fn stuck_on_isolated_node() {
        let positions = vec![Point::new(0.0, 0.0)];
        let topo = Topology::from_positions(positions, Aabb::square(10.0), 5.0);
        let mut state = PerimeterState::enter(Point::new(0.0, 0.0), Point::new(5.0, 5.0));
        assert_eq!(
            perimeter_next_hop(&topo, PlanarKind::Gabriel, NodeId(0), &mut state),
            Err(FaceRoutingError::Stuck)
        );
    }

    #[test]
    fn route_outcome_accessors() {
        let out = RouteOutcome::Delivered(vec![NodeId(0), NodeId(1)]);
        assert!(out.is_delivered());
        assert_eq!(out.path().len(), 2);
        let out = RouteOutcome::HopLimit(vec![NodeId(0)]);
        assert!(!out.is_delivered());
        assert!(!format!("{}", FaceRoutingError::Stuck).is_empty());
        assert!(!format!("{}", FaceRoutingError::LoopDetected).is_empty());
    }
}
