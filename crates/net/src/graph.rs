//! Shortest-path utilities over the unit-disk graph.
//!
//! These are *global* algorithms: only the centralized SMT baseline (which
//! the paper includes "for comparison purpose only") and offline analysis
//! are allowed to use them. Distributed protocols must stick to
//! [`Topology::neighbors`](crate::Topology::neighbors).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::node::NodeId;
use crate::topology::Topology;

/// Result of a single-source shortest-path run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Distance from the source to each node (`f64::INFINITY` when
    /// unreachable). For hop metrics this is an integral count.
    pub dist: Vec<f64>,
    /// Predecessor of each node on a shortest path (`None` for the source
    /// and unreachable nodes).
    pub prev: Vec<Option<NodeId>>,
    source: NodeId,
}

impl ShortestPaths {
    /// The source node of this run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Reconstructs the path from the source to `target` (inclusive of both
    /// endpoints), or `None` if `target` is unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[target.index()].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.prev[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], self.source);
        Some(path)
    }

    /// Hop count to `target`, or `None` if unreachable.
    pub fn hops_to(&self, target: NodeId) -> Option<usize> {
        self.path_to(target).map(|p| p.len() - 1)
    }
}

/// Edge weight model for shortest paths over the unit-disk graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeWeight {
    /// Every edge costs 1 — minimizes transmissions, which is the paper's
    /// figure of merit (total hops / energy).
    #[default]
    Hop,
    /// Edges cost their Euclidean length.
    Euclidean,
}

/// Dijkstra from `source` over the unit-disk graph of `topo`.
///
/// With [`EdgeWeight::Hop`] this degenerates to BFS but the single
/// implementation keeps the two metrics consistent.
pub fn shortest_paths(topo: &Topology, source: NodeId, weight: EdgeWeight) -> ShortestPaths {
    let n = topo.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<NodeId>> = vec![None; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    // f64 keys ordered through their IEEE bit pattern (all values are
    // non-negative and finite, where the mapping is monotonic).
    let key = |d: f64| d.to_bits();
    dist[source.index()] = 0.0;
    heap.push(Reverse((key(0.0), source.0)));
    while let Some(Reverse((kd, u))) = heap.pop() {
        let u = NodeId(u);
        let du = dist[u.index()];
        if key(du) != kd {
            continue; // stale entry
        }
        for &v in topo.neighbors(u) {
            let w = match weight {
                EdgeWeight::Hop => 1.0,
                EdgeWeight::Euclidean => topo.pos(u).dist(topo.pos(v)),
            };
            let alt = du + w;
            if alt < dist[v.index()] {
                dist[v.index()] = alt;
                prev[v.index()] = Some(u);
                heap.push(Reverse((key(alt), v.0)));
            }
        }
    }
    ShortestPaths { dist, prev, source }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use gmp_geom::{Aabb, Point};

    fn line_topo() -> Topology {
        // 5 nodes in a line, each only hearing its immediate neighbors.
        let positions = (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        Topology::from_positions(positions, Aabb::square(100.0), 12.0)
    }

    #[test]
    fn hop_distances_on_a_line() {
        let topo = line_topo();
        let sp = shortest_paths(&topo, NodeId(0), EdgeWeight::Hop);
        assert_eq!(sp.source(), NodeId(0));
        for i in 0..5 {
            assert_eq!(sp.dist[i], i as f64);
            assert_eq!(sp.hops_to(NodeId(i as u32)), Some(i));
        }
        assert_eq!(
            sp.path_to(NodeId(4)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn euclidean_distances_on_a_line() {
        let topo = line_topo();
        let sp = shortest_paths(&topo, NodeId(0), EdgeWeight::Euclidean);
        assert!((sp.dist[4] - 40.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_nodes_report_none() {
        let topo = Topology::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(500.0, 0.0)],
            Aabb::square(600.0),
            10.0,
        );
        let sp = shortest_paths(&topo, NodeId(0), EdgeWeight::Hop);
        assert!(sp.dist[1].is_infinite());
        assert_eq!(sp.path_to(NodeId(1)), None);
        assert_eq!(sp.hops_to(NodeId(1)), None);
    }

    #[test]
    fn dijkstra_matches_bfs_on_random_graph() {
        let topo = Topology::random(&TopologyConfig::new(400.0, 100, 100.0), 17);
        let sp = shortest_paths(&topo, NodeId(0), EdgeWeight::Hop);
        // Independent BFS.
        let mut dist = vec![usize::MAX; topo.len()];
        dist[0] = 0;
        let mut q = std::collections::VecDeque::from([NodeId(0)]);
        while let Some(u) = q.pop_front() {
            for &v in topo.neighbors(u) {
                if dist[v.index()] == usize::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    q.push_back(v);
                }
            }
        }
        for (i, &d) in dist.iter().enumerate() {
            if d == usize::MAX {
                assert!(sp.dist[i].is_infinite());
            } else {
                assert_eq!(sp.dist[i] as usize, d);
            }
        }
    }

    #[test]
    fn euclidean_shortest_path_never_shorter_than_straight_line() {
        let topo = Topology::random(&TopologyConfig::new(400.0, 120, 100.0), 19);
        let sp = shortest_paths(&topo, NodeId(0), EdgeWeight::Euclidean);
        for i in 1..topo.len() {
            if sp.dist[i].is_finite() {
                let straight = topo.pos(NodeId(0)).dist(topo.pos(NodeId(i as u32)));
                assert!(sp.dist[i] >= straight - 1e-9);
            }
        }
    }
}
