//! Local planarization of the unit-disk graph.
//!
//! Right-hand-rule traversal (perimeter mode) is only correct on a planar
//! graph, so GPSR-family protocols first planarize the connectivity graph
//! using the Relative Neighborhood Graph \[29\] or the Gabriel Graph \[9\].
//! Both can be computed by each node with purely local information: an edge
//! `(u, v)` is kept iff no *witness* node lies in a forbidden region, and
//! every possible witness is itself within radio range of `u` (the
//! forbidden regions are contained in the disk of radius `d(u,v)` around
//! `u`), so scanning `u`'s neighbor table suffices.
//!
//! * **Gabriel graph**: the forbidden region is the disk with diameter
//!   `u`–`v`.
//! * **RNG**: the forbidden region is the lune — the intersection of the
//!   two disks of radius `d(u,v)` centered at `u` and `v`. The lune
//!   contains the diametral disk, hence RNG ⊆ Gabriel.
//!
//! Both subgraphs are planar and, crucially, connectivity-preserving: if
//! the unit-disk graph is connected, so are its Gabriel and RNG subgraphs.

use gmp_geom::predicates::{in_diametral_disk, in_lune};

use crate::csr::Csr;
use crate::node::NodeId;
use crate::topology::Topology;

/// Which planar subgraph to use for perimeter routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanarKind {
    /// Gabriel graph — denser, shorter detours; GMP's default (Section 4.1
    /// mentions both, the experiments use Gabriel).
    #[default]
    Gabriel,
    /// Relative Neighborhood Graph — sparser.
    RelativeNeighborhood,
}

/// Computes the planarized neighbor lists for every node as a flat CSR
/// layout; row `i` is the sorted planar neighbor list of node `i`.
/// This is what [`Topology::planar_neighbors`] caches.
pub fn planarize(topo: &Topology, kind: PlanarKind) -> Csr<NodeId> {
    let mut csr = Csr::with_capacity(topo.len(), topo.len() * 4);
    for i in 0..topo.len() {
        let u = NodeId(i as u32);
        csr.push_row(local_planar_neighbors(topo, u, kind));
    }
    csr
}

/// Computes the planarized neighbor list of a single node using only its
/// own neighbor table — the operation an actual sensor node would run.
pub fn local_planar_neighbors(topo: &Topology, u: NodeId, kind: PlanarKind) -> Vec<NodeId> {
    let pu = topo.pos(u);
    let neigh = topo.neighbors(u);
    let mut kept = Vec::new();
    'edges: for &v in neigh {
        let pv = topo.pos(v);
        for &w in neigh {
            if w == v {
                continue;
            }
            let pw = topo.pos(w);
            let blocked = match kind {
                PlanarKind::Gabriel => in_diametral_disk(pw, pu, pv),
                PlanarKind::RelativeNeighborhood => in_lune(pw, pu, pv),
            };
            if blocked {
                continue 'edges;
            }
        }
        kept.push(v);
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use gmp_geom::{Aabb, Point, Segment};

    fn random_topo(seed: u64) -> Topology {
        Topology::random(&TopologyConfig::new(500.0, 120, 120.0), seed)
    }

    fn edge_set(adj: &Csr<NodeId>) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (i, list) in adj.iter().enumerate() {
            for &j in list {
                if i < j.index() {
                    edges.push((i, j.index()));
                }
            }
        }
        edges
    }

    #[test]
    fn planar_graphs_are_symmetric_subgraphs_of_udg() {
        let topo = random_topo(21);
        for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
            let adj = planarize(&topo, kind);
            for (i, list) in adj.iter().enumerate() {
                let u = NodeId(i as u32);
                for &v in list {
                    assert!(
                        topo.neighbors(u).contains(&v),
                        "planar edge must be UDG edge"
                    );
                    assert!(
                        adj.row(v.index()).contains(&u),
                        "planar adjacency symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn rng_is_subgraph_of_gabriel() {
        let topo = random_topo(22);
        let gg = planarize(&topo, PlanarKind::Gabriel);
        let rng = planarize(&topo, PlanarKind::RelativeNeighborhood);
        for (i, list) in rng.iter().enumerate() {
            for &v in list {
                assert!(
                    gg.row(i).contains(&v),
                    "RNG edge ({i},{v}) missing from Gabriel graph"
                );
            }
        }
    }

    #[test]
    fn gabriel_graph_has_no_proper_crossings() {
        let topo = random_topo(23);
        let gg = planarize(&topo, PlanarKind::Gabriel);
        let edges = edge_set(&gg);
        for (a, e1) in edges.iter().enumerate() {
            let s1 = Segment::new(topo.pos(NodeId(e1.0 as u32)), topo.pos(NodeId(e1.1 as u32)));
            for e2 in edges.iter().skip(a + 1) {
                if e1.0 == e2.0 || e1.0 == e2.1 || e1.1 == e2.0 || e1.1 == e2.1 {
                    continue;
                }
                let s2 = Segment::new(topo.pos(NodeId(e2.0 as u32)), topo.pos(NodeId(e2.1 as u32)));
                assert!(
                    !s1.properly_crosses(&s2),
                    "Gabriel edges {e1:?} and {e2:?} cross"
                );
            }
        }
    }

    #[test]
    fn planarization_preserves_connectivity() {
        for seed in [31, 32, 33] {
            let topo = random_topo(seed);
            if !topo.is_connected() {
                continue;
            }
            for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
                let adj = planarize(&topo, kind);
                let mut seen = vec![false; topo.len()];
                let mut q = std::collections::VecDeque::from([0usize]);
                seen[0] = true;
                let mut count = 1;
                while let Some(u) = q.pop_front() {
                    for &v in adj.row(u) {
                        if !seen[v.index()] {
                            seen[v.index()] = true;
                            count += 1;
                            q.push_back(v.index());
                        }
                    }
                }
                assert_eq!(count, topo.len(), "{kind:?} disconnected the graph");
            }
        }
    }

    #[test]
    fn local_and_global_planarization_agree() {
        let topo = random_topo(24);
        let global = planarize(&topo, PlanarKind::Gabriel);
        for i in (0..topo.len()).step_by(10) {
            let local = local_planar_neighbors(&topo, NodeId(i as u32), PlanarKind::Gabriel);
            assert_eq!(local.as_slice(), global.row(i));
        }
    }

    #[test]
    fn collinear_triple_keeps_short_edges_only() {
        // u --- w --- v all within range: the long edge u–v must be pruned
        // (w sits at the center of its diametral disk).
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(100.0, 0.0),
            ],
            Aabb::square(200.0),
            150.0,
        );
        let gg = planarize(&topo, PlanarKind::Gabriel);
        assert!(!gg.row(0).contains(&NodeId(2)));
        assert!(gg.row(0).contains(&NodeId(1)));
        assert!(gg.row(2).contains(&NodeId(1)));
    }

    #[test]
    fn topology_caches_planar_neighbors() {
        let topo = random_topo(25);
        let a = topo
            .planar_neighbors(PlanarKind::Gabriel, NodeId(0))
            .to_vec();
        let b = topo
            .planar_neighbors(PlanarKind::Gabriel, NodeId(0))
            .to_vec();
        assert_eq!(a, b);
    }
}
