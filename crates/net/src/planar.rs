//! Local planarization of the unit-disk graph.
//!
//! Right-hand-rule traversal (perimeter mode) is only correct on a planar
//! graph, so GPSR-family protocols first planarize the connectivity graph
//! using the Relative Neighborhood Graph \[29\] or the Gabriel Graph \[9\].
//! Both can be computed by each node with purely local information: an edge
//! `(u, v)` is kept iff no *witness* node lies in a forbidden region, and
//! every possible witness is itself within radio range of `u` (the
//! forbidden regions are contained in the disk of radius `d(u,v)` around
//! `u`), so scanning `u`'s neighbor table suffices.
//!
//! * **Gabriel graph**: the forbidden region is the disk with diameter
//!   `u`–`v`.
//! * **RNG**: the forbidden region is the lune — the intersection of the
//!   two disks of radius `d(u,v)` centered at `u` and `v`. The lune
//!   contains the diametral disk, hence RNG ⊆ Gabriel.
//!
//! Both subgraphs are planar and, crucially, connectivity-preserving: if
//! the unit-disk graph is connected, so are its Gabriel and RNG subgraphs.

use gmp_geom::predicates::{in_diametral_disk, in_lune};

use crate::csr::Csr;
use crate::node::NodeId;
use crate::topology::Topology;

/// Which planar subgraph to use for perimeter routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlanarKind {
    /// Gabriel graph — denser, shorter detours; GMP's default (Section 4.1
    /// mentions both, the experiments use Gabriel).
    #[default]
    Gabriel,
    /// Relative Neighborhood Graph — sparser.
    RelativeNeighborhood,
}

/// Computes the planarized neighbor lists for every node as a flat CSR
/// layout; row `i` is the sorted planar neighbor list of node `i`.
/// This is what [`Topology::planar_neighbors`] caches.
pub fn planarize(topo: &Topology, kind: PlanarKind) -> Csr<NodeId> {
    let mut csr = Csr::with_capacity(topo.len(), topo.len() * 4);
    for i in 0..topo.len() {
        let u = NodeId(i as u32);
        csr.push_row(local_planar_neighbors(topo, u, kind));
    }
    csr
}

/// Computes the planarized neighbor list of a single node using only its
/// own neighbor table — the operation an actual sensor node would run.
pub fn local_planar_neighbors(topo: &Topology, u: NodeId, kind: PlanarKind) -> Vec<NodeId> {
    let pu = topo.pos(u);
    let neigh = topo.neighbors(u);
    let mut kept = Vec::new();
    'edges: for &v in neigh {
        let pv = topo.pos(v);
        for &w in neigh {
            if w == v {
                continue;
            }
            let pw = topo.pos(w);
            let blocked = match kind {
                PlanarKind::Gabriel => in_diametral_disk(pw, pu, pv),
                PlanarKind::RelativeNeighborhood => in_lune(pw, pu, pv),
            };
            if blocked {
                continue 'edges;
            }
        }
        kept.push(v);
    }
    kept
}

/// Computes the planar neighbor list of `u` within the *live* subgraph:
/// dead neighbors are dropped, and — just as important — dead nodes no
/// longer act as witnesses, so an edge a dead witness used to suppress is
/// revived. Face traversal over a faulted network must use this (the
/// cached full-topology planarization can disconnect the live subgraph).
///
/// With an all-true mask this produces exactly
/// [`local_planar_neighbors`] — same iteration order, same predicates —
/// which the determinism parity suites rely on.
///
/// Writes into `out` (cleared first) so per-hop calls allocate nothing
/// after warm-up.
pub fn live_planar_neighbors_into(
    topo: &Topology,
    u: NodeId,
    kind: PlanarKind,
    alive: &[bool],
    out: &mut Vec<NodeId>,
) {
    out.clear();
    let pu = topo.pos(u);
    let neigh = topo.neighbors(u);
    'edges: for &v in neigh {
        if !alive[v.index()] {
            continue;
        }
        let pv = topo.pos(v);
        for &w in neigh {
            if w == v || !alive[w.index()] {
                continue;
            }
            let pw = topo.pos(w);
            let blocked = match kind {
                PlanarKind::Gabriel => in_diametral_disk(pw, pu, pv),
                PlanarKind::RelativeNeighborhood => in_lune(pw, pu, pv),
            };
            if blocked {
                continue 'edges;
            }
        }
        out.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyConfig;
    use gmp_geom::{Aabb, Point, Segment};

    fn random_topo(seed: u64) -> Topology {
        Topology::random(&TopologyConfig::new(500.0, 120, 120.0), seed)
    }

    fn edge_set(adj: &Csr<NodeId>) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for (i, list) in adj.iter().enumerate() {
            for &j in list {
                if i < j.index() {
                    edges.push((i, j.index()));
                }
            }
        }
        edges
    }

    #[test]
    fn planar_graphs_are_symmetric_subgraphs_of_udg() {
        let topo = random_topo(21);
        for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
            let adj = planarize(&topo, kind);
            for (i, list) in adj.iter().enumerate() {
                let u = NodeId(i as u32);
                for &v in list {
                    assert!(
                        topo.neighbors(u).contains(&v),
                        "planar edge must be UDG edge"
                    );
                    assert!(
                        adj.row(v.index()).contains(&u),
                        "planar adjacency symmetric"
                    );
                }
            }
        }
    }

    #[test]
    fn rng_is_subgraph_of_gabriel() {
        let topo = random_topo(22);
        let gg = planarize(&topo, PlanarKind::Gabriel);
        let rng = planarize(&topo, PlanarKind::RelativeNeighborhood);
        for (i, list) in rng.iter().enumerate() {
            for &v in list {
                assert!(
                    gg.row(i).contains(&v),
                    "RNG edge ({i},{v}) missing from Gabriel graph"
                );
            }
        }
    }

    #[test]
    fn gabriel_graph_has_no_proper_crossings() {
        let topo = random_topo(23);
        let gg = planarize(&topo, PlanarKind::Gabriel);
        let edges = edge_set(&gg);
        for (a, e1) in edges.iter().enumerate() {
            let s1 = Segment::new(topo.pos(NodeId(e1.0 as u32)), topo.pos(NodeId(e1.1 as u32)));
            for e2 in edges.iter().skip(a + 1) {
                if e1.0 == e2.0 || e1.0 == e2.1 || e1.1 == e2.0 || e1.1 == e2.1 {
                    continue;
                }
                let s2 = Segment::new(topo.pos(NodeId(e2.0 as u32)), topo.pos(NodeId(e2.1 as u32)));
                assert!(
                    !s1.properly_crosses(&s2),
                    "Gabriel edges {e1:?} and {e2:?} cross"
                );
            }
        }
    }

    #[test]
    fn planarization_preserves_connectivity() {
        for seed in [31, 32, 33] {
            let topo = random_topo(seed);
            if !topo.is_connected() {
                continue;
            }
            for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
                let adj = planarize(&topo, kind);
                let mut seen = vec![false; topo.len()];
                let mut q = std::collections::VecDeque::from([0usize]);
                seen[0] = true;
                let mut count = 1;
                while let Some(u) = q.pop_front() {
                    for &v in adj.row(u) {
                        if !seen[v.index()] {
                            seen[v.index()] = true;
                            count += 1;
                            q.push_back(v.index());
                        }
                    }
                }
                assert_eq!(count, topo.len(), "{kind:?} disconnected the graph");
            }
        }
    }

    #[test]
    fn local_and_global_planarization_agree() {
        let topo = random_topo(24);
        let global = planarize(&topo, PlanarKind::Gabriel);
        for i in (0..topo.len()).step_by(10) {
            let local = local_planar_neighbors(&topo, NodeId(i as u32), PlanarKind::Gabriel);
            assert_eq!(local.as_slice(), global.row(i));
        }
    }

    #[test]
    fn collinear_triple_keeps_short_edges_only() {
        // u --- w --- v all within range: the long edge u–v must be pruned
        // (w sits at the center of its diametral disk).
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(50.0, 0.0),
                Point::new(100.0, 0.0),
            ],
            Aabb::square(200.0),
            150.0,
        );
        let gg = planarize(&topo, PlanarKind::Gabriel);
        assert!(!gg.row(0).contains(&NodeId(2)));
        assert!(gg.row(0).contains(&NodeId(1)));
        assert!(gg.row(2).contains(&NodeId(1)));
    }

    fn assert_symmetric_and_contained(topo: &Topology) {
        let gg = planarize(topo, PlanarKind::Gabriel);
        let rng = planarize(topo, PlanarKind::RelativeNeighborhood);
        for (i, list) in gg.iter().enumerate() {
            let u = NodeId(i as u32);
            for &v in list {
                assert!(topo.neighbors(u).contains(&v));
                assert!(gg.row(v.index()).contains(&u), "GG asymmetric at ({i},{v})");
            }
        }
        for (i, list) in rng.iter().enumerate() {
            let u = NodeId(i as u32);
            for &v in list {
                assert!(
                    rng.row(v.index()).contains(&u),
                    "RNG asymmetric at ({i},{v})"
                );
                assert!(gg.row(i).contains(&v), "RNG edge ({i},{v}) not in GG");
            }
        }
    }

    fn assert_connectivity_preserved(topo: &Topology) {
        assert!(topo.is_connected(), "test topology must start connected");
        for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
            let adj = planarize(topo, kind);
            let mut seen = vec![false; topo.len()];
            let mut q = std::collections::VecDeque::from([0usize]);
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = q.pop_front() {
                for &v in adj.row(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        count += 1;
                        q.push_back(v.index());
                    }
                }
            }
            assert_eq!(count, topo.len(), "{kind:?} disconnected the graph");
        }
    }

    #[test]
    fn collinear_chain_stays_connected_and_symmetric() {
        // Five exactly collinear nodes, all pairs within range: every long
        // edge has an interior witness, so only consecutive edges survive —
        // but the chain must stay connected, symmetric, and RNG ⊆ GG.
        let topo = Topology::from_positions(
            (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect(),
            Aabb::square(100.0),
            100.0,
        );
        assert_symmetric_and_contained(&topo);
        assert_connectivity_preserved(&topo);
        let gg = planarize(&topo, PlanarKind::Gabriel);
        for i in 0..4usize {
            assert!(gg.row(i).contains(&NodeId(i as u32 + 1)));
        }
        assert!(!gg.row(0).contains(&NodeId(2)));
        assert!(!gg.row(0).contains(&NodeId(4)));
    }

    #[test]
    fn witness_exactly_on_diametral_circle_does_not_block() {
        // w = (5, 5) sits exactly on the circle with diameter u–v: the
        // Gabriel test is strict (open disk), so the edge survives the tie.
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 5.0),
            ],
            Aabb::square(50.0),
            20.0,
        );
        let gg = planarize(&topo, PlanarKind::Gabriel);
        assert!(
            gg.row(0).contains(&NodeId(1)),
            "boundary witness must not block"
        );
        assert!(gg.row(1).contains(&NodeId(0)));
        // Nudge the witness strictly inside: now it must block.
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 4.9),
            ],
            Aabb::square(50.0),
            20.0,
        );
        let gg = planarize(&topo, PlanarKind::Gabriel);
        assert!(
            !gg.row(0).contains(&NodeId(1)),
            "interior witness must block"
        );
    }

    #[test]
    fn witness_exactly_on_lune_boundary_does_not_block_rng() {
        // w equidistant (= d) from both endpoints sits on the closed lune
        // boundary; the RNG test is strict, so the edge survives.
        let tie = Point::new(5.0, 75.0_f64.sqrt()); // |wu| = |wv| = 10 = |uv|
        let topo = Topology::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), tie],
            Aabb::square(50.0),
            20.0,
        );
        let rng = planarize(&topo, PlanarKind::RelativeNeighborhood);
        assert!(
            rng.row(0).contains(&NodeId(1)),
            "lune-boundary tie must not block"
        );
        // Strictly inside the lune: blocked.
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 8.0),
            ],
            Aabb::square(50.0),
            20.0,
        );
        let rng = planarize(&topo, PlanarKind::RelativeNeighborhood);
        assert!(
            !rng.row(0).contains(&NodeId(1)),
            "lune-interior witness must block"
        );
    }

    #[test]
    fn duplicate_position_nodes_neither_block_nor_disconnect() {
        // Node 3 duplicates node 0's position exactly. A zero-distance
        // twin is never a witness (every predicate is strict), both copies
        // keep their edges, and the graphs stay symmetric and connected.
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(0.0, 0.0),
            ],
            Aabb::square(50.0),
            15.0,
        );
        assert_symmetric_and_contained(&topo);
        assert_connectivity_preserved(&topo);
        let gg = planarize(&topo, PlanarKind::Gabriel);
        assert!(gg.row(0).contains(&NodeId(1)), "twin must not block 0-1");
        assert!(gg.row(3).contains(&NodeId(1)), "twin keeps its own edges");
        assert!(gg.row(0).contains(&NodeId(3)), "zero-length edge survives");
    }

    #[test]
    fn live_filter_with_all_alive_matches_unfiltered() {
        let topo = random_topo(26);
        let alive = vec![true; topo.len()];
        let mut buf = Vec::new();
        for kind in [PlanarKind::Gabriel, PlanarKind::RelativeNeighborhood] {
            for i in 0..topo.len() {
                let u = NodeId(i as u32);
                live_planar_neighbors_into(&topo, u, kind, &alive, &mut buf);
                assert_eq!(
                    buf.as_slice(),
                    local_planar_neighbors(&topo, u, kind).as_slice(),
                    "node {i} {kind:?}"
                );
            }
        }
    }

    #[test]
    fn live_filter_preserves_live_subgraph_connectivity() {
        // Kill 20% of nodes; wherever the live unit-disk graph is
        // connected, the live-filtered Gabriel graph must be too.
        let topo = random_topo(27);
        let mut alive = vec![true; topo.len()];
        for i in (0..topo.len()).step_by(5) {
            alive[i] = false;
        }
        // BFS on the live UDG from the first live node.
        let start = alive.iter().position(|&a| a).unwrap();
        let reach = |adj: &mut dyn FnMut(usize) -> Vec<usize>| {
            let mut seen = vec![false; topo.len()];
            let mut q = std::collections::VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = q.pop_front() {
                for v in adj(u) {
                    if alive[v] && !seen[v] {
                        seen[v] = true;
                        q.push_back(v);
                    }
                }
            }
            seen
        };
        let udg = reach(&mut |u| {
            topo.neighbors(NodeId(u as u32))
                .iter()
                .map(|n| n.index())
                .collect()
        });
        let mut buf = Vec::new();
        let gg = reach(&mut |u| {
            live_planar_neighbors_into(
                &topo,
                NodeId(u as u32),
                PlanarKind::Gabriel,
                &alive,
                &mut buf,
            );
            buf.iter().map(|n| n.index()).collect()
        });
        for i in 0..topo.len() {
            if alive[i] {
                assert_eq!(
                    udg[i], gg[i],
                    "live Gabriel reachability diverges from live UDG at node {i}"
                );
            }
        }
        assert!(
            udg.iter().filter(|&&s| s).count() > 1,
            "test must be non-trivial"
        );
    }

    #[test]
    fn topology_caches_planar_neighbors() {
        let topo = random_topo(25);
        let a = topo
            .planar_neighbors(PlanarKind::Gabriel, NodeId(0))
            .to_vec();
        let b = topo
            .planar_neighbors(PlanarKind::Gabriel, NodeId(0))
            .to_vec();
        assert_eq!(a, b);
    }
}
