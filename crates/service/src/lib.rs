//! Concurrent multicast session service for the GMP reproduction.
//!
//! The paper's protocol is per-hop stateless: every forwarder rebuilds
//! its virtual Steiner tree from the packet alone, so a long-lived
//! multicast *service* — thousands of overlapping sessions against the
//! same deployment — needs no per-session router state at all. This
//! crate exploits that: a [`SessionEngine`] drives N in-flight sessions
//! interleaved over one shared [`gmp_net::Topology`], sharing the
//! decision cache and pooled scratch state across sessions, with group
//! membership arriving as a live seq-ordered [`gmp_groups`] update
//! stream (wired to `gmp-faults` crash events by
//! [`ServiceWorkload::random`]).
//!
//! Determinism is load-bearing: each session's report is bit-identical
//! to running that session alone — see the `service_parity` suite in
//! `gmp-bench` and the module docs of [`engine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod workload;

pub use engine::{
    EngineProtocol, ParallelProtocol, ServiceConfig, ServiceRun, SessionEngine, SessionOutcome,
};
pub use workload::{
    GroupSpec, MembershipClock, ServiceWorkload, SessionSpec, TimedUpdate, WorkloadParams,
};

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_core::GmpRouter;
    use gmp_faults::FaultPlan;
    use gmp_net::{NodeId, Topology, TopologyConfig};
    use gmp_sim::{SimConfig, TaskRunner};

    fn paper_setup() -> (Topology, SimConfig) {
        let config = SimConfig::paper();
        let topo = Topology::random(&TopologyConfig::new(800.0, 400, config.radio_range), 9);
        (topo, config)
    }

    fn workload(topo: &Topology, sessions: usize, seed: u64) -> ServiceWorkload {
        let candidates: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        let params = WorkloadParams {
            groups: 8,
            members_per_group: 8,
            churn_updates: 60,
            sessions,
            duration_s: 30.0,
            min_members: 2,
            max_members: 20,
            crash_detect_s: 15.0,
        };
        let plan = FaultPlan::none()
            .with_crash(NodeId(5), 0.0)
            .with_crash(NodeId(17), 0.0);
        ServiceWorkload::random(&candidates, &params, &plan, seed)
    }

    #[test]
    fn engine_is_deterministic_across_runs() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 64, 21);
        let mut router = GmpRouter::default();
        let mut engine = SessionEngine::new(&topo, &config);
        let a = engine.run(EngineProtocol::Shared(&mut router), &w);
        let b = engine.run(EngineProtocol::Shared(&mut router), &w);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.task, y.task);
            assert_eq!(x.report, y.report, "session {} diverged across runs", x.id);
        }
        assert_eq!(a.skipped_empty, b.skipped_empty);
        assert_eq!(a.decisions, b.decisions);
    }

    #[test]
    fn concurrent_reports_match_solo_runs() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 48, 33);
        let mut router = GmpRouter::default();
        let mut engine =
            SessionEngine::with_service(&topo, &config, ServiceConfig { max_in_flight: 7 });
        let run = engine.run(EngineProtocol::Shared(&mut router), &w);
        assert!(!run.outcomes.is_empty());

        let runner = TaskRunner::new(&topo, &config);
        for outcome in &run.outcomes {
            let mut solo = GmpRouter::default();
            let report = runner.run_seeded(&mut solo, &outcome.task, outcome.seed);
            assert_eq!(
                outcome.report, report,
                "session {} diverged from its solo run",
                outcome.id
            );
        }
    }

    #[test]
    fn tasks_match_workload_resolution() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 40, 5);
        let resolved = w.resolve_tasks();
        let mut router = GmpRouter::default();
        let mut engine = SessionEngine::new(&topo, &config);
        let run = engine.run(EngineProtocol::Shared(&mut router), &w);
        let expected_some = resolved.iter().flatten().count();
        assert_eq!(run.outcomes.len(), expected_some);
        assert_eq!(run.skipped_empty, resolved.len() - expected_some);
        for outcome in &run.outcomes {
            assert_eq!(
                Some(&outcome.task),
                resolved[outcome.id as usize].as_ref(),
                "session {} snapshot diverged from resolve_tasks",
                outcome.id
            );
        }
    }

    #[test]
    fn scratch_pool_reaches_steady_state() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 32, 2);
        let mut router = GmpRouter::default();
        let mut engine =
            SessionEngine::with_service(&topo, &config, ServiceConfig { max_in_flight: 4 });
        let first = engine.run(EngineProtocol::Shared(&mut router), &w);
        // At most 4 scratches ever exist; everything past the warm-up
        // reuses one.
        assert!(engine.pooled_scratches() <= 4);
        assert!(first.scratch_reuses >= first.outcomes.len().saturating_sub(4));
        // A warmed engine allocates no new scratches at all.
        let second = engine.run(EngineProtocol::Shared(&mut router), &w);
        assert_eq!(second.scratch_reuses, second.outcomes.len());
    }

    #[test]
    fn per_session_protocols_complete() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 16, 13);
        let mut factory = || Box::new(GmpRouter::default()) as Box<dyn gmp_sim::Protocol>;
        let mut engine = SessionEngine::new(&topo, &config);
        let run = engine.run(EngineProtocol::PerSession(&mut factory), &w);
        let mut shared = GmpRouter::default();
        let shared_run = engine.run(EngineProtocol::Shared(&mut shared), &w);
        assert_eq!(run.outcomes.len(), shared_run.outcomes.len());
        for (a, b) in run.outcomes.iter().zip(&shared_run.outcomes) {
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn parallel_matches_sequential_engine_across_thread_counts() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 48, 33);
        let mut router = GmpRouter::default();
        let mut engine = SessionEngine::new(&topo, &config);
        let reference = engine.run(EngineProtocol::Shared(&mut router), &w);
        assert!(!reference.outcomes.is_empty());

        let shared = std::sync::Arc::new(gmp_core::ConcurrentTreeCache::with_config(
            gmp_core::CacheConfig::default(),
        ));
        for threads in [1usize, 2, 4, 8] {
            let cache = std::sync::Arc::clone(&shared);
            let factory = move || {
                Box::new(GmpRouter::with_shared_cache(std::sync::Arc::clone(&cache)))
                    as Box<dyn gmp_sim::Protocol>
            };
            let mut par_engine = SessionEngine::new(&topo, &config);
            let run = par_engine.run_parallel(ParallelProtocol::PerWorker(&factory), &w, threads);
            assert_eq!(
                run.outcomes.len(),
                reference.outcomes.len(),
                "{threads} workers"
            );
            assert_eq!(run.skipped_empty, reference.skipped_empty);
            assert_eq!(run.decisions, reference.decisions);
            for (a, b) in run.outcomes.iter().zip(&reference.outcomes) {
                assert_eq!(a.id, b.id, "{threads} workers");
                assert_eq!(a.task, b.task, "{threads} workers");
                assert_eq!(
                    a.report, b.report,
                    "session {} diverged at {} workers",
                    a.id, threads
                );
            }
        }
        assert!(shared.stats().hits > 0, "workers must share warm decisions");
    }

    #[test]
    fn parallel_per_session_matches_per_worker() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 24, 9);
        let factory = || Box::new(GmpRouter::default()) as Box<dyn gmp_sim::Protocol>;
        let mut engine = SessionEngine::new(&topo, &config);
        let per_worker = engine.run_parallel(ParallelProtocol::PerWorker(&factory), &w, 3);
        let per_session = engine.run_parallel(ParallelProtocol::PerSession(&factory), &w, 3);
        assert_eq!(per_worker.outcomes.len(), per_session.outcomes.len());
        for (a, b) in per_worker.outcomes.iter().zip(&per_session.outcomes) {
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn parallel_pool_stays_warm_across_runs() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 32, 2);
        let factory = || Box::new(GmpRouter::default()) as Box<dyn gmp_sim::Protocol>;
        let mut engine =
            SessionEngine::with_service(&topo, &config, ServiceConfig { max_in_flight: 8 });
        engine.run_parallel(ParallelProtocol::PerWorker(&factory), &w, 4);
        let pooled = engine.pooled_scratches();
        assert!(pooled >= 1, "workers must return scratches to the pool");
        assert!(pooled <= 8, "pool bounded by the admission budget");
        // A warmed engine re-run at the same worker count allocates no
        // new scratches: every admission reuses a pooled one.
        let second = engine.run_parallel(ParallelProtocol::PerWorker(&factory), &w, 4);
        assert_eq!(second.scratch_reuses, second.outcomes.len());
        assert_eq!(engine.pooled_scratches(), pooled);
    }

    #[test]
    fn capacity_one_serializes_without_changing_outcomes() {
        let (topo, config) = paper_setup();
        let w = workload(&topo, 24, 77);
        let mut r1 = GmpRouter::default();
        let mut wide = SessionEngine::new(&topo, &config);
        let a = wide.run(EngineProtocol::Shared(&mut r1), &w);
        let mut r2 = GmpRouter::default();
        let mut narrow =
            SessionEngine::with_service(&topo, &config, ServiceConfig { max_in_flight: 1 });
        let b = narrow.run(EngineProtocol::Shared(&mut r2), &w);
        assert_eq!(a.outcomes.len(), b.outcomes.len());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.report, y.report);
        }
    }
}
