//! The concurrent session engine: one time-ordered loop multiplexing
//! many in-flight multicast sessions over a single shared topology.
//!
//! # Determinism
//!
//! With a fixed seed, every session's [`TaskReport`] is bit-identical to
//! running that session alone through [`gmp_sim::TaskRunner::run_seeded`].
//! That holds because sessions share only outcome-neutral state: the
//! read-only topology, a decision cache whose hits are verified bit-exact
//! before use, and pooled scratch buffers that each session resets on
//! entry. Everything outcome-bearing — the event queue, RNG, report,
//! fault runtime, and the task-local clock (each session starts at its
//! own t = 0) — lives inside the session's [`Session`] value, so the
//! interleaving order chosen by the engine cannot leak between sessions.
//!
//! # Scheduling
//!
//! Sessions arrive at their spec's `start_s` on a shared service clock.
//! One global event wheel (a binary heap keyed by `start_s +
//! session-local next event time`, admission order breaking ties) merges
//! all in-flight sessions' event streams; each pop steps exactly one
//! session by one event batch. New sessions are admitted when their
//! arrival time is due relative to the wheel head and a slot is free
//! (`ServiceConfig::max_in_flight` bounds in-flight sessions, which
//! bounds peak scratch memory). Membership is snapshotted at the
//! session's *scheduled* `start_s` via [`MembershipClock`], so admission
//! back-pressure never changes what a session multicasts to.
//!
//! # Parallel execution
//!
//! [`SessionEngine::run_parallel`] shards the event wheel across a pool
//! of worker threads: worker `w` of `n` owns the sessions at indices
//! `w, w+n, w+2n, …` of the workload and drives them through its own
//! copy of the wheel loop, with a private [`MembershipClock`] replay
//! (the strided subset stays sorted by `start_s`, so replay yields the
//! same snapshots the global clock would), private scratch, and a
//! per-worker or per-session protocol. Because each session's outcome
//! is a pure function of `(task, seed)` — the solo-parity invariant
//! above — the partition cannot change any report; results merge by
//! session id into the same order `run` produces. The partition is
//! *static* rather than work-stealing: a racy claim order would let OS
//! scheduling decide which worker's scratch grows to which high-water
//! mark, breaking the steady-state zero-allocation certificate that
//! BENCH_5 gates on (see DESIGN.md, "Concurrency model").

use std::collections::BinaryHeap;
use std::time::Instant;

use gmp_groups::GroupId;
use gmp_net::{NodeId, Topology};
use gmp_sim::{MulticastTask, Protocol, Session, SimConfig, SimScratch, TaskReport, TaskRunner};

use crate::workload::{MembershipClock, ServiceWorkload, SessionSpec};

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Maximum sessions in flight at once. Bounds peak scratch memory;
    /// has no effect on any session's outcome.
    pub max_in_flight: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { max_in_flight: 256 }
    }
}

/// How the engine obtains a routing protocol for each session.
///
/// Stateless-per-task protocols (GMP and all baselines except SMT/DSM)
/// can share one instance across every session — the caller keeps
/// ownership, so e.g. a `GmpRouter`'s cache statistics remain readable
/// after the run. Task-stateful protocols get a fresh instance per
/// session from the factory.
pub enum EngineProtocol<'p> {
    /// One protocol instance shared by every session.
    Shared(&'p mut dyn Protocol),
    /// A factory producing one fresh instance per session.
    PerSession(&'p mut dyn FnMut() -> Box<dyn Protocol>),
}

impl std::fmt::Debug for EngineProtocol<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineProtocol::Shared(_) => f.write_str("EngineProtocol::Shared"),
            EngineProtocol::PerSession(_) => f.write_str("EngineProtocol::PerSession"),
        }
    }
}

/// How [`SessionEngine::run_parallel`] workers obtain protocols.
///
/// [`Protocol`] has no `Send` bound, so instances cannot cross threads;
/// instead a `Sync` factory is shared and every instance is constructed
/// inside the worker that will use it. To share one decision cache
/// across workers, close over an `Arc<gmp_core::ConcurrentTreeCache>`
/// and hand each router a clone of the handle.
#[derive(Clone, Copy)]
pub enum ParallelProtocol<'p> {
    /// One fresh instance per worker, shared by that worker's sessions
    /// (the parallel analogue of [`EngineProtocol::Shared`]).
    PerWorker(&'p (dyn Fn() -> Box<dyn Protocol> + Sync)),
    /// A fresh instance per session (for task-stateful protocols, the
    /// analogue of [`EngineProtocol::PerSession`]).
    PerSession(&'p (dyn Fn() -> Box<dyn Protocol> + Sync)),
}

impl std::fmt::Debug for ParallelProtocol<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelProtocol::PerWorker(_) => f.write_str("ParallelProtocol::PerWorker"),
            ParallelProtocol::PerSession(_) => f.write_str("ParallelProtocol::PerSession"),
        }
    }
}

/// The result of one completed session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The session's id from its [`crate::SessionSpec`].
    pub id: u64,
    /// The group it multicast to.
    pub group: GroupId,
    /// Scheduled arrival on the service clock, seconds.
    pub start_s: f64,
    /// The failure-injection seed it ran with.
    pub seed: u64,
    /// The task it resolved at `start_s` (membership snapshot minus the
    /// source).
    pub task: MulticastTask,
    /// The simulation report — bit-identical to a solo run of
    /// `(task, seed)`.
    pub report: TaskReport,
    /// Routing decisions the session made.
    pub decisions: usize,
    /// Wall-clock time from admission to completion, seconds.
    pub latency_s: f64,
}

/// The result of one engine run.
#[derive(Debug)]
pub struct ServiceRun {
    /// Completed sessions, sorted by id.
    pub outcomes: Vec<SessionOutcome>,
    /// Sessions skipped because their group had no members besides the
    /// source at their `start_s`.
    pub skipped_empty: usize,
    /// How many admissions reused a pooled scratch instead of
    /// allocating a fresh one (steady state: every admission after the
    /// first `max_in_flight`).
    pub scratch_reuses: usize,
    /// Total routing decisions across all sessions.
    pub decisions: usize,
}

/// One in-flight session and the identity it will report under.
struct Active<'a> {
    id: u64,
    group: GroupId,
    start_s: f64,
    seed: u64,
    task: MulticastTask,
    session: Session<'a>,
    /// `Some` when the protocol is per-session; `None` means step with
    /// the shared instance.
    protocol: Option<Box<dyn Protocol>>,
    admitted: Instant,
}

/// Global event wheel entry: min-ordered by global time, then admission
/// order (`seq`), so the pop order — and with it the shared-cache access
/// pattern — is fully deterministic.
struct WheelEntry {
    global_t: f64,
    seq: u64,
    slot: usize,
}

impl PartialEq for WheelEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for WheelEntry {}
impl PartialOrd for WheelEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WheelEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .global_t
            .total_cmp(&self.global_t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Drives many multicast sessions over one shared topology.
///
/// The engine owns a scratch pool that persists across [`run`] calls, so
/// a warmed engine admits sessions without allocating new scratch state.
///
/// [`run`]: SessionEngine::run
#[derive(Debug)]
pub struct SessionEngine<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
    service: ServiceConfig,
    pool: Vec<SimScratch>,
}

impl<'a> SessionEngine<'a> {
    /// An engine with the default [`ServiceConfig`].
    pub fn new(topo: &'a Topology, config: &'a SimConfig) -> Self {
        SessionEngine::with_service(topo, config, ServiceConfig::default())
    }

    /// An engine with an explicit [`ServiceConfig`].
    pub fn with_service(topo: &'a Topology, config: &'a SimConfig, service: ServiceConfig) -> Self {
        assert!(
            service.max_in_flight >= 1,
            "engine needs at least one session slot"
        );
        SessionEngine {
            topo,
            config,
            service,
            pool: Vec::new(),
        }
    }

    /// Runs every session of `workload` to completion, interleaved.
    ///
    /// Returns one [`SessionOutcome`] per non-empty session, sorted by
    /// session id.
    pub fn run(&mut self, protocol: EngineProtocol<'_>, workload: &ServiceWorkload) -> ServiceRun {
        let mut run = run_shard(
            self.topo,
            self.config,
            self.service.max_in_flight,
            protocol,
            workload,
            &workload.sessions,
            &mut self.pool,
        );
        run.outcomes.sort_by_key(|o| o.id);
        run
    }

    /// [`run`](SessionEngine::run) sharded over `threads` worker
    /// threads (see the module docs, *Parallel execution*).
    ///
    /// Every session's report is bit-identical to what `run` — or a
    /// solo [`TaskRunner::run_seeded`] — produces, independent of
    /// `threads`; the outcomes are returned in the same id order. The
    /// engine's scratch pool is split round-robin across workers and
    /// re-collected afterwards, so a warmed engine stays warm across
    /// parallel runs at the same worker count.
    pub fn run_parallel(
        &mut self,
        protocol: ParallelProtocol<'_>,
        workload: &ServiceWorkload,
        threads: usize,
    ) -> ServiceRun {
        assert!(threads >= 1, "at least one worker thread");
        let mut shards: Vec<Vec<SessionSpec>> = vec![Vec::new(); threads];
        for (i, spec) in workload.sessions.iter().enumerate() {
            shards[i % threads].push(*spec);
        }
        let mut pools: Vec<Vec<SimScratch>> = Vec::with_capacity(threads);
        pools.resize_with(threads, Vec::new);
        for (i, scratch) in self.pool.drain(..).enumerate() {
            pools[i % threads].push(scratch);
        }
        // Each worker gets an equal share of the admission budget (at
        // least one slot), so total peak scratch stays bounded by
        // `max_in_flight` plus rounding.
        let per_worker = (self.service.max_in_flight / threads).max(1);

        let topo = self.topo;
        let config = self.config;
        let factory: &(dyn Fn() -> Box<dyn Protocol> + Sync) = match protocol {
            ParallelProtocol::PerWorker(f) | ParallelProtocol::PerSession(f) => f,
        };
        let per_session = matches!(protocol, ParallelProtocol::PerSession(_));

        let mut results: Vec<(ServiceRun, Vec<SimScratch>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter()
                .zip(pools)
                .map(|(shard, mut pool)| {
                    scope.spawn(move || {
                        // Protocols are created inside the worker:
                        // `Protocol` is not `Send`, only the factory
                        // crosses threads.
                        let run = if per_session {
                            let mut make = || factory();
                            run_shard(
                                topo,
                                config,
                                per_worker,
                                EngineProtocol::PerSession(&mut make),
                                workload,
                                shard,
                                &mut pool,
                            )
                        } else {
                            let mut own = factory();
                            run_shard(
                                topo,
                                config,
                                per_worker,
                                EngineProtocol::Shared(own.as_mut()),
                                workload,
                                shard,
                                &mut pool,
                            )
                        };
                        (run, pool)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let mut merged = ServiceRun {
            outcomes: Vec::with_capacity(workload.sessions.len()),
            skipped_empty: 0,
            scratch_reuses: 0,
            decisions: 0,
        };
        for (run, pool) in &mut results {
            merged.outcomes.append(&mut run.outcomes);
            merged.skipped_empty += run.skipped_empty;
            merged.scratch_reuses += run.scratch_reuses;
            merged.decisions += run.decisions;
            self.pool.append(pool);
        }
        merged.outcomes.sort_by_key(|o| o.id);
        merged
    }

    /// Scratch buffers currently pooled (idle).
    pub fn pooled_scratches(&self) -> usize {
        self.pool.len()
    }
}

/// Runs one shard of session specs through the event-wheel loop.
///
/// This is the whole engine for a single thread: [`SessionEngine::run`]
/// calls it with every spec, [`SessionEngine::run_parallel`] with each
/// worker's strided subset. `specs` must be sorted by `start_s` (any
/// subsequence of a workload's session list is), so the shard-local
/// [`MembershipClock`] replay snapshots exactly what the global clock
/// would. Outcomes are returned in completion order.
fn run_shard<'a>(
    topo: &'a Topology,
    config: &'a SimConfig,
    max_in_flight: usize,
    mut protocol: EngineProtocol<'_>,
    workload: &ServiceWorkload,
    specs: &[SessionSpec],
    pool: &mut Vec<SimScratch>,
) -> ServiceRun {
    let runner = TaskRunner::new(topo, config);
    let mut clock = MembershipClock::new();
    let mut dests: Vec<NodeId> = Vec::new();

    let mut wheel: BinaryHeap<WheelEntry> =
        BinaryHeap::with_capacity(max_in_flight.min(specs.len().max(1)));
    let mut slots: Vec<Option<Active<'a>>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut in_flight = 0usize;
    let mut admit_seq = 0u64;
    let mut next_spec = 0usize;

    let mut outcomes: Vec<SessionOutcome> = Vec::with_capacity(specs.len());
    let mut skipped_empty = 0usize;
    let mut scratch_reuses = 0usize;
    let mut decisions_total = 0usize;

    loop {
        // Admit every spec that is due (arrival at or before the
        // wheel head — or unconditionally when nothing is in flight)
        // while a slot is free.
        while next_spec < specs.len()
            && in_flight < max_in_flight
            && wheel
                .peek()
                .is_none_or(|head| specs[next_spec].start_s <= head.global_t)
        {
            let spec = specs[next_spec];
            next_spec += 1;
            clock.advance_to(&workload.updates, spec.start_s);
            let Some(task) = workload.snapshot_task(&clock, spec.group, &mut dests) else {
                skipped_empty += 1;
                continue;
            };

            let scratch = match pool.pop() {
                Some(s) => {
                    scratch_reuses += 1;
                    s
                }
                None => SimScratch::new(),
            };
            let mut own = match &mut protocol {
                EngineProtocol::Shared(_) => None,
                EngineProtocol::PerSession(factory) => Some(factory()),
            };
            let session = {
                let p = borrow_protocol(&mut protocol, &mut own);
                Session::begin(runner, p, &task, spec.seed, scratch)
            };
            let active = Active {
                id: spec.id,
                group: spec.group,
                start_s: spec.start_s,
                seed: spec.seed,
                task,
                session,
                protocol: own,
                admitted: Instant::now(),
            };
            let slot = match free_slots.pop() {
                Some(i) => {
                    slots[i] = Some(active);
                    i
                }
                None => {
                    slots.push(Some(active));
                    slots.len() - 1
                }
            };
            in_flight += 1;
            let seq = admit_seq;
            admit_seq += 1;

            match slots[slot].as_ref().and_then(|a| a.session.next_time()) {
                Some(t) => wheel.push(WheelEntry {
                    global_t: spec.start_s + t,
                    seq,
                    slot,
                }),
                // A session whose initial transmit already drained the
                // queue (e.g. an unreachable source) completes at once.
                None => {
                    finalize(
                        &mut slots,
                        slot,
                        pool,
                        &mut free_slots,
                        &mut in_flight,
                        &mut outcomes,
                        &mut decisions_total,
                    );
                }
            }
        }

        let Some(head) = wheel.pop() else {
            if next_spec >= specs.len() {
                break;
            }
            // Nothing in flight (an empty wheel implies that) but
            // specs remain: loop back and admit them.
            continue;
        };

        {
            let active = slots[head.slot]
                .as_mut()
                .expect("wheel entry points at a live session");
            let p = borrow_protocol(&mut protocol, &mut active.protocol);
            active.session.step(p);
        }
        let next = slots[head.slot]
            .as_ref()
            .and_then(|a| a.session.next_time());
        match next {
            Some(t) => {
                let start_s = slots[head.slot].as_ref().unwrap().start_s;
                wheel.push(WheelEntry {
                    global_t: start_s + t,
                    seq: head.seq,
                    slot: head.slot,
                });
            }
            None => {
                finalize(
                    &mut slots,
                    head.slot,
                    pool,
                    &mut free_slots,
                    &mut in_flight,
                    &mut outcomes,
                    &mut decisions_total,
                );
            }
        }
    }

    debug_assert_eq!(in_flight, 0, "all sessions must drain");
    ServiceRun {
        outcomes,
        skipped_empty,
        scratch_reuses,
        decisions: decisions_total,
    }
}

/// The protocol a session steps with: its own boxed instance when
/// per-session, the shared instance otherwise.
fn borrow_protocol<'s>(
    protocol: &'s mut EngineProtocol<'_>,
    own: &'s mut Option<Box<dyn Protocol>>,
) -> &'s mut dyn Protocol {
    if let Some(boxed) = own {
        return boxed.as_mut();
    }
    match protocol {
        EngineProtocol::Shared(shared) => &mut **shared,
        EngineProtocol::PerSession(_) => {
            unreachable!("per-session engines always carry an owned protocol")
        }
    }
}

/// Completes the session in `slot`: folds its report, recycles its
/// scratch into the pool, and frees the slot.
fn finalize<'a>(
    slots: &mut [Option<Active<'a>>],
    slot: usize,
    pool: &mut Vec<SimScratch>,
    free_slots: &mut Vec<usize>,
    in_flight: &mut usize,
    outcomes: &mut Vec<SessionOutcome>,
    decisions_total: &mut usize,
) {
    let active = slots[slot].take().expect("finalizing a live session");
    let decisions = active.session.decisions();
    let latency_s = active.admitted.elapsed().as_secs_f64();
    let (report, scratch) = active.session.finish();
    pool.push(scratch);
    *decisions_total += decisions;
    outcomes.push(SessionOutcome {
        id: active.id,
        group: active.group,
        start_s: active.start_s,
        seed: active.seed,
        task: active.task,
        report,
        decisions,
        latency_s,
    });
    free_slots.push(slot);
    *in_flight -= 1;
}
