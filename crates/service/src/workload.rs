//! Service workloads: groups, a live membership stream, and session
//! arrivals, all generated deterministically from one seed.
//!
//! A [`ServiceWorkload`] is the engine's entire input: a set of multicast
//! groups (each rooted at a source node), a time-sorted stream of
//! seq-ordered [`MembershipUpdate`]s (initial joins, random churn, and
//! leaves derived from `gmp-faults` crash events — the membership service
//! noticing failed members), and a time-sorted list of session arrivals.
//! Because the stream is seq-ordered, any replay of a prefix yields the
//! same membership (the `membership_convergence` invariant), so a
//! session's destination set is a pure function of `(workload, start_s)`
//! — which is what lets the solo-replay parity suite reconstruct every
//! concurrent session's task without the engine.

use std::collections::BTreeMap;

use gmp_faults::{FaultEvent, FaultPlan};
use gmp_groups::{GroupId, MembershipAction, MembershipSet, MembershipUpdate};
use gmp_net::NodeId;
use gmp_sim::MulticastTask;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One multicast group: its id and the source node every session for the
/// group multicasts from (the paper's prime node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSpec {
    /// The group.
    pub group: GroupId,
    /// Source / prime node of every session addressed to the group.
    pub source: NodeId,
}

/// One membership update stamped with its service-time arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedUpdate {
    /// Service time the update reaches the membership tables, seconds.
    pub at_s: f64,
    /// The update itself (seq-ordered per member and group).
    pub update: MembershipUpdate,
}

/// One session arrival: at `start_s` the group's source snapshots the
/// membership and multicasts to it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Stable session id (also the index into
    /// [`ServiceWorkload::resolve_tasks`]).
    pub id: u64,
    /// Service-time arrival, seconds. Membership is snapshotted at this
    /// instant (updates with `at_s <= start_s` applied) regardless of
    /// when the engine actually admits the session.
    pub start_s: f64,
    /// The group addressed.
    pub group: GroupId,
    /// Per-session failure-injection seed.
    pub seed: u64,
}

/// Shape knobs for [`ServiceWorkload::random`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// Number of multicast groups.
    pub groups: usize,
    /// Initial members per group (joined at t = 0).
    pub members_per_group: usize,
    /// Random join/leave churn updates spread over the duration.
    pub churn_updates: usize,
    /// Session arrivals spread over the duration.
    pub sessions: usize,
    /// Arrival horizon, service seconds.
    pub duration_s: f64,
    /// Random churn never shrinks a group below this floor (crash-derived
    /// leaves may).
    pub min_members: usize,
    /// Random churn never grows a group beyond this cap, so long-running
    /// workloads reach a membership steady state instead of growing
    /// without bound.
    pub max_members: usize,
    /// Earliest service time crash-derived leaves reach the membership
    /// tables (failure-detection latency): sessions before it still
    /// address crashed members, sessions after it no longer do.
    pub crash_detect_s: f64,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            groups: 16,
            members_per_group: 10,
            churn_updates: 200,
            sessions: 1000,
            duration_s: 60.0,
            min_members: 2,
            max_members: 32,
            crash_detect_s: 30.0,
        }
    }
}

/// Replays the membership stream up to a service time, incrementally.
///
/// Both the concurrent engine and the standalone
/// [`ServiceWorkload::resolve_tasks`] replay membership through this one
/// type, so the snapshot a session sees is engine-independent by
/// construction.
#[derive(Debug, Default)]
pub struct MembershipClock {
    sets: BTreeMap<GroupId, MembershipSet>,
    cursor: usize,
}

impl MembershipClock {
    /// A clock at service time 0 with no updates applied.
    pub fn new() -> Self {
        MembershipClock::default()
    }

    /// Applies every update with `at_s <= now_s` not yet applied.
    /// `updates` must be the workload's stream (time-sorted); the cursor
    /// only moves forward.
    pub fn advance_to(&mut self, updates: &[TimedUpdate], now_s: f64) {
        while let Some(timed) = updates.get(self.cursor) {
            if timed.at_s > now_s {
                break;
            }
            let u = timed.update;
            self.sets
                .entry(u.group)
                .or_default()
                .apply(u.node, u.action, u.seq);
            self.cursor += 1;
        }
    }

    /// Appends the group's current members to `out`, ascending.
    pub fn members_into(&self, group: GroupId, out: &mut Vec<NodeId>) {
        if let Some(set) = self.sets.get(&group) {
            set.members_into(out);
        }
    }
}

/// The full input of one engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceWorkload {
    /// The groups, indexable by `GroupId.0`.
    pub groups: Vec<GroupSpec>,
    /// The membership stream, sorted ascending by `at_s` (stable).
    pub updates: Vec<TimedUpdate>,
    /// Session arrivals, sorted ascending by `start_s`.
    pub sessions: Vec<SessionSpec>,
}

/// Generation-time event kinds, merged into one service timeline.
enum ChurnKind {
    /// Random membership churn in one group (index into `groups`).
    Random(usize),
    /// The membership service notices a crashed node and drops it from
    /// every group it belongs to.
    CrashLeave(NodeId),
}

impl ServiceWorkload {
    /// Deterministic workload over `candidates` (the eligible node pool —
    /// the whole topology at paper scale, a task window's interior on a
    /// sharded deployment).
    ///
    /// Crash events of `plan` are wired into the membership stream as
    /// leaves at `max(at_s, params.crash_detect_s)`, modeling the
    /// membership service learning of failures after a detection delay.
    ///
    /// # Panics
    ///
    /// Panics if `params.groups == 0` or `candidates` cannot seat a source
    /// plus one member.
    pub fn random(
        candidates: &[NodeId],
        params: &WorkloadParams,
        plan: &FaultPlan,
        seed: u64,
    ) -> Self {
        assert!(params.groups > 0, "workload needs at least one group");
        assert!(
            candidates.len() >= 2,
            "workload needs a source and at least one member candidate"
        );
        assert!(
            params.duration_s > 0.0,
            "workload duration must be positive"
        );
        assert!(
            params.min_members <= params.max_members,
            "membership floor above cap"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut groups = Vec::with_capacity(params.groups);
        let mut updates: Vec<TimedUpdate> = Vec::new();
        let mut seqs: BTreeMap<(GroupId, NodeId), u64> = BTreeMap::new();
        let mut next_seq = |group: GroupId, node: NodeId| -> u64 {
            let s = seqs.entry((group, node)).or_insert(0);
            *s += 1;
            *s
        };
        // Per-group shuffled member pools (source excluded) and the
        // current membership tracked during generation.
        let mut pools: Vec<Vec<NodeId>> = Vec::with_capacity(params.groups);
        let mut members: Vec<Vec<NodeId>> = Vec::with_capacity(params.groups);
        for gi in 0..params.groups {
            let group = GroupId(gi as u32);
            let mut pool = candidates.to_vec();
            pool.shuffle(&mut rng);
            let source = pool[0];
            let pool: Vec<NodeId> = pool[1..].to_vec();
            groups.push(GroupSpec { group, source });
            let initial = params.members_per_group.min(pool.len());
            let mut cur = Vec::with_capacity(initial);
            for &node in &pool[..initial] {
                let seq = next_seq(group, node);
                updates.push(TimedUpdate {
                    at_s: 0.0,
                    update: MembershipUpdate {
                        group,
                        node,
                        action: MembershipAction::Join,
                        seq,
                    },
                });
                cur.push(node);
            }
            pools.push(pool);
            members.push(cur);
        }

        // Merge random churn and crash detections into one timeline,
        // ordered by time (ties broken by insertion index, so generation
        // is fully deterministic).
        let mut timeline: Vec<(f64, usize, ChurnKind)> = Vec::new();
        for i in 0..params.churn_updates {
            let t = rng.gen_range(0.0..params.duration_s);
            let g = rng.gen_range(0..params.groups);
            timeline.push((t, i, ChurnKind::Random(g)));
        }
        let mut idx = params.churn_updates;
        for event in &plan.events {
            if let FaultEvent::Crash { node, at_s } = event {
                let detect = at_s.max(params.crash_detect_s);
                timeline.push((detect, idx, ChurnKind::CrashLeave(*node)));
                idx += 1;
            }
        }
        timeline.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        for (at_s, _, kind) in timeline {
            match kind {
                ChurnKind::Random(g) => {
                    let group = groups[g].group;
                    let pool = &pools[g];
                    if pool.is_empty() {
                        continue;
                    }
                    let node = pool[rng.gen_range(0..pool.len())];
                    let cur = &mut members[g];
                    if let Some(pos) = cur.iter().position(|&m| m == node) {
                        // Leave, unless that would shrink the group below
                        // the floor (then the churn tick is a no-op).
                        if cur.len() > params.min_members {
                            cur.swap_remove(pos);
                            let seq = next_seq(group, node);
                            updates.push(TimedUpdate {
                                at_s,
                                update: MembershipUpdate {
                                    group,
                                    node,
                                    action: MembershipAction::Leave,
                                    seq,
                                },
                            });
                        }
                    } else if cur.len() < params.max_members {
                        cur.push(node);
                        let seq = next_seq(group, node);
                        updates.push(TimedUpdate {
                            at_s,
                            update: MembershipUpdate {
                                group,
                                node,
                                action: MembershipAction::Join,
                                seq,
                            },
                        });
                    }
                }
                ChurnKind::CrashLeave(node) => {
                    for (g, cur) in members.iter_mut().enumerate() {
                        if let Some(pos) = cur.iter().position(|&m| m == node) {
                            cur.swap_remove(pos);
                            let group = groups[g].group;
                            let seq = next_seq(group, node);
                            updates.push(TimedUpdate {
                                at_s,
                                update: MembershipUpdate {
                                    group,
                                    node,
                                    action: MembershipAction::Leave,
                                    seq,
                                },
                            });
                        }
                    }
                }
            }
        }

        // Session arrivals: uniform times, groups round-robin by id so
        // every group stays warm, per-session seeds mixed from the
        // workload seed.
        let mut times: Vec<f64> = (0..params.sessions)
            .map(|_| rng.gen_range(0.0..params.duration_s))
            .collect();
        times.sort_by(f64::total_cmp);
        let sessions = times
            .into_iter()
            .enumerate()
            .map(|(i, start_s)| SessionSpec {
                id: i as u64,
                start_s,
                group: GroupId((i % params.groups) as u32),
                seed: (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).rotate_left(17),
            })
            .collect();

        let workload = ServiceWorkload {
            groups,
            updates,
            sessions,
        };
        workload.assert_sorted();
        workload
    }

    /// The source node of `group`, if the workload defines the group.
    pub fn source_of(&self, group: GroupId) -> Option<NodeId> {
        self.groups
            .iter()
            .find(|g| g.group == group)
            .map(|g| g.source)
    }

    /// The task each session would snapshot at its `start_s` — one entry
    /// per session, in session order; `None` where the group had no
    /// members besides the source. This is the engine-independent
    /// resolution the sequential baseline and the parity suite replay.
    pub fn resolve_tasks(&self) -> Vec<Option<MulticastTask>> {
        let mut clock = MembershipClock::new();
        let mut dests: Vec<NodeId> = Vec::new();
        let mut out = Vec::with_capacity(self.sessions.len());
        for spec in &self.sessions {
            clock.advance_to(&self.updates, spec.start_s);
            out.push(self.snapshot_task(&clock, spec.group, &mut dests));
        }
        out
    }

    /// Snapshots `group`'s membership from `clock` into a task rooted at
    /// the group's source (`dests` is a reusable buffer).
    pub fn snapshot_task(
        &self,
        clock: &MembershipClock,
        group: GroupId,
        dests: &mut Vec<NodeId>,
    ) -> Option<MulticastTask> {
        let source = self.source_of(group)?;
        dests.clear();
        clock.members_into(group, dests);
        dests.retain(|&d| d != source);
        if dests.is_empty() {
            None
        } else {
            Some(MulticastTask::new(source, dests.clone()))
        }
    }

    fn assert_sorted(&self) {
        debug_assert!(
            self.updates.windows(2).all(|w| w[0].at_s <= w[1].at_s),
            "membership stream must be time-sorted"
        );
        debug_assert!(
            self.sessions
                .windows(2)
                .all(|w| w[0].start_s <= w[1].start_s),
            "session arrivals must be time-sorted"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let cands = candidates(200);
        let params = WorkloadParams {
            sessions: 50,
            ..WorkloadParams::default()
        };
        let plan = FaultPlan::none().with_crash(NodeId(3), 0.0);
        let a = ServiceWorkload::random(&cands, &params, &plan, 42);
        let b = ServiceWorkload::random(&cands, &params, &plan, 42);
        assert_eq!(a, b);
        let c = ServiceWorkload::random(&cands, &params, &plan, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn crash_events_become_leaves_after_detection() {
        let cands = candidates(40);
        let params = WorkloadParams {
            groups: 2,
            members_per_group: 15,
            churn_updates: 0,
            sessions: 10,
            duration_s: 10.0,
            min_members: 1,
            max_members: 32,
            crash_detect_s: 5.0,
        };
        // With 40 candidates and 15 members per group, node 7 is a member
        // of at least one group for most seeds; crash every node to make
        // the property seed-independent: every member must be dropped.
        let mut plan = FaultPlan::none();
        for n in 0..40 {
            plan = plan.with_crash(NodeId(n), 0.0);
        }
        let w = ServiceWorkload::random(&cands, &params, &plan, 7);
        let leaves: Vec<&TimedUpdate> = w
            .updates
            .iter()
            .filter(|u| matches!(u.update.action, MembershipAction::Leave))
            .collect();
        assert!(!leaves.is_empty(), "crashes must surface as leaves");
        assert!(
            leaves.iter().all(|u| (u.at_s - 5.0).abs() < 1e-9),
            "leaves land at the detection time"
        );
        // After detection every group is empty: late sessions resolve to
        // no task, early ones to the full membership.
        let mut clock = MembershipClock::new();
        clock.advance_to(&w.updates, 10.0);
        let mut buf = Vec::new();
        for g in &w.groups {
            assert_eq!(w.snapshot_task(&clock, g.group, &mut buf), None);
        }
    }

    #[test]
    fn resolved_tasks_match_incremental_clock_replay() {
        let cands = candidates(300);
        let params = WorkloadParams {
            sessions: 120,
            ..WorkloadParams::default()
        };
        let plan = FaultPlan::none();
        let w = ServiceWorkload::random(&cands, &params, &plan, 11);
        let resolved = w.resolve_tasks();
        assert_eq!(resolved.len(), w.sessions.len());
        // Replay with a fresh clock per session (quadratic, but small):
        // the incremental cursor must agree with from-scratch replays.
        let mut dests = Vec::new();
        for (spec, task) in w.sessions.iter().zip(&resolved) {
            let mut clock = MembershipClock::new();
            clock.advance_to(&w.updates, spec.start_s);
            assert_eq!(&w.snapshot_task(&clock, spec.group, &mut dests), task);
        }
        // Round-robin groups & floors: every session resolves to a task
        // here (no crashes, min_members ≥ 2).
        assert!(resolved.iter().all(|t| t.is_some()));
    }
}
