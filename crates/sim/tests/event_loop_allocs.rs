//! Proof of the event-loop allocation contract: with a warmed
//! [`SimScratch`], running a task allocates only for the *outputs* that
//! necessarily leave the loop — the fresh [`TaskReport`]'s own buffers and
//! the initial packet's destination list — never per event. The loop's
//! working state (event queue, collision heap, liveness/pending tables,
//! forward buffer) is reused in place, so hundreds of events, collisions,
//! and retransmissions add nothing beyond the logarithmic growth of the
//! report's transmission log.
//!
//! This file holds exactly one test: the counter is process-global, and a
//! sibling test running on another thread would pollute the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use gmp_geom::{Aabb, Point};
use gmp_net::{NodeId, Topology};
use gmp_sim::{
    Forward, MulticastPacket, MulticastTask, NodeContext, Protocol, SimConfig, SimScratch,
    TaskRunner,
};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Hands each copy to the next node up the line, untouched. Moving the
/// packet into the forward keeps its destination list at one owner, so
/// the runner's delivery `retain` also works in place.
struct PassAlong {
    last: NodeId,
}

impl Protocol for PassAlong {
    fn name(&self) -> String {
        // Capacity-zero string: display names are irrelevant here and an
        // empty `String` performs no heap allocation.
        String::new()
    }
    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        if ctx.node < self.last {
            out.push(Forward {
                next_hop: NodeId(ctx.node.0 + 1),
                packet,
            });
        }
    }
}

#[test]
fn steady_state_event_loop_allocates_only_report_outputs() {
    // A line long enough that one task processes ~60 events; with the
    // retransmission budget and jitter enabled, the collision machinery
    // (pruning heap, backoff draws, re-scheduling) is fully exercised.
    let n = 60usize;
    let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
    let topo = Topology::from_positions(positions, Aabb::square(1000.0), 12.0);
    let config = SimConfig::paper()
        .with_radio_range(12.0)
        .with_collisions(true)
        .with_tx_jitter(0.002)
        .with_retransmissions(3);
    let runner = TaskRunner::new(&topo, &config);
    let task = MulticastTask::new(NodeId(0), vec![NodeId(n as u32 - 1)]);
    let mut protocol = PassAlong {
        last: NodeId(n as u32 - 1),
    };
    let mut scratch = SimScratch::new();

    // Warm-up: grows every scratch buffer (event queue, collision heap,
    // liveness and pending tables, forward buffer) to its high-water mark
    // and initializes the topology's lazy caches.
    for seed in 0..3 {
        let r = runner.run_with_scratch(&mut protocol, &task, seed, &mut scratch);
        assert!(r.delivered_all());
    }

    let runs = 20usize;
    let before = ALLOCS.load(Ordering::SeqCst);
    for seed in 0..runs as u64 {
        let r = runner.run_with_scratch(&mut protocol, &task, seed, &mut scratch);
        assert!(r.delivered_all(), "line delivery failed at seed {seed}");
    }
    let after = ALLOCS.load(Ordering::SeqCst);
    let per_task = (after - before) as f64 / runs as f64;

    // Per-task budget, all of it output that escapes the loop:
    //   2  initial packet (destination Vec clone + its ref-count box)
    //  ~14 report.links / report.link_times_s doubling up to ~64 entries
    //   2  one node in each delivery BTreeMap
    // Everything else — queue, on-air heap, pending, forwards — must be
    // amortized to zero by the scratch. 32 leaves slack for allocator or
    // std growth-policy differences without letting a per-event leak
    // (~60 events/task) through.
    assert!(
        per_task <= 32.0,
        "steady-state task performed {per_task} allocations — the event \
         loop is allocating per event, not per report"
    );

    // Steady state is exactly reproducible: a second measured batch costs
    // the same as the first, so the loop neither accumulates state nor
    // allocates on a warm-up-dependent path.
    let before2 = ALLOCS.load(Ordering::SeqCst);
    for seed in 0..runs as u64 {
        let _ = runner.run_with_scratch(&mut protocol, &task, seed, &mut scratch);
    }
    let after2 = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        after2 - before2,
        "allocation count drifted between identical steady-state batches"
    );
}
