//! Per-task measurement results.

use std::collections::BTreeMap;

use gmp_net::NodeId;

pub use gmp_faults::{FailedDest, FailureCause};

/// Everything measured while running one multicast task.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// Protocol display name.
    pub protocol: String,
    /// Total transmissions — the paper's "total number of hops" (Fig. 11).
    pub transmissions: usize,
    /// Total energy in joules, including listener receive power (Fig. 14).
    pub energy_j: f64,
    /// Hop count at which each destination was first reached (Fig. 12
    /// averages these).
    pub delivery_hops: BTreeMap<NodeId, u32>,
    /// Simulated time at which each destination was first reached,
    /// seconds (latency CDFs).
    pub delivery_times_s: BTreeMap<NodeId, f64>,
    /// Destinations never reached, each with its failure cause as
    /// classified by the delivery-guarantee oracle (Fig. 15 counts tasks
    /// with any of these), sorted by destination id.
    pub failed_dests: Vec<FailedDest>,
    /// Packet copies dropped by the per-destination hop cap or perimeter
    /// loop detection.
    pub dropped_packets: usize,
    /// Simulated completion time of the last delivery, seconds.
    pub completion_time_s: f64,
    /// Total bytes put on the air (for the header-overhead ablation).
    pub bytes_transmitted: usize,
    /// `true` when the event cap fired (indicates a protocol bug or an
    /// undetected loop).
    pub truncated: bool,
    /// Every transmission as `(sender, receiver)`, in send order — the
    /// realized multicast tree (plus any perimeter detours), used by route
    /// visualization and structural tests.
    pub links: Vec<(NodeId, NodeId)>,
    /// Send time of each transmission in [`TaskReport::links`] order,
    /// seconds.
    pub link_times_s: Vec<f64>,
}

impl TaskReport {
    /// Creates an empty report for `protocol`.
    pub fn new(protocol: String) -> Self {
        TaskReport {
            protocol,
            transmissions: 0,
            energy_j: 0.0,
            delivery_hops: BTreeMap::new(),
            delivery_times_s: BTreeMap::new(),
            failed_dests: Vec::new(),
            dropped_packets: 0,
            completion_time_s: 0.0,
            bytes_transmitted: 0,
            truncated: false,
            links: Vec::new(),
            link_times_s: Vec::new(),
        }
    }

    /// `true` when every destination was reached.
    pub fn delivered_all(&self) -> bool {
        self.failed_dests.is_empty()
    }

    /// Number of destinations reached.
    pub fn delivered_count(&self) -> usize {
        self.delivery_hops.len()
    }

    /// The failed destination ids, without causes (the pre-oracle shape
    /// of [`TaskReport::failed_dests`]).
    pub fn failed_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.failed_dests.iter().map(|f| f.dest)
    }

    /// Failures the oracle could *not* justify from the fault model —
    /// the destination was reachable on the faulted graph, so the miss
    /// counts against the protocol.
    pub fn unjustified_failures(&self) -> impl Iterator<Item = &FailedDest> {
        self.failed_dests.iter().filter(|f| !f.is_justified())
    }

    /// Mean per-destination hop count over the *delivered* destinations
    /// (Fig. 12's metric), or `None` when nothing was delivered.
    pub fn mean_dest_hops(&self) -> Option<f64> {
        if self.delivery_hops.is_empty() {
            return None;
        }
        Some(
            self.delivery_hops.values().map(|&h| h as f64).sum::<f64>()
                / self.delivery_hops.len() as f64,
        )
    }

    /// The largest per-destination hop count, or `None` if none delivered.
    pub fn max_dest_hops(&self) -> Option<u32> {
        self.delivery_hops.values().copied().max()
    }

    /// Renders an ns-2-style event trace: one `s`end line per transmission
    /// and one `r`eceive line per first delivery, sorted by time —
    /// the role ns-2's trace files played for the paper's evaluation.
    ///
    /// ```text
    /// s 0.000000 n3 n17
    /// r 0.001024 n17
    /// ```
    pub fn ns2_trace(&self) -> String {
        #[derive(PartialEq)]
        enum Kind {
            Send(NodeId, NodeId),
            Recv(NodeId),
        }
        let mut events: Vec<(f64, usize, Kind)> = Vec::new();
        for (i, (&(from, to), &t)) in self.links.iter().zip(&self.link_times_s).enumerate() {
            events.push((t, i, Kind::Send(from, to)));
        }
        for (&node, &t) in &self.delivery_times_s {
            events.push((t, usize::MAX, Kind::Recv(node)));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut out = String::new();
        use std::fmt::Write as _;
        for (t, _, kind) in events {
            match kind {
                Kind::Send(from, to) => {
                    let _ = writeln!(out, "s {t:.6} {from} {to}");
                }
                Kind::Recv(node) => {
                    let _ = writeln!(out, "r {t:.6} {node}");
                }
            }
        }
        out
    }
}

/// Streaming mean/min/max/variance accumulator (Welford's algorithm)
/// used by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    n: usize,
    sum: f64,
    min: f64,
    max: f64,
    mean_acc: f64,
    m2: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean_acc: 0.0,
            m2: 0.0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean_acc;
        self.mean_acc += delta / self.n as f64;
        self.m2 += delta * (x - self.mean_acc);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// The arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sample standard deviation (Bessel-corrected), or `None` with fewer
    /// than two observations.
    pub fn stddev(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some((self.m2 / (self.n - 1) as f64).sqrt())
        }
    }

    /// Half-width of the ~95% confidence interval on the mean
    /// (`1.96 · s/√n`), or `None` with fewer than two observations.
    pub fn ci95_half_width(&self) -> Option<f64> {
        self.stddev().map(|s| 1.96 * s / (self.n as f64).sqrt())
    }
}

impl Extend<f64> for Summary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Summary::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_report_is_empty() {
        let r = TaskReport::new("GMP".into());
        assert!(r.delivered_all());
        assert_eq!(r.delivered_count(), 0);
        assert_eq!(r.mean_dest_hops(), None);
        assert_eq!(r.max_dest_hops(), None);
    }

    #[test]
    fn delivery_statistics() {
        let mut r = TaskReport::new("GMP".into());
        r.delivery_hops.insert(NodeId(1), 4);
        r.delivery_hops.insert(NodeId(2), 8);
        r.failed_dests
            .push(FailedDest::new(NodeId(3), FailureCause::Disconnected));
        r.failed_dests
            .push(FailedDest::new(NodeId(4), FailureCause::HopCap));
        assert!(!r.delivered_all());
        assert_eq!(r.delivered_count(), 2);
        assert_eq!(
            r.failed_ids().collect::<Vec<_>>(),
            vec![NodeId(3), NodeId(4)]
        );
        assert_eq!(
            r.unjustified_failures().collect::<Vec<_>>(),
            vec![&FailedDest::new(NodeId(4), FailureCause::HopCap)]
        );
        assert_eq!(r.mean_dest_hops(), Some(6.0));
        assert_eq!(r.max_dest_hops(), Some(8));
    }

    #[test]
    fn summary_accumulates() {
        let s: Summary = [1.0, 2.0, 3.0, 10.0].into_iter().collect();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn empty_summary_has_no_stats() {
        let s = Summary::new();
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.count(), 0);
        assert_eq!(s.stddev(), None);
        assert_eq!(s.ci95_half_width(), None);
    }

    #[test]
    fn stddev_matches_two_pass_formula() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s: Summary = data.into_iter().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.stddev().unwrap() - var.sqrt()).abs() < 1e-12);
        assert!(
            (s.ci95_half_width().unwrap() - 1.96 * var.sqrt() / (data.len() as f64).sqrt()).abs()
                < 1e-12
        );
    }

    #[test]
    fn single_observation_has_no_stddev() {
        let mut s = Summary::new();
        s.add(5.0);
        assert_eq!(s.stddev(), None);
        assert_eq!(s.mean(), Some(5.0));
    }
}
