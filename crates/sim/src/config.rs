//! Simulation parameters (the paper's Table 1).

use gmp_faults::FaultPlan;
use gmp_net::{PlanarKind, TopologyConfig};
use serde::{Deserialize, Serialize};

/// All knobs of a simulation run. [`SimConfig::paper`] reproduces Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Side of the square deployment area, meters (paper: 1000).
    pub area_side: f64,
    /// Number of nodes (paper: 1000; Fig. 15 sweeps 400–1000).
    pub node_count: usize,
    /// Channel data rate, bits per second (paper: 1 Mbps).
    pub data_rate_bps: f64,
    /// Transmission power, watts (paper: 1.3 W).
    pub tx_power_w: f64,
    /// Receiving power, watts (paper: 0.9 W).
    pub rx_power_w: f64,
    /// Message size, bytes (paper: 128 B, fixed).
    pub message_bytes: usize,
    /// Radio range, meters (paper: 150 m).
    pub radio_range: f64,
    /// Per-destination hop cap; a packet exceeding it is dropped
    /// (paper Section 5.4: 100).
    pub max_path_hops: u32,
    /// Planar subgraph used for perimeter routing.
    pub planar: PlanarKindConfig,
    /// When `true`, airtime (and hence energy) scales with the encoded
    /// packet size instead of the fixed `message_bytes` — the
    /// header-overhead ablation. The paper uses fixed-size messages.
    pub size_dependent_airtime: bool,
    /// Fault-injection plan (extension): Bernoulli node/link failure
    /// probabilities plus an optional schedule of timed fault events
    /// (crashes, regional blackouts, duty-cycle sleep, link churn).
    /// [`FaultPlan::none`] — the default — reproduces the paper's
    /// fault-free runs bit-for-bit.
    pub faults: FaultPlan,
    /// Random per-transmission start jitter in seconds (extension):
    /// approximates carrier-sense/backoff staggering without modeling a
    /// full CSMA MAC. 0 means every forward leaves the instant it is
    /// decided. Only meaningful together with [`SimConfig::collisions`].
    pub tx_jitter_s: f64,
    /// Link-layer retransmissions after a collision (extension): 802.11
    /// retries a unicast frame up to 7 times, which is what made the
    /// paper's no-ARQ routing protocols survive a contended channel.
    /// Each retry costs a transmission and energy. Only meaningful with
    /// [`SimConfig::collisions`].
    pub max_retransmissions: u8,
    /// Model half-duplex radios and co-channel collisions (extension): a
    /// copy is lost if, during its airtime, any *other* node within radio
    /// range of the receiver is also transmitting (including the receiver
    /// itself). This is a protocol-model interference check — no capture,
    /// no backoff, no retransmissions — approximating the contention
    /// losses of the paper's 802.11 substrate without a tuning knob.
    pub collisions: bool,
    /// Optional transmit power control (extension): when set, the
    /// transmit power of each hop scales with the link distance as
    /// `overhead_w + (d / radio_range)^alpha · tx_power_w` instead of the
    /// paper's fixed 1.3 W. The paper's model corresponds to `None`.
    pub power_control: Option<PowerControl>,
    /// Hard cap on simulator events per task, guarding against protocol
    /// bugs that would loop forever.
    pub max_events: usize,
}

/// Distance-scaled transmit power parameters (extension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerControl {
    /// Path-loss exponent (free space 2, typical ground deployments 2–4).
    pub alpha: f64,
    /// Fixed electronics overhead per transmission, watts.
    pub overhead_w: f64,
}

/// Serializable mirror of [`PlanarKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PlanarKindConfig {
    /// Gabriel graph.
    #[default]
    Gabriel,
    /// Relative neighborhood graph.
    RelativeNeighborhood,
}

impl From<PlanarKindConfig> for PlanarKind {
    fn from(k: PlanarKindConfig) -> Self {
        match k {
            PlanarKindConfig::Gabriel => PlanarKind::Gabriel,
            PlanarKindConfig::RelativeNeighborhood => PlanarKind::RelativeNeighborhood,
        }
    }
}

impl SimConfig {
    /// The paper's Table 1 configuration.
    pub fn paper() -> Self {
        SimConfig {
            area_side: 1000.0,
            node_count: 1000,
            data_rate_bps: 1_000_000.0,
            tx_power_w: 1.3,
            rx_power_w: 0.9,
            message_bytes: 128,
            radio_range: 150.0,
            max_path_hops: 100,
            planar: PlanarKindConfig::Gabriel,
            size_dependent_airtime: false,
            faults: FaultPlan::none(),
            max_retransmissions: 0,
            tx_jitter_s: 0.0,
            collisions: false,
            power_control: None,
            max_events: 200_000,
        }
    }

    /// Replaces the deployment area side.
    pub fn with_area_side(mut self, side: f64) -> Self {
        self.area_side = side;
        self
    }

    /// Replaces the node count.
    pub fn with_node_count(mut self, n: usize) -> Self {
        self.node_count = n;
        self
    }

    /// Replaces the radio range.
    pub fn with_radio_range(mut self, rr: f64) -> Self {
        self.radio_range = rr;
        self
    }

    /// Replaces the per-destination hop cap.
    pub fn with_max_path_hops(mut self, hops: u32) -> Self {
        self.max_path_hops = hops;
        self
    }

    /// Enables size-dependent airtime (header-overhead ablation).
    pub fn with_size_dependent_airtime(mut self, on: bool) -> Self {
        self.size_dependent_airtime = on;
        self
    }

    /// Sets the Bernoulli node-failure injection probability (routed
    /// through [`SimConfig::faults`]).
    pub fn with_node_failure_prob(mut self, p: f64) -> Self {
        self.faults = self.faults.with_node_failure_prob(p);
        self
    }

    /// Sets the link-layer retransmission budget used after collisions.
    pub fn with_retransmissions(mut self, retries: u8) -> Self {
        self.max_retransmissions = retries;
        self
    }

    /// Sets the per-transmission start jitter.
    pub fn with_tx_jitter(mut self, jitter_s: f64) -> Self {
        assert!(jitter_s >= 0.0, "jitter must be non-negative");
        self.tx_jitter_s = jitter_s;
        self
    }

    /// Enables the half-duplex/co-channel collision model.
    pub fn with_collisions(mut self, on: bool) -> Self {
        self.collisions = on;
        self
    }

    /// Sets the Bernoulli per-transmission loss probability (routed
    /// through [`SimConfig::faults`]).
    pub fn with_link_loss_prob(mut self, p: f64) -> Self {
        self.faults = self.faults.with_link_loss_prob(p);
        self
    }

    /// Replaces the whole fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Enables distance-scaled transmit power (extension ablation).
    pub fn with_power_control(mut self, pc: PowerControl) -> Self {
        assert!(pc.alpha >= 1.0, "path-loss exponent must be ≥ 1");
        assert!(pc.overhead_w >= 0.0, "overhead must be non-negative");
        self.power_control = Some(pc);
        self
    }

    /// The planar subgraph as the `gmp-net` enum.
    pub fn planar_kind(&self) -> PlanarKind {
        self.planar.into()
    }

    /// The topology generator settings implied by this configuration.
    pub fn topology_config(&self) -> TopologyConfig {
        TopologyConfig::new(self.area_side, self.node_count, self.radio_range)
    }

    /// Airtime of one fixed-size message, seconds.
    pub fn message_airtime(&self) -> f64 {
        self.message_bytes as f64 * 8.0 / self.data_rate_bps
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_1() {
        let c = SimConfig::paper();
        assert_eq!(c.area_side, 1000.0);
        assert_eq!(c.node_count, 1000);
        assert_eq!(c.data_rate_bps, 1_000_000.0);
        assert_eq!(c.tx_power_w, 1.3);
        assert_eq!(c.rx_power_w, 0.9);
        assert_eq!(c.message_bytes, 128);
        assert_eq!(c.radio_range, 150.0);
        assert_eq!(c.max_path_hops, 100);
    }

    #[test]
    fn message_airtime_is_1_024_ms() {
        // 128 B × 8 / 1 Mbps = 1.024 ms.
        assert!((SimConfig::paper().message_airtime() - 0.001024).abs() < 1e-12);
    }

    #[test]
    fn builders_replace_fields() {
        let c = SimConfig::paper()
            .with_area_side(500.0)
            .with_node_count(42)
            .with_radio_range(99.0)
            .with_max_path_hops(7)
            .with_size_dependent_airtime(true)
            .with_node_failure_prob(0.25);
        assert_eq!(c.area_side, 500.0);
        assert_eq!(c.node_count, 42);
        assert_eq!(c.radio_range, 99.0);
        assert_eq!(c.max_path_hops, 7);
        assert!(c.size_dependent_airtime);
        assert_eq!(c.faults.node_failure_prob, 0.25);
        let t = c.topology_config();
        assert_eq!(t.node_count, 42);
        assert_eq!(t.radio_range, 99.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = SimConfig::paper().with_node_failure_prob(1.5);
    }

    #[test]
    fn with_faults_replaces_the_whole_plan() {
        let plan = FaultPlan::none()
            .with_node_failure_prob(0.1)
            .with_crash(gmp_net::NodeId(4), 2.0);
        let c = SimConfig::paper()
            .with_link_loss_prob(0.5)
            .with_faults(plan.clone());
        assert_eq!(c.faults, plan);
        assert_eq!(c.faults.link_loss_prob, 0.0, "replaced, not merged");
        // Legacy builders keep composing on top of the installed plan.
        let c = c.with_link_loss_prob(0.25);
        assert_eq!(c.faults.node_failure_prob, 0.1);
        assert_eq!(c.faults.link_loss_prob, 0.25);
        assert!(c.faults.has_events());
    }

    #[test]
    fn config_round_trips_through_serde() {
        let c = SimConfig::paper();
        let json = serde_json_like(&c);
        assert!(json.contains("1000"));
    }

    // Serde smoke test without serde_json: use the Debug + a Serializer
    // shim via toml-ish check. We just ensure Serialize derives compile
    // and Debug output is stable enough to grep.
    fn serde_json_like(c: &SimConfig) -> String {
        format!("{c:?}")
    }

    #[test]
    fn planar_kind_conversion() {
        assert_eq!(
            PlanarKind::from(PlanarKindConfig::Gabriel),
            PlanarKind::Gabriel
        );
        assert_eq!(
            PlanarKind::from(PlanarKindConfig::RelativeNeighborhood),
            PlanarKind::RelativeNeighborhood
        );
        assert_eq!(SimConfig::default(), SimConfig::paper());
    }
}
