//! Geocasting support (extension): deliver to *every node inside a
//! geographic region* instead of an explicit destination list.
//!
//! The paper situates GMP next to geocasting schemes \[15, 2, 28\]; this
//! module provides the simulation machinery (task, packet, runner) so the
//! workspace can host geocast protocols built on the same substrate —
//! see `gmp-core`'s `geocast` module for the routing logic.
//!
//! The crucial semantic difference from multicast: the source does *not*
//! know the member set. The runner computes the ground-truth membership
//! (all deployed nodes inside the region) only to score coverage.

use std::collections::HashSet;

use gmp_geom::Region;
use gmp_net::{NodeId, PerimeterState, Topology};

use crate::config::SimConfig;
use crate::energy::EnergyModel;
use crate::protocol::NodeContext;

/// A geocast task: one source, one target region.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocastTask {
    /// The originating node.
    pub source: NodeId,
    /// The target region.
    pub region: Region,
}

/// How a geocast packet is currently being routed.
#[derive(Debug, Clone, PartialEq)]
pub enum GeocastPhase {
    /// Approaching the region by geographic forwarding.
    Approach,
    /// Approaching in perimeter mode (void recovery).
    Perimeter(PerimeterState),
    /// Inside the region: restricted flooding.
    Flood,
}

/// A geocast packet.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocastPacket {
    /// The originating node.
    pub origin: NodeId,
    /// The target region.
    pub region: Region,
    /// Transmissions so far (per copy).
    pub hops: u32,
    /// Current routing phase.
    pub phase: GeocastPhase,
}

/// One outgoing geocast copy.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocastForward {
    /// The receiving neighbor.
    pub next_hop: NodeId,
    /// The copy.
    pub packet: GeocastPacket,
}

/// A geocast routing protocol.
///
/// Unlike [`Protocol`](crate::Protocol), implementations typically keep a
/// per-node duplicate-suppression table, emulating the state a real node
/// would hold per geocast session; [`GeocastProtocol::reset`] clears it
/// between tasks.
pub trait GeocastProtocol {
    /// Display name.
    fn name(&self) -> String;
    /// Decide forwarding for `packet` arriving at (or originating from)
    /// `ctx.node`.
    fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: GeocastPacket) -> Vec<GeocastForward>;
    /// Reset per-session state before a new task.
    fn reset(&mut self) {}
}

/// Results of one geocast task.
#[derive(Debug, Clone, PartialEq)]
pub struct GeocastReport {
    /// Protocol display name.
    pub protocol: String,
    /// Nodes actually inside the region (ground truth), sorted.
    pub members: Vec<NodeId>,
    /// Members that received the packet, sorted.
    pub reached: Vec<NodeId>,
    /// Total transmissions.
    pub transmissions: usize,
    /// Total energy, joules (same accounting as multicast: tx power plus
    /// receive power of every listener in range).
    pub energy_j: f64,
    /// Copies dropped by the hop cap.
    pub dropped_packets: usize,
}

impl GeocastReport {
    /// Fraction of members reached (1.0 when the region is empty).
    pub fn coverage(&self) -> f64 {
        if self.members.is_empty() {
            1.0
        } else {
            self.reached.len() as f64 / self.members.len() as f64
        }
    }
}

/// Runs geocast tasks over a topology with a time-ordered event loop.
#[derive(Debug, Clone, Copy)]
pub struct GeocastRunner<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
}

impl<'a> GeocastRunner<'a> {
    /// Creates a runner.
    ///
    /// # Panics
    ///
    /// Panics if the topology's radio range disagrees with the config's
    /// (same check as the multicast runner).
    pub fn new(topo: &'a Topology, config: &'a SimConfig) -> Self {
        assert!(
            (topo.radio_range() - config.radio_range).abs() < 1e-9,
            "topology radio range != config radio range"
        );
        GeocastRunner { topo, config }
    }

    /// Runs one geocast task to completion and scores coverage.
    pub fn run(&self, protocol: &mut dyn GeocastProtocol, task: &GeocastTask) -> GeocastReport {
        protocol.reset();
        let energy = EnergyModel::from_config(self.config);
        let members: Vec<NodeId> = self
            .topo
            .nodes()
            .filter(|n| task.region.contains(n.pos))
            .map(|n| n.id)
            .collect();
        let member_set: HashSet<NodeId> = members.iter().copied().collect();
        let mut report = GeocastReport {
            protocol: protocol.name(),
            members,
            reached: Vec::new(),
            transmissions: 0,
            energy_j: 0.0,
            dropped_packets: 0,
        };
        let mut reached: HashSet<NodeId> = HashSet::new();
        if member_set.contains(&task.source) {
            reached.insert(task.source);
        }

        let ctx_at = |node: NodeId| NodeContext {
            topo: self.topo,
            node,
            config: self.config,
            alive: None,
        };

        // Min-heap of (arrival time, tiebreak seq, node, packet).
        struct InFlight(f64, u64, NodeId, GeocastPacket);
        impl PartialEq for InFlight {
            fn eq(&self, o: &Self) -> bool {
                self.1 == o.1
            }
        }
        impl Eq for InFlight {}
        impl PartialOrd for InFlight {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for InFlight {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                // Reversed for a min-heap on (time, seq).
                o.0.total_cmp(&self.0).then_with(|| o.1.cmp(&self.1))
            }
        }
        let mut heap: std::collections::BinaryHeap<InFlight> = std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0.0f64;

        let push = |from: NodeId,
                    fwds: Vec<GeocastForward>,
                    now: f64,
                    heap: &mut std::collections::BinaryHeap<InFlight>,
                    seq: &mut u64,
                    report: &mut GeocastReport| {
            for mut f in fwds {
                assert!(
                    self.topo.neighbors(from).contains(&f.next_hop),
                    "geocast protocol forwarded to non-neighbor"
                );
                f.packet.hops += 1;
                if f.packet.hops > self.config.max_path_hops {
                    report.dropped_packets += 1;
                    continue;
                }
                let listeners = self.topo.neighbors(from).len();
                let link_m = self.topo.pos(from).dist(self.topo.pos(f.next_hop));
                report.transmissions += 1;
                report.energy_j +=
                    energy.transmission_energy(self.config.message_bytes, listeners, link_m);
                heap.push(InFlight(
                    now + energy.airtime(self.config.message_bytes),
                    *seq,
                    f.next_hop,
                    f.packet,
                ));
                *seq += 1;
            }
        };

        let initial = GeocastPacket {
            origin: task.source,
            region: task.region.clone(),
            hops: 0,
            phase: GeocastPhase::Approach,
        };
        let fwds = protocol.on_packet(&ctx_at(task.source), initial);
        push(task.source, fwds, now, &mut heap, &mut seq, &mut report);

        let mut events = 0usize;
        while let Some(InFlight(t, _, node, packet)) = heap.pop() {
            events += 1;
            if events > self.config.max_events {
                break;
            }
            now = t;
            if member_set.contains(&node) {
                reached.insert(node);
            }
            let fwds = protocol.on_packet(&ctx_at(node), packet);
            push(node, fwds, now, &mut heap, &mut seq, &mut report);
        }

        let mut v: Vec<NodeId> = reached.into_iter().collect();
        v.sort();
        report.reached = v;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Point;

    /// Trivial geocast protocol used to exercise the runner: floods
    /// unconditionally with hop-based termination.
    struct ScopedFlood {
        seen: HashSet<NodeId>,
        budget: u32,
    }

    impl GeocastProtocol for ScopedFlood {
        fn name(&self) -> String {
            "scoped-flood".into()
        }
        fn reset(&mut self) {
            self.seen.clear();
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: GeocastPacket,
        ) -> Vec<GeocastForward> {
            if !self.seen.insert(ctx.node) || packet.hops >= self.budget {
                return Vec::new();
            }
            ctx.neighbors()
                .iter()
                .map(|&n| GeocastForward {
                    next_hop: n,
                    packet: packet.clone(),
                })
                .collect()
        }
    }

    #[test]
    fn flood_covers_a_small_region() {
        let config = SimConfig::paper()
            .with_area_side(400.0)
            .with_node_count(120);
        let topo = Topology::random(&config.topology_config(), 3);
        let runner = GeocastRunner::new(&topo, &config);
        let task = GeocastTask {
            source: NodeId(0),
            region: Region::Circle {
                center: Point::new(200.0, 200.0),
                radius: 400.0, // covers everything
            },
        };
        let mut flood = ScopedFlood {
            seen: HashSet::new(),
            budget: 20,
        };
        let report = runner.run(&mut flood, &task);
        assert_eq!(report.members.len(), topo.len());
        if topo.is_connected() {
            assert_eq!(report.coverage(), 1.0);
        }
        assert!(report.transmissions > 0);
        assert!(report.energy_j > 0.0);
    }

    #[test]
    fn empty_region_has_full_coverage_by_definition() {
        let config = SimConfig::paper().with_area_side(400.0).with_node_count(50);
        let topo = Topology::random(&config.topology_config(), 4);
        let runner = GeocastRunner::new(&topo, &config);
        let task = GeocastTask {
            source: NodeId(0),
            region: Region::Circle {
                center: Point::new(-500.0, -500.0),
                radius: 10.0,
            },
        };
        let mut flood = ScopedFlood {
            seen: HashSet::new(),
            budget: 3,
        };
        let report = runner.run(&mut flood, &task);
        assert!(report.members.is_empty());
        assert_eq!(report.coverage(), 1.0);
    }

    #[test]
    fn hop_cap_applies_to_geocast_copies() {
        let config = SimConfig::paper()
            .with_area_side(400.0)
            .with_node_count(60)
            .with_max_path_hops(1);
        let topo = Topology::random(&config.topology_config(), 5);
        let runner = GeocastRunner::new(&topo, &config);
        let task = GeocastTask {
            source: NodeId(0),
            region: Region::Rect(gmp_geom::Aabb::square(400.0)),
        };
        let mut flood = ScopedFlood {
            seen: HashSet::new(),
            budget: 50,
        };
        let report = runner.run(&mut flood, &task);
        // Only the source's one-hop neighborhood can be reached.
        assert!(report.dropped_packets > 0);
    }
}
