//! Warn-and-default parsing for `GMP_*` environment knobs.
//!
//! Every tunable in this workspace that reads the environment follows the
//! same discipline: an absent variable means the default, a well-formed
//! value wins, and a malformed value produces a warning naming the knob
//! and falls back to the default — never a panic, because these knobs are
//! read deep inside long bench runs where aborting would waste hours.
//! [`env_knob`] is that discipline in one place; `gmp-core`'s cache
//! configuration and `gmp-bench`'s worker-thread override both build on
//! it, so their warning texts and fallback behavior cannot drift apart.

/// Resolves one environment knob with warn-and-default semantics.
///
/// `lookup` abstracts `std::env::var` so rejected-input paths are
/// unit-testable without mutating the process environment. `parse`
/// returns `None` for any value that should be rejected (including
/// out-of-range ones); in that case a warning of the form
/// `KEY="raw" <problem>; using <fallback>` is pushed onto `warnings` and
/// `default` is returned.
pub fn env_knob<T>(
    lookup: impl Fn(&str) -> Option<String>,
    key: &str,
    default: T,
    problem: &str,
    fallback: &str,
    parse: impl Fn(&str) -> Option<T>,
    warnings: &mut Vec<String>,
) -> T {
    match lookup(key) {
        None => default,
        Some(raw) => match parse(&raw) {
            Some(value) => value,
            None => {
                warnings.push(format!("{key}={raw:?} {problem}; using {fallback}"));
                default
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_variable_returns_default_without_warning() {
        let mut warnings = Vec::new();
        let v = env_knob(
            |_| None,
            "GMP_TEST_KNOB",
            7usize,
            "is not a positive integer",
            "default 7",
            |raw| raw.parse().ok(),
            &mut warnings,
        );
        assert_eq!(v, 7);
        assert!(warnings.is_empty());
    }

    #[test]
    fn well_formed_value_wins_without_warning() {
        let mut warnings = Vec::new();
        let v = env_knob(
            |key| {
                assert_eq!(key, "GMP_TEST_KNOB");
                Some("42".into())
            },
            "GMP_TEST_KNOB",
            7usize,
            "is not a positive integer",
            "default 7",
            |raw| raw.parse().ok(),
            &mut warnings,
        );
        assert_eq!(v, 42);
        assert!(warnings.is_empty());
    }

    #[test]
    fn rejected_value_warns_with_knob_name_and_falls_back() {
        let mut warnings = Vec::new();
        let v = env_knob(
            |_| Some("zero".into()),
            "GMP_TEST_KNOB",
            7usize,
            "is not a positive integer",
            "default 7",
            |raw| raw.parse().ok().filter(|&n: &usize| n > 0),
            &mut warnings,
        );
        assert_eq!(v, 7);
        assert_eq!(
            warnings,
            vec!["GMP_TEST_KNOB=\"zero\" is not a positive integer; using default 7".to_string()]
        );
    }

    #[test]
    fn out_of_range_value_is_rejected_by_the_parse_filter() {
        let mut warnings = Vec::new();
        let v = env_knob(
            |_| Some("0".into()),
            "GMP_TEST_KNOB",
            7usize,
            "is not a positive integer",
            "default 7",
            |raw| raw.parse().ok().filter(|&n: &usize| n > 0),
            &mut warnings,
        );
        assert_eq!(v, 7);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("GMP_TEST_KNOB=\"0\""));
    }

    #[test]
    fn warnings_accumulate_across_knobs() {
        let mut warnings = Vec::new();
        env_knob(
            |_| Some("bad".into()),
            "GMP_KNOB_A",
            1usize,
            "is not an integer",
            "default 1",
            |raw| raw.parse().ok(),
            &mut warnings,
        );
        env_knob(
            |_| Some("worse".into()),
            "GMP_KNOB_B",
            2.0f64,
            "is not a number",
            "default 2",
            |raw| raw.parse().ok(),
            &mut warnings,
        );
        assert_eq!(warnings.len(), 2);
        assert!(warnings[0].contains("GMP_KNOB_A"));
        assert!(warnings[1].contains("GMP_KNOB_B"));
    }
}
