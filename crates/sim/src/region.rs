//! Region-scoped simulation over the sharded substrate.
//!
//! At 100k–1M nodes, running a multicast task must not require the whole
//! network: GMP's forwarding is local, so a task whose source and
//! destinations sit inside a *window* only ever touches nodes near the
//! window. [`RegionSim`] materializes exactly that — the window inflated by
//! a routing-slack margin, snapped to substrate tiles — as an eager
//! [`Topology`] the unchanged [`TaskRunner`](crate::TaskRunner) can consume,
//! plus the id bookkeeping to translate results back to global node ids.

use gmp_geom::{Aabb, Point};
use gmp_net::shard::{RegionView, ShardedTopology};
use gmp_net::{NodeId, Topology};

use crate::config::SimConfig;
use crate::runner::TaskRunner;
use crate::task::MulticastTask;

/// A task window of a [`ShardedTopology`] materialized for simulation.
///
/// The simulated topology covers `window` inflated by `margin` meters
/// (clamped to the deployment area and snapped outward to tile boundaries);
/// tasks drawn by [`RegionSim::random_task`] keep their source and
/// destinations strictly inside `window`, so routes have at least `margin`
/// of detour slack before hitting the materialized rim.
#[derive(Debug)]
pub struct RegionSim {
    view: RegionView,
    window: Aabb,
    /// Region-local ids of the nodes inside `window`, ascending.
    window_locals: Vec<NodeId>,
}

impl RegionSim {
    /// Materializes `window ⊕ margin` from the substrate.
    ///
    /// # Panics
    ///
    /// Panics if `margin` is negative.
    pub fn new(sharded: &ShardedTopology, window: Aabb, margin: f64) -> Self {
        assert!(margin >= 0.0, "margin must be non-negative");
        let area = sharded.area();
        let inflated = Aabb::new(
            Point::new(
                (window.min.x - margin).max(area.min.x),
                (window.min.y - margin).max(area.min.y),
            ),
            Point::new(
                (window.max.x + margin).min(area.max.x),
                (window.max.y + margin).min(area.max.y),
            ),
        );
        let view = sharded.materialize_region(inflated);
        let window_locals = (0..view.topology.len() as u32)
            .map(NodeId)
            .filter(|&id| window.contains(view.topology.pos(id)))
            .collect();
        RegionSim {
            view,
            window,
            window_locals,
        }
    }

    /// The materialized topology (region-local node ids).
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.view.topology
    }

    /// The underlying region view, for local ↔ global id translation.
    #[inline]
    pub fn view(&self) -> &RegionView {
        &self.view
    }

    /// The task window (not including the margin).
    #[inline]
    pub fn window(&self) -> Aabb {
        self.window
    }

    /// Number of nodes inside the task window.
    #[inline]
    pub fn window_node_count(&self) -> usize {
        self.window_locals.len()
    }

    /// Region-local ids of the nodes inside the task window, ascending —
    /// the candidate pool for window-scoped group membership and tasks.
    #[inline]
    pub fn window_nodes(&self) -> &[NodeId] {
        &self.window_locals
    }

    /// Draws a random multicast task (region-local ids) whose source and
    /// `k` destinations all lie inside the window.
    ///
    /// # Panics
    ///
    /// Panics if the window holds fewer than `k + 1` nodes.
    pub fn random_task(&self, k: usize, seed: u64) -> MulticastTask {
        MulticastTask::random_among(&self.window_locals, k, seed)
    }

    /// A [`TaskRunner`] over the materialized region.
    pub fn runner<'a>(&'a self, config: &'a SimConfig) -> TaskRunner<'a> {
        TaskRunner::new(&self.view.topology, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MulticastPacket, RoutingState};
    use crate::protocol::{Forward, NodeContext, Protocol};
    use crate::runner::SimScratch;
    use gmp_net::ShardConfig;

    /// Greedy unicast toward each destination — enough to exercise the
    /// region runner on a dense deployment without pulling in `gmp-core`
    /// (which depends on this crate).
    struct Greedy;
    impl Protocol for Greedy {
        fn name(&self) -> String {
            "greedy".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            out.extend(packet.dests.iter().filter_map(|&d| {
                let target = ctx.pos_of(d);
                let here = ctx.pos().dist(target);
                ctx.neighbors()
                    .iter()
                    .copied()
                    .filter(|&n| ctx.pos_of(n).dist(target) < here)
                    .min_by(|&a, &b| {
                        ctx.pos_of(a)
                            .dist(target)
                            .total_cmp(&ctx.pos_of(b).dist(target))
                    })
                    .map(|n| Forward {
                        next_hop: n,
                        packet: packet.split(vec![d], RoutingState::Greedy),
                    })
            }));
        }
    }

    fn substrate(n: usize) -> ShardedTopology {
        ShardedTopology::new(ShardConfig::paper_density(n, 150.0), 17)
    }

    #[test]
    fn window_tasks_stay_inside_window() {
        let st = substrate(10_000);
        let side = st.area().width();
        let window = Aabb::new(
            Point::new(side * 0.3, side * 0.3),
            Point::new(side * 0.3 + 1000.0, side * 0.3 + 1000.0),
        );
        let sim = RegionSim::new(&st, window, 300.0);
        assert!(sim.window_node_count() > 500, "paper density ≈ 1000/km²");
        let task = sim.random_task(10, 5);
        assert!(window.contains(sim.topology().pos(task.source)));
        for &d in &task.dests {
            assert!(window.contains(sim.topology().pos(d)));
        }
    }

    #[test]
    fn region_runs_paper_style_tasks_without_full_network() {
        let st = substrate(100_000);
        let side = st.area().width();
        let window = Aabb::new(
            Point::new(side * 0.5, side * 0.5),
            Point::new(side * 0.5 + 1000.0, side * 0.5 + 1000.0),
        );
        let sim = RegionSim::new(&st, window, 300.0);
        assert!(
            sim.topology().len() < st.len() / 5,
            "region must be a small fraction of the network"
        );
        let config = SimConfig::paper();
        let runner = sim.runner(&config);
        let mut scratch = SimScratch::new();
        let mut delivered = 0usize;
        for t in 0..5 {
            let task = sim.random_task(10, 1000 + t);
            let mut proto = Greedy;
            let report = runner.run_with_scratch(&mut proto, &task, t, &mut scratch);
            if report.delivered_all() {
                delivered += 1;
            }
        }
        assert!(delivered >= 4, "window tasks should mostly deliver");
    }

    #[test]
    fn margin_is_clamped_to_area() {
        let st = substrate(1000);
        let sim = RegionSim::new(&st, st.area(), 1e9);
        assert_eq!(sim.topology().len(), st.len());
        assert_eq!(sim.window_node_count(), st.len());
    }
}
