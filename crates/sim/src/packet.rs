//! Multicast packets and their wire encoding.
//!
//! In geographic multicast the packet itself carries the routing state:
//! the list of remaining destination *locations* (the location is the
//! address — Section 2), plus per-protocol state such as GPSR perimeter
//! bookkeeping, LGS's current subtree-root target, or the SMT baseline's
//! embedded source-routing tree.
//!
//! The wire encoding exists so the header-overhead ablation can charge
//! airtime by real packet size instead of the paper's fixed 128 B.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gmp_geom::Point;
use gmp_net::traversal::{Crossing, FacePhase};
use gmp_net::{FaceDir, FaceWalk, NodeId, PerimeterState};

/// Per-protocol routing state carried inside a packet.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RoutingState {
    /// Plain multicast forwarding; the receiving node re-derives
    /// everything from the destination list (GMP, PBM greedy phase).
    #[default]
    Greedy,
    /// GPSR-style perimeter mode (the paper's PERIMODE flag plus the
    /// associated face-routing state).
    Perimeter(PerimeterState),
    /// A unicast leg toward a subtree root: intermediate nodes forward
    /// greedily to `target` without re-partitioning (LGS/LGK legs, GRD).
    UnicastLeg {
        /// The subtree root (or single destination) this leg is aiming at.
        target: NodeId,
    },
    /// A full source-routed tree: `children[v]` lists where node `v` must
    /// forward copies (the centralized SMT baseline).
    SourceTree(Arc<HashMap<NodeId, Vec<NodeId>>>),
    /// A guaranteed-delivery face agent (MCFR/GVG). `walk` is `Some` while
    /// a FACE-1 traversal is in progress and `None` after promotion back
    /// to greedy; `dir` persists either way so a re-stalled agent resumes
    /// traversal in its lineage direction (bounding MCFR to two agents
    /// per destination).
    Face {
        /// Traversal orientation this agent is committed to.
        dir: FaceDir,
        /// The in-progress FACE-1 walk, if any.
        walk: Option<FaceWalk>,
    },
}

/// The destination list of a packet, shared by reference count.
///
/// Retransmissions and event-queue moves copy packets far more often than
/// anything edits their destination list, so the list is an `Arc<Vec<_>>`:
/// cloning a packet bumps a reference count instead of copying node ids.
/// The only mutation, [`DestList::retain`], goes through [`Arc::make_mut`]
/// — in the simulator the packet inside a `Deliver` event is uniquely
/// owned, so the retain edits in place without a copy.
#[derive(Debug, Clone, Default)]
pub struct DestList(Arc<Vec<NodeId>>);

impl DestList {
    /// Keeps only the destinations satisfying `f`, in place when this is
    /// the sole owner of the list.
    pub fn retain(&mut self, f: impl FnMut(&NodeId) -> bool) {
        Arc::make_mut(&mut self.0).retain(f);
    }

    /// Copies the destinations into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.0.as_ref().clone()
    }
}

impl From<Vec<NodeId>> for DestList {
    fn from(dests: Vec<NodeId>) -> Self {
        DestList(Arc::new(dests))
    }
}

impl std::ops::Deref for DestList {
    type Target = [NodeId];
    fn deref(&self) -> &[NodeId] {
        &self.0
    }
}

impl PartialEq for DestList {
    fn eq(&self, other: &Self) -> bool {
        *self.0 == *other.0
    }
}

impl PartialEq<Vec<NodeId>> for DestList {
    fn eq(&self, other: &Vec<NodeId>) -> bool {
        *self.0 == *other
    }
}

impl<'a> IntoIterator for &'a DestList {
    type Item = &'a NodeId;
    type IntoIter = std::slice::Iter<'a, NodeId>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// A multicast data packet.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastPacket {
    /// Task-unique sequence number.
    pub seq: u64,
    /// The node that originated the multicast.
    pub origin: NodeId,
    /// Remaining destinations this copy is responsible for.
    pub dests: DestList,
    /// Transmissions this copy has undergone so far.
    pub hops: u32,
    /// Protocol-specific routing state.
    pub state: RoutingState,
}

impl MulticastPacket {
    /// Creates a fresh packet at the origin.
    pub fn new(seq: u64, origin: NodeId, dests: impl Into<DestList>) -> Self {
        MulticastPacket {
            seq,
            origin,
            dests: dests.into(),
            hops: 0,
            state: RoutingState::Greedy,
        }
    }

    /// Returns a copy carrying a subset of the destinations and the given
    /// state — the "copy of the packet per group" operation of GMP/LGS.
    pub fn split(&self, dests: impl Into<DestList>, state: RoutingState) -> Self {
        MulticastPacket {
            seq: self.seq,
            origin: self.origin,
            dests: dests.into(),
            hops: self.hops,
            state,
        }
    }

    /// `true` if the packet is in perimeter mode (the PERIMODE flag).
    pub fn in_perimeter_mode(&self) -> bool {
        matches!(self.state, RoutingState::Perimeter(_))
    }

    /// Serializes the packet, including each destination's location
    /// (16 bytes) since locations are addresses.
    pub fn encode(&self, positions: &[Point]) -> Bytes {
        let mut b = BytesMut::with_capacity(64 + 20 * self.dests.len());
        b.put_u8(b'G');
        b.put_u8(1); // version
        b.put_u64(self.seq);
        b.put_u32(self.origin.0);
        b.put_u32(self.hops);
        match &self.state {
            RoutingState::Greedy => b.put_u8(0),
            RoutingState::Perimeter(p) => {
                b.put_u8(1);
                put_point(&mut b, p.dest);
                put_point(&mut b, p.entry);
                put_point(&mut b, p.face_entry);
                match p.first_edge {
                    Some((a, c)) => {
                        b.put_u8(1);
                        b.put_u32(a.0);
                        b.put_u32(c.0);
                    }
                    None => b.put_u8(0),
                }
                match p.prev {
                    Some(n) => {
                        b.put_u8(1);
                        b.put_u32(n.0);
                    }
                    None => b.put_u8(0),
                }
            }
            RoutingState::UnicastLeg { target } => {
                b.put_u8(2);
                b.put_u32(target.0);
            }
            RoutingState::Face { dir, walk } => {
                b.put_u8(4);
                b.put_u8(match dir {
                    FaceDir::Ccw => 0,
                    FaceDir::Cw => 1,
                });
                match walk {
                    None => b.put_u8(0),
                    Some(w) => {
                        b.put_u8(1);
                        b.put_f64(w.start_dist);
                        put_point(&mut b, w.anchor);
                        b.put_u8(match w.phase {
                            FacePhase::Scan => 0,
                            FacePhase::Seek => 1,
                        });
                        b.put_u32(w.first.0 .0);
                        b.put_u32(w.first.1 .0);
                        b.put_u32(w.prev.0);
                        match w.best {
                            None => b.put_u8(0),
                            Some(c) => {
                                b.put_u8(1);
                                b.put_u32(c.edge.0 .0);
                                b.put_u32(c.edge.1 .0);
                                put_point(&mut b, c.at);
                            }
                        }
                    }
                }
            }
            RoutingState::SourceTree(tree) => {
                b.put_u8(3);
                let mut keys: Vec<_> = tree.keys().copied().collect();
                keys.sort();
                b.put_u16(keys.len() as u16);
                for k in keys {
                    b.put_u32(k.0);
                    let children = &tree[&k];
                    b.put_u8(children.len() as u8);
                    for c in children {
                        b.put_u32(c.0);
                    }
                }
            }
        }
        b.put_u16(self.dests.len() as u16);
        for d in &self.dests {
            b.put_u32(d.0);
            put_point(&mut b, positions[d.index()]);
        }
        b.freeze()
    }

    /// The encoded size in bytes — what the size-dependent airtime
    /// ablation charges for.
    pub fn encoded_len(&self, positions: &[Point]) -> usize {
        self.encode(positions).len()
    }

    /// Deserializes a packet previously produced by [`encode`].
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string on malformed input.
    ///
    /// [`encode`]: MulticastPacket::encode
    pub fn decode(mut buf: Bytes) -> Result<Self, String> {
        let need = |buf: &Bytes, n: usize| -> Result<(), String> {
            if buf.remaining() < n {
                Err(format!("truncated packet: need {n} more bytes"))
            } else {
                Ok(())
            }
        };
        need(&buf, 18)?;
        if buf.get_u8() != b'G' {
            return Err("bad magic".into());
        }
        if buf.get_u8() != 1 {
            return Err("unsupported version".into());
        }
        let seq = buf.get_u64();
        let origin = NodeId(buf.get_u32());
        let hops = buf.get_u32();
        need(&buf, 1)?;
        let state = match buf.get_u8() {
            0 => RoutingState::Greedy,
            1 => {
                need(&buf, 48 + 2)?;
                let dest = get_point(&mut buf);
                let entry = get_point(&mut buf);
                let face_entry = get_point(&mut buf);
                let first_edge = if buf.get_u8() == 1 {
                    need(&buf, 8)?;
                    Some((NodeId(buf.get_u32()), NodeId(buf.get_u32())))
                } else {
                    None
                };
                need(&buf, 1)?;
                let prev = if buf.get_u8() == 1 {
                    need(&buf, 4)?;
                    Some(NodeId(buf.get_u32()))
                } else {
                    None
                };
                RoutingState::Perimeter(PerimeterState {
                    dest,
                    entry,
                    face_entry,
                    first_edge,
                    prev,
                })
            }
            2 => {
                need(&buf, 4)?;
                RoutingState::UnicastLeg {
                    target: NodeId(buf.get_u32()),
                }
            }
            3 => {
                need(&buf, 2)?;
                let n = buf.get_u16() as usize;
                let mut tree = HashMap::with_capacity(n);
                for _ in 0..n {
                    need(&buf, 5)?;
                    let k = NodeId(buf.get_u32());
                    let c = buf.get_u8() as usize;
                    need(&buf, 4 * c)?;
                    let children = (0..c).map(|_| NodeId(buf.get_u32())).collect();
                    tree.insert(k, children);
                }
                RoutingState::SourceTree(Arc::new(tree))
            }
            4 => {
                need(&buf, 2)?;
                let dir = match buf.get_u8() {
                    0 => FaceDir::Ccw,
                    1 => FaceDir::Cw,
                    d => return Err(format!("unknown face direction {d}")),
                };
                let walk = if buf.get_u8() == 1 {
                    need(&buf, 8 + 16 + 1 + 12 + 1)?;
                    let start_dist = buf.get_f64();
                    let anchor = get_point(&mut buf);
                    let phase = match buf.get_u8() {
                        0 => FacePhase::Scan,
                        1 => FacePhase::Seek,
                        p => return Err(format!("unknown face phase {p}")),
                    };
                    let first = (NodeId(buf.get_u32()), NodeId(buf.get_u32()));
                    let prev = NodeId(buf.get_u32());
                    let best = if buf.get_u8() == 1 {
                        need(&buf, 24)?;
                        let edge = (NodeId(buf.get_u32()), NodeId(buf.get_u32()));
                        let at = get_point(&mut buf);
                        Some(Crossing { edge, at })
                    } else {
                        None
                    };
                    Some(FaceWalk {
                        start_dist,
                        anchor,
                        phase,
                        first,
                        prev,
                        best,
                    })
                } else {
                    None
                };
                RoutingState::Face { dir, walk }
            }
            t => return Err(format!("unknown state tag {t}")),
        };
        need(&buf, 2)?;
        let n = buf.get_u16() as usize;
        let mut dests = Vec::with_capacity(n);
        for _ in 0..n {
            need(&buf, 20)?;
            dests.push(NodeId(buf.get_u32()));
            let _pos = get_point(&mut buf); // locations re-derived from topology
        }
        Ok(MulticastPacket {
            seq,
            origin,
            dests: dests.into(),
            hops,
            state,
        })
    }
}

fn put_point(b: &mut BytesMut, p: Point) {
    b.put_f64(p.x);
    b.put_f64(p.y);
}

fn get_point(b: &mut Bytes) -> Point {
    let x = b.get_f64();
    let y = b.get_f64();
    Point::new(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Point> {
        (0..10)
            .map(|i| Point::new(i as f64 * 10.0, i as f64 * 5.0))
            .collect()
    }

    #[test]
    fn greedy_packet_round_trips() {
        let p = MulticastPacket::new(7, NodeId(2), vec![NodeId(3), NodeId(9)]);
        let enc = p.encode(&positions());
        let dec = MulticastPacket::decode(enc).unwrap();
        assert_eq!(dec, p);
    }

    #[test]
    fn perimeter_packet_round_trips() {
        let mut p = MulticastPacket::new(1, NodeId(0), vec![NodeId(5)]);
        p.hops = 12;
        p.state = RoutingState::Perimeter(PerimeterState {
            dest: Point::new(1.0, 2.0),
            entry: Point::new(3.0, 4.0),
            face_entry: Point::new(5.0, 6.0),
            first_edge: Some((NodeId(1), NodeId(2))),
            prev: Some(NodeId(1)),
        });
        let dec = MulticastPacket::decode(p.encode(&positions())).unwrap();
        assert_eq!(dec, p);
        assert!(dec.in_perimeter_mode());
    }

    #[test]
    fn unicast_leg_round_trips() {
        let mut p = MulticastPacket::new(3, NodeId(1), vec![NodeId(4), NodeId(6)]);
        p.state = RoutingState::UnicastLeg { target: NodeId(4) };
        let dec = MulticastPacket::decode(p.encode(&positions())).unwrap();
        assert_eq!(dec, p);
    }

    #[test]
    fn source_tree_round_trips() {
        let mut tree = HashMap::new();
        tree.insert(NodeId(0), vec![NodeId(1), NodeId(2)]);
        tree.insert(NodeId(1), vec![NodeId(3)]);
        tree.insert(NodeId(2), vec![]);
        tree.insert(NodeId(3), vec![]);
        let mut p = MulticastPacket::new(9, NodeId(0), vec![NodeId(3)]);
        p.state = RoutingState::SourceTree(Arc::new(tree));
        let dec = MulticastPacket::decode(p.encode(&positions())).unwrap();
        assert_eq!(dec, p);
    }

    #[test]
    fn face_packet_round_trips() {
        let mut p = MulticastPacket::new(4, NodeId(0), vec![NodeId(8)]);
        // Promoted agent: direction only, no walk.
        p.state = RoutingState::Face {
            dir: FaceDir::Cw,
            walk: None,
        };
        let dec = MulticastPacket::decode(p.encode(&positions())).unwrap();
        assert_eq!(dec, p);
        // Mid-walk agent with a recorded crossing.
        p.state = RoutingState::Face {
            dir: FaceDir::Ccw,
            walk: Some(FaceWalk {
                start_dist: 42.5,
                anchor: Point::new(7.0, 8.0),
                phase: FacePhase::Seek,
                first: (NodeId(2), NodeId(3)),
                prev: NodeId(5),
                best: Some(Crossing {
                    edge: (NodeId(3), NodeId(6)),
                    at: Point::new(9.0, 10.0),
                }),
            }),
        };
        let dec = MulticastPacket::decode(p.encode(&positions())).unwrap();
        assert_eq!(dec, p);
        // Scan phase without a best crossing yet.
        p.state = RoutingState::Face {
            dir: FaceDir::Ccw,
            walk: Some(FaceWalk {
                start_dist: 1.0,
                anchor: Point::new(0.0, 0.0),
                phase: FacePhase::Scan,
                first: (NodeId(0), NodeId(1)),
                prev: NodeId(0),
                best: None,
            }),
        };
        let dec = MulticastPacket::decode(p.encode(&positions())).unwrap();
        assert_eq!(dec, p);
    }

    #[test]
    fn face_packet_survives_mutation_and_truncation() {
        let mut p = MulticastPacket::new(4, NodeId(0), vec![NodeId(8)]);
        p.state = RoutingState::Face {
            dir: FaceDir::Ccw,
            walk: Some(FaceWalk {
                start_dist: 42.5,
                anchor: Point::new(7.0, 8.0),
                phase: FacePhase::Scan,
                first: (NodeId(2), NodeId(3)),
                prev: NodeId(5),
                best: Some(Crossing {
                    edge: (NodeId(3), NodeId(6)),
                    at: Point::new(9.0, 10.0),
                }),
            }),
        };
        let enc = p.encode(&positions());
        for i in 0..enc.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bytes = enc.to_vec();
                bytes[i] ^= flip;
                let _ = MulticastPacket::decode(Bytes::from(bytes));
            }
        }
        for cut in [19, 21, 30, enc.len() - 1] {
            assert!(
                MulticastPacket::decode(enc.slice(0..cut)).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn split_preserves_identity_and_hops() {
        let mut p = MulticastPacket::new(5, NodeId(0), vec![NodeId(1), NodeId(2), NodeId(3)]);
        p.hops = 4;
        let child = p.split(vec![NodeId(2)], RoutingState::Greedy);
        assert_eq!(child.seq, 5);
        assert_eq!(child.origin, NodeId(0));
        assert_eq!(child.hops, 4);
        assert_eq!(child.dests, vec![NodeId(2)]);
    }

    #[test]
    fn encoded_len_grows_with_destinations() {
        let pos = positions();
        let p1 = MulticastPacket::new(1, NodeId(0), vec![NodeId(1)]);
        let p3 = MulticastPacket::new(1, NodeId(0), vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(p3.encoded_len(&pos) > p1.encoded_len(&pos));
        // 20 bytes per destination entry.
        assert_eq!(p3.encoded_len(&pos) - p1.encoded_len(&pos), 40);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(MulticastPacket::decode(Bytes::from_static(b"xx")).is_err());
        assert!(MulticastPacket::decode(Bytes::from_static(b"")).is_err());
        let mut junk = BytesMut::new();
        junk.put_u8(b'Q');
        junk.put_slice(&[0u8; 30]);
        assert!(MulticastPacket::decode(junk.freeze()).is_err());
    }

    #[test]
    fn decode_never_panics_on_mutated_packets() {
        // Bit-flip fuzzing: corrupt every byte of a valid encoding in turn
        // and make sure decode returns (Ok or Err) instead of panicking.
        let mut p = MulticastPacket::new(7, NodeId(2), vec![NodeId(3), NodeId(9)]);
        p.state = RoutingState::UnicastLeg { target: NodeId(3) };
        let enc = p.encode(&positions());
        for i in 0..enc.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bytes = enc.to_vec();
                bytes[i] ^= flip;
                let _ = MulticastPacket::decode(Bytes::from(bytes));
            }
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let p = MulticastPacket::new(7, NodeId(2), vec![NodeId(3), NodeId(9)]);
        let enc = p.encode(&positions());
        for cut in [3, 10, 19, enc.len() - 1] {
            let truncated = enc.slice(0..cut);
            assert!(
                MulticastPacket::decode(truncated).is_err(),
                "cut at {cut} should fail"
            );
        }
    }
}
