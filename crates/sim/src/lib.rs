//! A deterministic discrete-event wireless sensor network simulator — the
//! reproduction's substitute for ns-2.27.
//!
//! The paper evaluates GMP on ns-2 with the Table 1 setup (1000 nodes over
//! 1000 m × 1000 m, 1 Mbps channel, Mac802.11, 1.3 W transmit / 0.9 W
//! receive power, 128 B messages, 150 m omnidirectional radio). Every
//! metric it reports — total hops, per-destination hop count, energy,
//! failed tasks — is a function of the forwarding decisions and of the
//! geometry, not of MAC contention, so this simulator models an idealized
//! contention-free MAC over a unit-disk radio and accounts time, hops, and
//! energy exactly as the paper does (energy includes the receive power of
//! *all* listening nodes in the sender's range — footnote 2).
//!
//! Key types:
//!
//! * [`SimConfig`] — Table 1 parameters, with builders for sweeps;
//! * [`Protocol`] — the per-node forwarding decision interface every
//!   routing protocol in this workspace implements;
//! * [`MulticastPacket`] — destination list + protocol routing state, with
//!   a wire encoding (header-overhead accounting);
//! * [`TaskRunner`] — runs one multicast task through the event queue and
//!   produces a [`TaskReport`];
//! * [`MulticastTask`] — a (source, destination-set) workload item;
//! * [`FaultPlan`] (re-exported from `gmp-faults`) — deterministic fault
//!   injection: Bernoulli knobs plus timed crashes, regional blackouts,
//!   duty-cycle sleep, and link churn, with the delivery-guarantee
//!   oracle classifying every failed destination by [`FailureCause`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod energy;
pub mod event;
pub mod geocast;
pub mod knob;
pub mod metrics;
pub mod packet;
pub mod protocol;
pub mod region;
pub mod runner;
pub mod scenario;
pub mod task;

pub use config::SimConfig;
pub use energy::EnergyModel;
pub use geocast::{GeocastReport, GeocastRunner, GeocastTask};
pub use gmp_faults::{FailedDest, FailureCause, FaultEvent, FaultPlan, FaultRegion};
pub use knob::env_knob;
pub use metrics::TaskReport;
pub use packet::{DestList, MulticastPacket, RoutingState};
pub use protocol::{Forward, NodeContext, Protocol};
pub use region::RegionSim;
pub use runner::{Session, SimScratch, TaskRunner};
pub use scenario::Scenario;
pub use task::MulticastTask;
