//! The per-node forwarding interface all routing protocols implement.

use gmp_geom::Point;
use gmp_net::{NodeId, PlanarKind, Topology};

use crate::config::SimConfig;
use crate::packet::MulticastPacket;

/// Everything a node may consult when making a forwarding decision.
///
/// Distributed protocols must restrict themselves to the *local* view:
/// their own position and their (planarized) neighbor tables. The full
/// [`Topology`] is exposed because the centralized SMT baseline needs it;
/// distributed protocols accessing more than `neighbors`/`pos` would be a
/// reproduction bug.
#[derive(Debug, Clone, Copy)]
pub struct NodeContext<'a> {
    /// The deployment (gives positions and neighbor tables).
    pub topo: &'a Topology,
    /// The node making the decision.
    pub node: NodeId,
    /// Simulation parameters (radio range, planar kind, hop cap).
    pub config: &'a SimConfig,
    /// Per-node liveness under the active fault plan, indexable by
    /// [`NodeId::index`]. `None` when the run has no timed fault events —
    /// in a real deployment this view is what neighbor-table beacon
    /// timeouts provide, so consulting it is *not* a reproduction bug.
    /// Duty-cycle sleep is intentionally not reflected here (beaconing
    /// cannot track sub-second sleep windows).
    pub alive: Option<&'a [bool]>,
}

impl<'a> NodeContext<'a> {
    /// This node's position.
    pub fn pos(&self) -> Point {
        self.topo.pos(self.node)
    }

    /// This node's unit-disk neighbors.
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.topo.neighbors(self.node)
    }

    /// This node's neighbors in the configured planar subgraph.
    pub fn planar_neighbors(&self) -> &'a [NodeId] {
        self.topo
            .planar_neighbors(self.config.planar_kind(), self.node)
    }

    /// The configured planar subgraph kind.
    pub fn planar_kind(&self) -> PlanarKind {
        self.config.planar_kind()
    }

    /// The radio range, meters.
    pub fn radio_range(&self) -> f64 {
        self.config.radio_range
    }

    /// Position of an arbitrary node (used to read destination addresses —
    /// in a real deployment these travel inside the packet).
    pub fn pos_of(&self, id: NodeId) -> Point {
        self.topo.pos(id)
    }

    /// Whether `id` is currently believed alive. Always `true` in runs
    /// without timed fault events (`alive` is `None`).
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive.is_none_or(|a| a[id.index()])
    }
}

/// One outgoing copy of a packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Forward {
    /// The neighbor to hand the copy to.
    pub next_hop: NodeId,
    /// The copy itself (destination subset + state).
    pub packet: MulticastPacket,
}

/// A multicast routing protocol.
///
/// The runner invokes [`Protocol::on_packet`] at the source (hop 0) and at
/// every node that receives a copy, *after* stripping the receiving node
/// from the destination list and recording the delivery. The protocol
/// appends the set of copies to transmit next to `out`; appending nothing
/// terminates this copy.
pub trait Protocol {
    /// Short display name used in experiment tables ("GMP", "PBM λ=0.3"…).
    fn name(&self) -> String;

    /// Decide how to forward `packet` from `ctx.node`, appending the
    /// outgoing copies to `out`.
    ///
    /// `out` is *not* cleared: the simulator owns one forward buffer and
    /// drains it after each decision, so a fresh decision always starts
    /// from an empty buffer without the protocol having to know.
    fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: MulticastPacket, out: &mut Vec<Forward>);

    /// Called once when a task starts at `source`; protocols that
    /// precompute per-task state (the centralized SMT baseline) hook this.
    fn on_task_start(&mut self, _ctx: &NodeContext<'_>, _source: NodeId, _dests: &[NodeId]) {}

    /// Convenience wrapper collecting the forwards of one decision into a
    /// fresh vector — for tests and benchmarks; the simulator reuses a
    /// buffer through [`Protocol::on_packet`] instead.
    fn route(&mut self, ctx: &NodeContext<'_>, packet: MulticastPacket) -> Vec<Forward> {
        let mut out = Vec::new();
        self.on_packet(ctx, packet, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_net::TopologyConfig;

    /// A protocol that floods to the closest neighbor toward each dest —
    /// only used to exercise the trait plumbing.
    struct OneHopGreedy;

    impl Protocol for OneHopGreedy {
        fn name(&self) -> String {
            "one-hop-greedy".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            out.extend(packet.dests.iter().filter_map(|&d| {
                ctx.topo
                    .closest_neighbor_to(ctx.node, ctx.pos_of(d))
                    .map(|n| Forward {
                        next_hop: n,
                        packet: packet.split(vec![d], Default::default()),
                    })
            }));
        }
    }

    #[test]
    fn context_accessors_work() {
        let topo = Topology::random(&TopologyConfig::new(300.0, 60, 120.0), 4);
        let config = SimConfig::paper()
            .with_node_count(60)
            .with_radio_range(120.0);
        let ctx = NodeContext {
            topo: &topo,
            node: NodeId(0),
            config: &config,
            alive: None,
        };
        assert_eq!(ctx.pos(), topo.pos(NodeId(0)));
        assert!(ctx.is_alive(NodeId(59)));
        assert_eq!(ctx.radio_range(), 120.0);
        assert_eq!(ctx.neighbors(), topo.neighbors(NodeId(0)));
        assert!(ctx.planar_neighbors().len() <= ctx.neighbors().len());
    }

    #[test]
    fn trait_object_dispatch() {
        let topo = Topology::random(&TopologyConfig::new(300.0, 60, 120.0), 4);
        let config = SimConfig::paper();
        let ctx = NodeContext {
            topo: &topo,
            node: NodeId(0),
            config: &config,
            alive: None,
        };
        let mut p: Box<dyn Protocol> = Box::new(OneHopGreedy);
        assert_eq!(p.name(), "one-hop-greedy");
        let fwd = p.route(&ctx, MulticastPacket::new(1, NodeId(0), vec![NodeId(5)]));
        assert!(fwd.len() <= 1);
    }
}
