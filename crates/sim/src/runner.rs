//! The per-task simulation loop.
//!
//! The loop is written for task throughput: every figure in the paper is an
//! average over thousands of simulated tasks, so the per-task constant
//! matters as much as the per-decision constant. Two structural choices
//! carry that:
//!
//! * **Pruned collision bookkeeping.** Past transmissions are kept in
//!   [`OnAir`], a min-heap ordered by the time each transmission leaves the
//!   air. A transmission can only destroy a reception whose airtime
//!   overlaps it, and every pending or future reception starts no earlier
//!   than `now − max_airtime` (see [`OnAir::prune`]), so entries older than
//!   that are popped for good instead of being rescanned on every delivery
//!   — the seed kept every transmission forever, making collision checks
//!   O(total transmissions) each.
//! * **Reused buffers.** [`SimScratch`] owns the event queue, the collision
//!   heap, the liveness/pending tables, and the forward buffer; a warmed
//!   scratch runs whole tasks without allocating in the loop itself.
//! * **Staged decision pass.** When the configuration draws no RNG between
//!   a pop and its forwards (collisions off, zero jitter — the paper's
//!   default), each batch of equal-time deliveries is split into a
//!   fault-filter pass (liveness checks, loss draws — everything that
//!   touches the RNG or the fault state, in pop order) and a decision pass
//!   that replays the batch in the same pop order doing the delivery
//!   bookkeeping, routing decisions, and dispatch back-to-back. The
//!   decision pass runs the protocol's Steiner-tree machinery (and the
//!   GMP decision cache) cache-warm instead of interleaved with fault
//!   bookkeeping. Because the replay preserves pop order and the
//!   precomputed verdicts depend only on state the decision pass never
//!   mutates, every write lands in the seed's exact sequence.
//!
//! None of this changes any simulated outcome: reports are bit-identical
//! to the seed's (see `crates/bench/tests/sim_parity.rs` and DESIGN.md).

use gmp_faults::{FailureCause, FaultScratch};
use gmp_geom::Point;
use gmp_net::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;

use crate::config::SimConfig;
use crate::energy::EnergyModel;
use crate::event::{Event, EventQueue};
use crate::metrics::TaskReport;
use crate::packet::MulticastPacket;
use crate::protocol::{Forward, NodeContext, Protocol};
use crate::task::MulticastTask;

/// One past transmission, kept while it can still destroy a reception.
#[derive(Debug, Clone, Copy)]
struct AirEntry {
    start: f64,
    end: f64,
    sender: NodeId,
}

impl PartialEq for AirEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for AirEntry {}
impl PartialOrd for AirEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for AirEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed on `end`: BinaryHeap is a max-heap, pruning pops the
        // transmission that leaves the air first.
        other
            .end
            .total_cmp(&self.end)
            .then_with(|| other.start.total_cmp(&self.start))
            .then_with(|| other.sender.cmp(&self.sender))
    }
}

/// The set of transmissions that may still collide with a reception,
/// ordered by when they leave the air.
///
/// # Pruning invariant
///
/// A reception sent at `s` with airtime `a` queries the set at its arrival
/// time `t = s + a`; an entry `(start, end, sender)` can only match it if
/// `s < end`. Every reception pending at wall-clock `now` arrives at
/// `t ≥ now` and has `a ≤ max_airtime` (its airtime fed the running
/// maximum when it was scheduled), so its query start is
/// `s = t − a ≥ now − max_airtime`; receptions scheduled *after* `now`
/// start at `s ≥ now`. Entries with `end ≤ now − max_airtime` therefore
/// can never match any present or future query and are popped for good —
/// membership of the live set, and with it every collision verdict, is
/// identical to the seed's never-pruned list.
#[derive(Debug, Default)]
struct OnAir {
    heap: BinaryHeap<AirEntry>,
    max_airtime: f64,
}

impl OnAir {
    fn clear(&mut self) {
        self.heap.clear();
        self.max_airtime = 0.0;
    }

    fn push(&mut self, start: f64, end: f64, sender: NodeId) {
        self.max_airtime = self.max_airtime.max(end - start);
        self.heap.push(AirEntry { start, end, sender });
    }

    fn prune(&mut self, now: f64) {
        let horizon = now - self.max_airtime;
        while let Some(e) = self.heap.peek() {
            if e.end <= horizon {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = &AirEntry> {
        self.heap.iter()
    }
}

/// Reusable per-task working state for [`TaskRunner::run_with_scratch`].
///
/// After a warm-up task of comparable size, running further tasks through
/// the same scratch performs no allocations in the event loop itself:
/// every buffer is cleared in place. A fresh scratch and a reused one
/// produce bit-identical [`TaskReport`]s.
#[derive(Debug, Default)]
pub struct SimScratch {
    queue: EventQueue,
    on_air: OnAir,
    alive: Vec<bool>,
    /// `pending[i]` — destination `i` not yet reached. Indexed by node id;
    /// the final sweep reads failures out in ascending id order, which is
    /// exactly the sorted order the report promises.
    pending: Vec<bool>,
    pending_count: usize,
    /// First-delivery records as `(dest, hops, time)`; folded into the
    /// report's ordered maps once per task instead of paying tree inserts
    /// inside the loop.
    deliveries: Vec<(NodeId, u32, f64)>,
    /// The single forward buffer every [`Protocol::on_packet`] appends to.
    forwards: Vec<Forward>,
    /// Proximate failure cause per still-pending destination, recorded on
    /// every packet drop (last write wins) and consumed by the oracle.
    drop_cause: Vec<FailureCause>,
    /// Compiled fault-plan state (timed events) and oracle buffers.
    faults: FaultScratch,
    /// The staged decision pass's batch buffer: each equal-time delivery
    /// with its precomputed fault verdict (`Some(cause)` = dropped).
    staged: Vec<(NodeId, MulticastPacket, Option<FailureCause>)>,
}

impl SimScratch {
    /// Fresh, empty working state.
    pub fn new() -> Self {
        SimScratch::default()
    }
}

/// Runs multicast tasks over a fixed topology and configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaskRunner<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
}

impl<'a> TaskRunner<'a> {
    /// Creates a runner. `config.radio_range` should match the topology's;
    /// this is asserted because a mismatch silently breaks every protocol.
    pub fn new(topo: &'a Topology, config: &'a SimConfig) -> Self {
        assert!(
            (topo.radio_range() - config.radio_range).abs() < 1e-9,
            "topology radio range {} != config radio range {}",
            topo.radio_range(),
            config.radio_range
        );
        TaskRunner { topo, config }
    }

    /// Runs `task` under `protocol` with failure-injection seed 0.
    pub fn run(&self, protocol: &mut dyn Protocol, task: &MulticastTask) -> TaskReport {
        self.run_seeded(protocol, task, 0)
    }

    /// Runs `task` under `protocol`; `seed` drives failure injection only
    /// (runs are otherwise deterministic).
    pub fn run_seeded(
        &self,
        protocol: &mut dyn Protocol,
        task: &MulticastTask,
        seed: u64,
    ) -> TaskReport {
        let mut scratch = SimScratch::new();
        self.run_with_scratch(protocol, task, seed, &mut scratch)
    }

    /// [`TaskRunner::run_seeded`] through a caller-owned [`SimScratch`]:
    /// the task-throughput hot path. Steady-state (after a warm-up task of
    /// comparable size) the event loop performs zero heap allocations.
    ///
    /// Implemented as a [`Session`] driven to completion in place; the
    /// concurrent engine in `gmp-service` drives the same state machine
    /// one event batch at a time, which is why its per-session reports
    /// stay bit-identical to this path.
    pub fn run_with_scratch(
        &self,
        protocol: &mut dyn Protocol,
        task: &MulticastTask,
        seed: u64,
        scratch: &mut SimScratch,
    ) -> TaskReport {
        // `SimScratch::default()` performs no heap allocation, so the
        // take/restore pair keeps the zero-alloc steady state intact.
        let owned = std::mem::take(scratch);
        let mut session = Session::begin(*self, protocol, task, seed, owned);
        while !session.step(protocol) {}
        let (report, owned) = session.finish();
        *scratch = owned;
        report
    }

    /// `true` if the transmission `[start, end]` from `from` to `to`
    /// overlaps another transmission audible at `to` (protocol-model
    /// interference), or if `to` itself was transmitting (half-duplex).
    ///
    /// Audibility uses the precomputed adjacency as a fast accept: `to`'s
    /// neighbor set is exactly the nodes whose squared distance rounded to
    /// at most `rr²`, and `sqrt` of a correctly-rounded square is exact, so
    /// membership implies `dist ≤ rr`. Non-members fall into a few-ulp
    /// boundary band where the seed's exact `dist ≤ rr` comparison is
    /// replayed verbatim; anything beyond the band is rejected without a
    /// square root.
    fn collides(&self, on_air: &OnAir, start: f64, end: f64, from: NodeId, to: NodeId) -> bool {
        let rr = self.config.radio_range;
        let rr2_fuzz = rr * rr * (1.0 + 1e-12);
        let to_pos = self.topo.pos(to);
        on_air.iter().any(|e| {
            e.sender != from
                && e.start < end
                && start < e.end
                && (e.sender == to || self.topo.neighbors(to).binary_search(&e.sender).is_ok() || {
                    let d2 = self.topo.pos(e.sender).dist_sq(to_pos);
                    d2 <= rr2_fuzz && self.topo.pos(e.sender).dist(to_pos) <= rr
                })
        })
    }

    /// Applies hop caps, accounts energy/bytes, and schedules deliveries
    /// for the copies a protocol decided to send from `sender` (drained
    /// from the shared forward buffer), with the configured carrier-sense
    /// jitter.
    #[allow(clippy::too_many_arguments)]
    fn transmit_jittered(
        &self,
        sender: NodeId,
        forwards: &mut Vec<Forward>,
        queue: &mut EventQueue,
        report: &mut TaskReport,
        energy: &EnergyModel,
        positions: &[Point],
        on_air: &mut OnAir,
        rng: &mut StdRng,
        pending: &[bool],
        drop_cause: &mut [FailureCause],
    ) {
        for mut fwd in forwards.drain(..) {
            assert!(
                self.topo.neighbors(sender).contains(&fwd.next_hop),
                "protocol bug: {} forwarded to non-neighbor {}",
                sender,
                fwd.next_hop
            );
            fwd.packet.hops += 1;
            if fwd.packet.hops > self.config.max_path_hops {
                report.dropped_packets += 1;
                record_drop(&fwd.packet.dests, pending, drop_cause, FailureCause::HopCap);
                continue;
            }
            let bytes = if self.config.size_dependent_airtime {
                fwd.packet.encoded_len(positions)
            } else {
                self.config.message_bytes
            };
            let link_m = self.topo.pos(sender).dist(self.topo.pos(fwd.next_hop));
            // Under power control only nodes within the (reduced) radius
            // overhear the transmission; the cutoff is a binary search in
            // the distance-sorted neighbor list instead of an O(degree)
            // filter.
            let listeners = if self.config.power_control.is_some() {
                let dists = self.topo.neighbor_distances(sender);
                dists.partition_point(|&d| d <= link_m + gmp_geom::EPS)
            } else {
                self.topo.neighbors(sender).len()
            };
            report.transmissions += 1;
            report.bytes_transmitted += bytes;
            report.links.push((sender, fwd.next_hop));
            report.link_times_s.push(queue.now());
            report.energy_j += energy.transmission_energy(bytes, listeners, link_m);
            let jitter = if self.config.tx_jitter_s > 0.0 {
                rng.gen_range(0.0..=self.config.tx_jitter_s)
            } else {
                0.0
            };
            let sent_at = queue.now() + jitter;
            let arrival = sent_at + energy.airtime(bytes);
            if self.config.collisions {
                on_air.push(sent_at, arrival, sender);
            }
            queue.schedule(
                arrival,
                Event::Deliver {
                    to: fwd.next_hop,
                    from: sender,
                    sent_at,
                    retries: 0,
                    packet: fwd.packet,
                },
            );
        }
    }
}

/// One in-flight simulated multicast task, steppable one event batch at a
/// time.
///
/// [`TaskRunner::run_with_scratch`] is `begin` → `step` until done →
/// `finish`; a concurrent engine (the `gmp-service` crate) interleaves the
/// `step` calls of many sessions over one shared topology. A session owns
/// every piece of mutable per-task state — its [`SimScratch`] (event
/// queue, liveness tables, compiled fault timeline), its
/// failure-injection RNG, and its [`TaskReport`] — and its simulated
/// clock is task-local (t = 0 at `begin`), so the interleaving order
/// across sessions cannot change any session's outcome: every report is
/// bit-identical to running the task alone through
/// [`TaskRunner::run_with_scratch`].
#[derive(Debug)]
pub struct Session<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
    scratch: SimScratch,
    report: TaskReport,
    energy: EnergyModel,
    rng: StdRng,
    source: NodeId,
    has_events: bool,
    has_duty: bool,
    has_churn: bool,
    use_staged: bool,
    events_processed: usize,
    decisions: usize,
    done: bool,
}

impl<'a> Session<'a> {
    /// Starts the task: samples failure injection, primes the compiled
    /// fault timeline, and processes the source's initial routing decision
    /// — everything the sequential loop did before popping its first
    /// event. The session takes ownership of `scratch` (warm buffers and
    /// the compiled-plan cache carry over) and returns it through
    /// [`Session::finish`].
    pub fn begin(
        runner: TaskRunner<'a>,
        protocol: &mut dyn Protocol,
        task: &MulticastTask,
        seed: u64,
        mut scratch: SimScratch,
    ) -> Self {
        let TaskRunner { topo, config } = runner;
        let mut report = TaskReport::new(protocol.name());
        let energy = EnergyModel::from_config(config);
        let positions = topo.positions_ref();
        let mut rng = StdRng::seed_from_u64(seed);

        let SimScratch {
            queue,
            on_air,
            alive,
            pending,
            pending_count,
            deliveries,
            forwards,
            drop_cause,
            faults,
            staged,
        } = &mut scratch;
        queue.reset();
        on_air.clear();
        deliveries.clear();
        forwards.clear();
        staged.clear();

        // Failure injection: sample the Bernoulli dead nodes (never the
        // source, so the task can at least start), then apply the fault
        // plan's t = 0 state. The timed-event machinery consumes no task
        // RNG, keeping Bernoulli-only runs bit-identical to the seed's.
        let plan = &config.faults;
        alive.clear();
        alive.resize(topo.len(), true);
        plan.sample_node_failures(&mut rng, task.source, alive);
        let has_events = plan.has_events();
        if has_events {
            faults.begin_task(plan, topo, task.source, alive);
        }
        let has_duty = has_events && faults.has_duty();
        let has_churn = has_events && faults.has_churn();

        drop_cause.clear();
        drop_cause.resize(topo.len(), FailureCause::NoRoute);

        pending.clear();
        pending.resize(topo.len(), false);
        *pending_count = 0;
        for &d in &task.dests {
            if !pending[d.index()] {
                pending[d.index()] = true;
                *pending_count += 1;
            }
        }

        // Contexts are built inline (not through a closure) because the
        // liveness view reborrows `alive`, which `advance_to` also
        // mutates; the view is only exposed when the plan has timed
        // events, so fault-free decisions stay bit-identical.
        {
            let ctx = NodeContext {
                topo,
                node: task.source,
                config,
                alive: has_events.then_some(alive.as_slice()),
            };
            protocol.on_task_start(&ctx, task.source, &task.dests);

            // The source processes the initial packet at t = 0.
            let initial = MulticastPacket::new(0, task.source, task.dests.clone());
            protocol.on_packet(&ctx, initial, forwards);
        }
        runner.transmit_jittered(
            task.source,
            forwards,
            queue,
            &mut report,
            &energy,
            positions,
            on_air,
            &mut rng,
            pending,
            drop_cause,
        );

        // The staged pass applies when nothing between a pop and its
        // forwards draws RNG: collisions off (no backoff draws, no on-air
        // bookkeeping) and zero jitter (no send-time draws). The paper's
        // default configuration qualifies; collision/jitter runs take the
        // interleaved step, which handles retransmission.
        let use_staged = !config.collisions && config.tx_jitter_s == 0.0;
        Session {
            topo,
            config,
            scratch,
            report,
            energy,
            rng,
            source: task.source,
            has_events,
            has_duty,
            has_churn,
            use_staged,
            events_processed: 0,
            // The initial packet was one routing decision.
            decisions: 1,
            done: false,
        }
    }

    /// Advances the session by one unit of simulated work — the entire
    /// next equal-time event batch in staged mode (collisions off, zero
    /// jitter: the paper's default), or a single event otherwise — and
    /// returns `true` once no work remains (then call
    /// [`Session::finish`]).
    pub fn step(&mut self, protocol: &mut dyn Protocol) -> bool {
        if self.done {
            return true;
        }
        if self.use_staged {
            self.step_staged(protocol);
        } else {
            self.step_interleaved(protocol);
        }
        self.done
    }

    /// Task-local simulated time of the next pending event; `None` when
    /// the session has no work left (a truncated session reports `None`
    /// even though undispatched events remain).
    pub fn next_time(&self) -> Option<f64> {
        if self.done {
            None
        } else {
            self.scratch.queue.peek_time()
        }
    }

    /// `true` once [`Session::step`] has exhausted the session's work.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Routing decisions made so far ([`Protocol::on_packet`] calls,
    /// counting the source's initial decision).
    pub fn decisions(&self) -> usize {
        self.decisions
    }

    /// Runs the end-of-task sweep (delivery maps, the delivery-guarantee
    /// oracle) and returns the report plus the scratch for reuse.
    ///
    /// # Panics
    ///
    /// Panics if the session still has dispatchable events — drive
    /// [`Session::step`] until it returns `true` first.
    pub fn finish(mut self) -> (TaskReport, SimScratch) {
        assert!(
            self.done || self.scratch.queue.is_empty(),
            "Session::finish called with events still pending"
        );
        let SimScratch {
            alive,
            pending,
            pending_count,
            deliveries,
            drop_cause,
            faults,
            ..
        } = &mut self.scratch;
        for &(to, hops, time) in deliveries.iter() {
            self.report.delivery_hops.insert(to, hops);
            self.report.delivery_times_s.insert(to, time);
        }
        if *pending_count > 0 {
            // The delivery-guarantee oracle: classify every failure as
            // justified (dead/disconnected destination) or a protocol
            // failure carrying the proximate cause of the last drop.
            faults.classify_failures(
                self.topo,
                self.source,
                self.has_events,
                alive,
                pending,
                drop_cause,
                self.report.truncated,
                &mut self.report.failed_dests,
            );
        }
        (self.report, self.scratch)
    }

    /// One equal-time batch of the staged two-phase pass.
    ///
    /// Phase A pops the whole equal-time batch, doing exactly the work
    /// whose order is pinned to pop order — the event budget, fault-state
    /// advancement, and the liveness/loss verdicts (including their RNG
    /// draws). Phase B replays the batch in that same pop order, doing
    /// everything else: delivery bookkeeping, the routing decision,
    /// dispatch. The verdicts read only state phase B never touches
    /// (`alive`, the fault tables, the RNG), so splitting the loop
    /// reorders no write — it only groups the protocol's Steiner-tree
    /// work into one cache-warm run per batch.
    ///
    /// Batching is sound because every phase-B forward arrives strictly
    /// later than the batch time (airtime > 0, jitter 0): the batch is
    /// precisely the set of events the interleaved loop would pop before
    /// any event it schedules.
    fn step_staged(&mut self, protocol: &mut dyn Protocol) {
        let Session {
            topo,
            config,
            scratch,
            report,
            energy,
            rng,
            source,
            has_events,
            has_duty,
            has_churn,
            events_processed,
            decisions,
            done,
            ..
        } = self;
        let (topo, config, source) = (*topo, *config, *source);
        let (has_events, has_duty, has_churn) = (*has_events, *has_duty, *has_churn);
        let runner = TaskRunner { topo, config };
        let positions = topo.positions_ref();
        let plan = &config.faults;
        let SimScratch {
            queue,
            on_air,
            alive,
            pending,
            pending_count,
            deliveries,
            forwards,
            drop_cause,
            faults,
            staged,
        } = scratch;

        let Some((time, first)) = queue.pop() else {
            *done = true;
            return;
        };
        let mut event = first;
        loop {
            *events_processed += 1;
            if *events_processed > config.max_events {
                // The tripping event is discarded unprocessed — the
                // interleaved loop breaks at the same point, with the
                // rest of the batch already dispatched.
                report.truncated = true;
                break;
            }
            let Event::Deliver {
                to, from, packet, ..
            } = event;
            if has_events {
                faults.advance_to(time, source, alive);
            }
            // A dead receiver and a sleeping receiver drop with the same
            // cause by design; keep the branches in the interleaved
            // loop's exact order.
            #[allow(clippy::if_same_then_else)]
            let verdict = if !alive[to.index()] {
                Some(FailureCause::DeadNode)
            } else if has_duty && to != source && faults.node_asleep(to, time) {
                Some(FailureCause::DeadNode)
            } else if has_churn && faults.link_severed(from, to, time) {
                Some(FailureCause::LinkDown)
            } else if plan.transmission_lost(rng) {
                Some(FailureCause::LinkLoss)
            } else {
                None
            };
            staged.push((to, packet, verdict));
            // Bitwise time equality: ±0.0 (ordered by `total_cmp` in the
            // heap) must not be merged into one batch.
            match queue.peek_time() {
                Some(t) if t.to_bits() == time.to_bits() => {
                    event = queue.pop().expect("peeked").1;
                }
                _ => break,
            }
        }
        for (to, mut packet, verdict) in staged.drain(..) {
            if let Some(cause) = verdict {
                report.dropped_packets += 1;
                record_drop(&packet.dests, pending, drop_cause, cause);
                continue;
            }
            // Record delivery and strip the receiving node.
            if packet.dests.contains(&to) {
                packet.dests.retain(|&d| d != to);
                if pending[to.index()] {
                    pending[to.index()] = false;
                    *pending_count -= 1;
                    deliveries.push((to, packet.hops, time));
                    report.completion_time_s = report.completion_time_s.max(time);
                }
            }
            if packet.dests.is_empty() {
                continue;
            }
            let ctx = NodeContext {
                topo,
                node: to,
                config,
                alive: has_events.then_some(alive.as_slice()),
            };
            *decisions += 1;
            protocol.on_packet(&ctx, packet, forwards);
            runner.transmit_jittered(
                to, forwards, queue, report, energy, positions, on_air, rng, pending, drop_cause,
            );
        }
        if report.truncated {
            *done = true;
        }
    }

    /// One event of the interleaved loop (collision model and/or jitter
    /// active).
    fn step_interleaved(&mut self, protocol: &mut dyn Protocol) {
        let Session {
            topo,
            config,
            scratch,
            report,
            energy,
            rng,
            source,
            has_events,
            has_duty,
            has_churn,
            events_processed,
            decisions,
            done,
            ..
        } = self;
        let (topo, config, source) = (*topo, *config, *source);
        let (has_events, has_duty, has_churn) = (*has_events, *has_duty, *has_churn);
        let runner = TaskRunner { topo, config };
        let positions = topo.positions_ref();
        let plan = &config.faults;
        let SimScratch {
            queue,
            on_air,
            alive,
            pending,
            pending_count,
            deliveries,
            forwards,
            drop_cause,
            faults,
            staged: _,
        } = scratch;

        let Some((time, event)) = queue.pop() else {
            *done = true;
            return;
        };
        *events_processed += 1;
        if *events_processed > config.max_events {
            report.truncated = true;
            *done = true;
            return;
        }
        let Event::Deliver {
            to,
            from,
            sent_at,
            retries,
            mut packet,
        } = event;
        if has_events {
            faults.advance_to(time, source, alive);
        }
        if !alive[to.index()] {
            report.dropped_packets += 1;
            record_drop(&packet.dests, pending, drop_cause, FailureCause::DeadNode);
            return;
        }
        // Duty-cycle sleep: a sleeping receiver misses the copy just
        // like a dead one, but wakes up again (and the oracle never
        // excuses the miss).
        if has_duty && to != source && faults.node_asleep(to, time) {
            report.dropped_packets += 1;
            record_drop(&packet.dests, pending, drop_cause, FailureCause::DeadNode);
            return;
        }
        // Link churn: the link was severed while the copy was on it.
        if has_churn && faults.link_severed(from, to, time) {
            report.dropped_packets += 1;
            record_drop(&packet.dests, pending, drop_cause, FailureCause::LinkDown);
            return;
        }
        // Link-loss injection: the transmission was made (and paid
        // for) but the copy never arrives.
        if plan.transmission_lost(rng) {
            report.dropped_packets += 1;
            record_drop(&packet.dests, pending, drop_cause, FailureCause::LinkLoss);
            return;
        }
        // Collision model: the copy is destroyed if any other audible
        // node (or the half-duplex receiver itself) transmitted during
        // its airtime. The link layer retries with backoff, up to the
        // configured budget (802.11-style), paying for each attempt.
        if config.collisions {
            on_air.prune(time);
            if runner.collides(on_air, sent_at, time, from, to) {
                if retries < config.max_retransmissions {
                    let airtime = time - sent_at;
                    let backoff = if config.tx_jitter_s > 0.0 {
                        rng.gen_range(0.0..=config.tx_jitter_s * (retries as f64 + 1.0))
                    } else {
                        airtime
                    };
                    let link_m = topo.pos(from).dist(topo.pos(to));
                    let listeners = topo.neighbors(from).len();
                    report.transmissions += 1;
                    report.bytes_transmitted += config.message_bytes;
                    report.links.push((from, to));
                    report.energy_j +=
                        energy.transmission_energy(config.message_bytes, listeners, link_m);
                    let resend_at = time + backoff;
                    report.link_times_s.push(resend_at);
                    on_air.push(resend_at, resend_at + airtime, from);
                    queue.schedule(
                        resend_at + airtime,
                        Event::Deliver {
                            to,
                            from,
                            sent_at: resend_at,
                            retries: retries + 1,
                            packet,
                        },
                    );
                } else {
                    report.dropped_packets += 1;
                    record_drop(&packet.dests, pending, drop_cause, FailureCause::Collision);
                }
                return;
            }
        }
        // Record delivery and strip the receiving node.
        if packet.dests.contains(&to) {
            packet.dests.retain(|&d| d != to);
            if pending[to.index()] {
                pending[to.index()] = false;
                *pending_count -= 1;
                deliveries.push((to, packet.hops, time));
                report.completion_time_s = report.completion_time_s.max(time);
            }
        }
        if packet.dests.is_empty() {
            return;
        }
        let ctx = NodeContext {
            topo,
            node: to,
            config,
            alive: has_events.then_some(alive.as_slice()),
        };
        *decisions += 1;
        protocol.on_packet(&ctx, packet, forwards);
        runner.transmit_jittered(
            to, forwards, queue, report, energy, positions, on_air, rng, pending, drop_cause,
        );
    }
}

/// Records `cause` as the proximate failure cause for every still-pending
/// destination a dropped copy was carrying (last write wins — by the end
/// of the run the recorded cause is the one that killed the final copy).
fn record_drop(
    dests: &[NodeId],
    pending: &[bool],
    drop_cause: &mut [FailureCause],
    cause: FailureCause,
) {
    for &d in dests {
        if pending[d.index()] {
            drop_cause[d.index()] = cause;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RoutingState;
    use gmp_faults::FailedDest;
    use gmp_geom::{Aabb, Point};

    fn line_topology(n: usize) -> Topology {
        let positions = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        Topology::from_positions(positions, Aabb::square(1000.0), 12.0)
    }

    fn line_config() -> SimConfig {
        SimConfig::paper().with_radio_range(12.0)
    }

    /// Greedy unicast toward each destination, one copy per destination.
    struct Greedy;
    impl Protocol for Greedy {
        fn name(&self) -> String {
            "greedy".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            out.extend(packet.dests.iter().filter_map(|&d| {
                let target = ctx.pos_of(d);
                let here = ctx.pos().dist(target);
                ctx.neighbors()
                    .iter()
                    .copied()
                    .filter(|&n| ctx.pos_of(n).dist(target) < here)
                    .min_by(|&a, &b| {
                        ctx.pos_of(a)
                            .dist(target)
                            .total_cmp(&ctx.pos_of(b).dist(target))
                    })
                    .map(|n| Forward {
                        next_hop: n,
                        packet: packet.split(vec![d], RoutingState::Greedy),
                    })
            }));
        }
    }

    /// Bounces a packet between the first two nodes forever.
    struct PingPong;
    impl Protocol for PingPong {
        fn name(&self) -> String {
            "ping-pong".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            let other = if ctx.node == NodeId(0) {
                NodeId(1)
            } else {
                NodeId(0)
            };
            out.push(Forward {
                next_hop: other,
                packet,
            });
        }
    }

    /// Floods a copy to every neighbor at every hop (event-cap stressor).
    struct Flood;
    impl Protocol for Flood {
        fn name(&self) -> String {
            "flood".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            out.extend(ctx.neighbors().iter().map(|&n| Forward {
                next_hop: n,
                packet: packet.clone(),
            }));
        }
    }

    #[test]
    fn greedy_delivers_along_a_line_with_exact_accounting() {
        let topo = line_topology(5);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 4);
        assert_eq!(report.delivery_hops[&NodeId(4)], 4);
        assert_eq!(report.dropped_packets, 0);
        assert!(!report.truncated);
        // Energy: senders 0,1,2,3 have 1,2,2,2 listeners respectively.
        let airtime = 128.0 * 8.0 / 1_000_000.0;
        let expected: f64 = [1, 2, 2, 2]
            .iter()
            .map(|&l| (1.3 + l as f64 * 0.9) * airtime)
            .sum();
        assert!((report.energy_j - expected).abs() < 1e-12);
        // Completion time: 4 store-and-forward hops.
        assert!((report.completion_time_s - 4.0 * airtime).abs() < 1e-12);
        assert_eq!(report.bytes_transmitted, 4 * 128);
        // The transmission log is the realized path.
        assert_eq!(
            report.links,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
            ]
        );
        // Transmission timestamps are store-and-forward multiples.
        assert_eq!(report.link_times_s.len(), 4);
        for (i, &t) in report.link_times_s.iter().enumerate() {
            assert!((t - i as f64 * airtime).abs() < 1e-12);
        }
        // The ns-2-style trace interleaves sends and the delivery.
        let trace = report.ns2_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 5); // 4 sends + 1 receive
        assert_eq!(lines[0], "s 0.000000 n0 n1");
        assert!(lines[4].starts_with("r ") && lines[4].ends_with("n4"));
    }

    #[test]
    fn multicast_to_two_destinations_counts_both() {
        let topo = line_topology(7);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        // Source in the middle, destinations at both ends.
        let task = MulticastTask::new(NodeId(3), vec![NodeId(0), NodeId(6)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 6);
        assert_eq!(report.delivery_hops[&NodeId(0)], 3);
        assert_eq!(report.delivery_hops[&NodeId(6)], 3);
        assert_eq!(report.mean_dest_hops(), Some(3.0));
    }

    #[test]
    fn hop_cap_drops_looping_packets() {
        let topo = line_topology(3);
        let config = line_config().with_max_path_hops(20);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(2)]);
        let report = runner.run(&mut PingPong, &task);
        assert!(!report.delivered_all());
        assert_eq!(
            report.failed_dests,
            vec![FailedDest::new(NodeId(2), FailureCause::HopCap)]
        );
        assert_eq!(report.dropped_packets, 1);
        assert_eq!(report.transmissions, 20);
        assert!(!report.truncated);
    }

    #[test]
    fn event_cap_truncates_exponential_floods() {
        let topo = line_topology(4);
        let mut config = line_config().with_max_path_hops(10_000);
        config.max_events = 500;
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(3)]);
        let report = runner.run(&mut Flood, &task);
        assert!(report.truncated);
    }

    #[test]
    fn failure_injection_kills_delivery() {
        let topo = line_topology(5);
        let config = line_config().with_node_failure_prob(1.0);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run_seeded(&mut Greedy, &task, 7);
        assert!(!report.delivered_all());
        // The first hop was transmitted but swallowed by the dead node.
        assert_eq!(report.transmissions, 1);
        assert_eq!(report.dropped_packets, 1);
    }

    /// Hop 0: the source fans out to both destinations; each destination
    /// then bounces the *other* destination back toward the source, so the
    /// two bounce transmissions overlap in the air at the source.
    struct CrossFire;
    impl Protocol for CrossFire {
        fn name(&self) -> String {
            "cross-fire".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            if ctx.node == NodeId(1) && packet.hops == 0 {
                out.push(Forward {
                    next_hop: NodeId(0),
                    packet: packet.split(vec![NodeId(0), NodeId(2)], RoutingState::Greedy),
                });
                out.push(Forward {
                    next_hop: NodeId(2),
                    packet: packet.split(vec![NodeId(0), NodeId(2)], RoutingState::Greedy),
                });
            } else if ctx.node != NodeId(1) {
                // Bounce the remaining destination back toward the source.
                out.push(Forward {
                    next_hop: NodeId(1),
                    packet: packet.clone(),
                });
            }
        }
    }

    #[test]
    fn collision_model_kills_overlapping_receptions() {
        // Three nodes in a line, all within mutual hearing range of the
        // middle one.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(16.0, 0.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 12.0);
        let config = line_config().with_collisions(true);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(1), vec![NodeId(0), NodeId(2)]);
        let report = runner.run(&mut CrossFire, &task);
        // The two outbound copies share a sender, so they cannot collide
        // with each other: both destinations are delivered on hop 1.
        assert!(
            report.delivered_all(),
            "single-sender copies must not self-collide: {report:?}"
        );
        // Both bounces (different senders, same airtime, both audible at
        // the source) must collide and die.
        assert_eq!(report.transmissions, 4);
        assert_eq!(
            report.dropped_packets, 2,
            "overlapping receptions must collide: {report:?}"
        );

        // Same run without the collision model: nothing is dropped (the
        // bounces arrive and terminate at the source).
        let plain_config = line_config();
        let plain = TaskRunner::new(&topo, &plain_config).run(&mut CrossFire, &task);
        assert_eq!(plain.dropped_packets, 0);
    }

    /// Sends two copies n0→n1 back-to-back; n1 replies to the first, so
    /// n1's own transmission window starts at the exact instant the second
    /// copy's reception window ends.
    struct TouchingWindows;
    impl Protocol for TouchingWindows {
        fn name(&self) -> String {
            "touching-windows".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            if ctx.node == NodeId(0) && packet.hops == 0 {
                out.push(Forward {
                    next_hop: NodeId(1),
                    packet: packet.split(vec![NodeId(0)], RoutingState::Greedy),
                });
                out.push(Forward {
                    next_hop: NodeId(1),
                    packet: packet.split(vec![NodeId(1)], RoutingState::Greedy),
                });
            } else if ctx.node == NodeId(1) {
                // Bounce the reply marker back to the source.
                out.push(Forward {
                    next_hop: NodeId(0),
                    packet,
                });
            }
        }
    }

    #[test]
    fn exactly_touching_windows_do_not_collide() {
        // Interference needs a strict overlap: `a < end && start < b`.
        // Here every pair of windows at the receiver touches at one
        // instant — the second copy's reception `[0, τ]` against n1's
        // reply transmission `[τ, 2τ]`, and the reply's reception at n0
        // against n0's own `[0, τ]` sends — so nothing may be destroyed,
        // not even via the half-duplex rule.
        let positions = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 12.0);
        let config = line_config().with_collisions(true);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(1)]);
        let report = runner.run(&mut TouchingWindows, &task);
        assert!(
            report.delivered_all(),
            "touching (non-overlapping) windows must not collide: {report:?}"
        );
        assert_eq!(report.dropped_packets, 0);
        assert_eq!(report.transmissions, 3);
    }

    /// Like [`TouchingWindows`], but the second copy carries two
    /// destination entries, so under size-dependent airtime it stays in
    /// the air longer and arrives *while* n1 is transmitting its reply.
    struct OverrunWindows;
    impl Protocol for OverrunWindows {
        fn name(&self) -> String {
            "overrun-windows".into()
        }
        fn on_packet(
            &mut self,
            ctx: &NodeContext<'_>,
            packet: MulticastPacket,
            out: &mut Vec<Forward>,
        ) {
            if ctx.node == NodeId(0) && packet.hops == 0 {
                out.push(Forward {
                    next_hop: NodeId(1),
                    packet: packet.split(vec![NodeId(0)], RoutingState::Greedy),
                });
                out.push(Forward {
                    next_hop: NodeId(1),
                    packet: packet.split(vec![NodeId(1), NodeId(0)], RoutingState::Greedy),
                });
            } else if ctx.node == NodeId(1) {
                out.push(Forward {
                    next_hop: NodeId(0),
                    packet,
                });
            }
        }
    }

    #[test]
    fn half_duplex_receiver_destroys_overlapping_reception() {
        // Destination entries cost 20 bytes each, so the two-entry copy's
        // airtime is strictly between 1× and 2× the one-entry copy's:
        // it arrives at n1 inside n1's own reply window `[τ, 2τ]` and the
        // `sender == to` (half-duplex) rule must kill it — n1 was
        // transmitting, n1 cannot simultaneously receive. The reply then
        // dies symmetrically at n0, whose second send is still in the air.
        let positions = vec![Point::new(0.0, 0.0), Point::new(8.0, 0.0)];
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 12.0);
        let config = line_config()
            .with_collisions(true)
            .with_size_dependent_airtime(true);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(1)]);
        let report = runner.run(&mut OverrunWindows, &task);
        assert_eq!(
            report.failed_dests,
            vec![FailedDest::new(NodeId(1), FailureCause::Collision)],
            "half-duplex reception must be destroyed: {report:?}"
        );
        assert_eq!(report.dropped_packets, 2);
        assert_eq!(report.transmissions, 3);
        assert!(!report.truncated);
    }

    #[test]
    fn backoff_chains_with_expiring_entries_stay_exact() {
        // CrossFire's two bounces collide; with no jitter the backoff
        // equals the airtime, so both copies retry in lockstep windows
        // `[3τ,4τ]`, `[5τ,6τ]`, `[7τ,8τ]` and collide every round until
        // the budget runs out. By the later rounds every earlier window
        // has left the pruning horizon (`now − max_airtime`) and been
        // popped mid-task — the verdicts must come out identical to the
        // seed's never-pruned bookkeeping: one collision per copy per
        // round, nothing more.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(16.0, 0.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 12.0);
        let config = line_config().with_collisions(true).with_retransmissions(3);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(1), vec![NodeId(0), NodeId(2)]);
        let report = runner.run(&mut CrossFire, &task);
        // Both destinations were reached on the outbound fan-out.
        assert!(report.delivered_all(), "{report:?}");
        // 2 outbound + 2 bounces + 2 copies × 3 retries, then both drop.
        assert_eq!(report.transmissions, 10);
        assert_eq!(report.dropped_packets, 2);
        assert!(!report.truncated);
    }

    #[test]
    fn collisions_off_by_default_preserves_old_behaviour() {
        let topo = line_topology(5);
        let config = line_config();
        assert!(!config.collisions);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        assert_eq!(report.dropped_packets, 0);
    }

    #[test]
    fn link_loss_drops_copies_but_stays_deterministic() {
        let topo = line_topology(6);
        let config = line_config().with_link_loss_prob(0.5);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(5)]);
        let a = runner.run_seeded(&mut Greedy, &task, 3);
        let b = runner.run_seeded(&mut Greedy, &task, 3);
        assert_eq!(a, b, "loss sampling must be seed-deterministic");
        // At 50% per-hop loss over 5 hops the copy essentially never
        // survives; the drop must be accounted.
        if !a.delivered_all() {
            assert!(a.dropped_packets >= 1);
        }
        // Different seed, possibly different outcome, never a panic.
        let _ = runner.run_seeded(&mut Greedy, &task, 4);
    }

    #[test]
    fn runs_are_deterministic() {
        let topo = line_topology(7);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(3), vec![NodeId(0), NodeId(6)]);
        let a = runner.run(&mut Greedy, &task);
        let b = runner.run(&mut Greedy, &task);
        assert_eq!(a, b);
    }

    #[test]
    fn reused_scratch_matches_fresh_runs() {
        // One scratch across a mix of configs and tasks: every report must
        // be bit-identical to a fresh-scratch run.
        let topo = line_topology(7);
        let configs = [
            line_config(),
            line_config()
                .with_collisions(true)
                .with_tx_jitter(0.002)
                .with_retransmissions(3),
            line_config().with_link_loss_prob(0.3),
        ];
        let tasks = [
            MulticastTask::new(NodeId(3), vec![NodeId(0), NodeId(6)]),
            MulticastTask::new(NodeId(0), vec![NodeId(5)]),
        ];
        let mut scratch = SimScratch::new();
        for config in &configs {
            let runner = TaskRunner::new(&topo, config);
            for task in &tasks {
                for seed in [0, 9] {
                    let fresh = runner.run_seeded(&mut Greedy, task, seed);
                    let reused = runner.run_with_scratch(&mut Greedy, task, seed, &mut scratch);
                    assert_eq!(fresh, reused);
                }
            }
        }
    }

    #[test]
    fn manually_stepped_session_matches_one_shot_run() {
        // Drive a Session by hand — begin / step-until-done / finish —
        // across staged (paper default) and interleaved (collisions)
        // configurations; the report must be bit-identical to
        // run_with_scratch, and next_time() must be non-decreasing.
        let topo = line_topology(7);
        let configs = [
            line_config(),
            line_config()
                .with_collisions(true)
                .with_tx_jitter(0.002)
                .with_retransmissions(3),
            line_config().with_link_loss_prob(0.3),
        ];
        let task = MulticastTask::new(NodeId(3), vec![NodeId(0), NodeId(6)]);
        for config in &configs {
            let runner = TaskRunner::new(&topo, config);
            let oneshot = runner.run_seeded(&mut Greedy, &task, 5);
            let mut session = Session::begin(runner, &mut Greedy, &task, 5, SimScratch::new());
            let mut last = f64::NEG_INFINITY;
            while let Some(t) = session.next_time() {
                assert!(t >= last, "event times must be non-decreasing");
                last = t;
                session.step(&mut Greedy);
            }
            assert!(session.step(&mut Greedy), "drained session must be done");
            assert!(session.decisions() >= 1);
            let (report, _scratch) = session.finish();
            assert_eq!(report, oneshot);
        }
    }

    #[test]
    #[should_panic(expected = "radio range")]
    fn mismatched_radio_range_panics() {
        let topo = line_topology(3);
        let config = SimConfig::paper(); // 150 m ≠ 12 m
        let _ = TaskRunner::new(&topo, &config);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn forwarding_to_non_neighbor_panics() {
        struct Teleport;
        impl Protocol for Teleport {
            fn name(&self) -> String {
                "teleport".into()
            }
            fn on_packet(
                &mut self,
                _: &NodeContext<'_>,
                packet: MulticastPacket,
                out: &mut Vec<Forward>,
            ) {
                out.push(Forward {
                    next_hop: NodeId(4),
                    packet,
                });
            }
        }
        let topo = line_topology(5);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let _ = runner.run(&mut Teleport, &task);
    }

    #[test]
    fn size_dependent_airtime_charges_encoded_bytes() {
        let topo = line_topology(5);
        let config = line_config().with_size_dependent_airtime(true);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        // Encoded packets here are smaller than 128 B (1 destination).
        assert!(report.bytes_transmitted < 4 * 128);
        assert!(report.bytes_transmitted > 0);
    }
}
