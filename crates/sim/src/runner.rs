//! The per-task simulation loop.

use std::collections::HashSet;

use gmp_net::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SimConfig;
use crate::energy::EnergyModel;
use crate::event::{Event, EventQueue};
use crate::metrics::TaskReport;
use crate::packet::MulticastPacket;
use crate::protocol::{Forward, NodeContext, Protocol};
use crate::task::MulticastTask;

/// Runs multicast tasks over a fixed topology and configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaskRunner<'a> {
    topo: &'a Topology,
    config: &'a SimConfig,
}

impl<'a> TaskRunner<'a> {
    /// Creates a runner. `config.radio_range` should match the topology's;
    /// this is asserted because a mismatch silently breaks every protocol.
    pub fn new(topo: &'a Topology, config: &'a SimConfig) -> Self {
        assert!(
            (topo.radio_range() - config.radio_range).abs() < 1e-9,
            "topology radio range {} != config radio range {}",
            topo.radio_range(),
            config.radio_range
        );
        TaskRunner { topo, config }
    }

    /// Runs `task` under `protocol` with failure-injection seed 0.
    pub fn run(&self, protocol: &mut dyn Protocol, task: &MulticastTask) -> TaskReport {
        self.run_seeded(protocol, task, 0)
    }

    /// Runs `task` under `protocol`; `seed` drives failure injection only
    /// (runs are otherwise deterministic).
    pub fn run_seeded(
        &self,
        protocol: &mut dyn Protocol,
        task: &MulticastTask,
        seed: u64,
    ) -> TaskReport {
        let mut report = TaskReport::new(protocol.name());
        let energy = EnergyModel::from_config(self.config);
        let positions = self.topo.positions();
        let mut rng = StdRng::seed_from_u64(seed);

        // Failure injection: sample dead nodes (never the source, so the
        // task can at least start).
        let mut alive = vec![true; self.topo.len()];
        if self.config.node_failure_prob > 0.0 {
            for (i, a) in alive.iter_mut().enumerate() {
                if NodeId(i as u32) != task.source
                    && rng.gen::<f64>() < self.config.node_failure_prob
                {
                    *a = false;
                }
            }
        }

        let mut pending: HashSet<NodeId> = task.dests.iter().copied().collect();
        let mut queue = EventQueue::new();
        let mut events_processed = 0usize;
        // All transmissions as (start, end, sender) for the collision model.
        let mut on_air: Vec<(f64, f64, NodeId)> = Vec::new();

        let ctx_at = |node: NodeId| NodeContext {
            topo: self.topo,
            node,
            config: self.config,
        };

        protocol.on_task_start(&ctx_at(task.source), task.source, &task.dests);

        // The source processes the initial packet at t = 0.
        let initial = MulticastPacket::new(0, task.source, task.dests.clone());
        let forwards = protocol.on_packet(&ctx_at(task.source), initial);
        self.transmit_jittered(
            task.source,
            forwards,
            &mut queue,
            &mut report,
            &energy,
            &positions,
            &mut on_air,
            &mut rng,
        );

        while let Some((time, event)) = queue.pop() {
            events_processed += 1;
            if events_processed > self.config.max_events {
                report.truncated = true;
                break;
            }
            let Event::Deliver {
                to,
                from,
                sent_at,
                retries,
                mut packet,
            } = event;
            if !alive[to.index()] {
                report.dropped_packets += 1;
                continue;
            }
            // Link-loss injection: the transmission was made (and paid
            // for) but the copy never arrives.
            if self.config.link_loss_prob > 0.0 && rng.gen::<f64>() < self.config.link_loss_prob {
                report.dropped_packets += 1;
                continue;
            }
            // Collision model: the copy is destroyed if any other audible
            // node (or the half-duplex receiver itself) transmitted during
            // its airtime. The link layer retries with backoff, up to the
            // configured budget (802.11-style), paying for each attempt.
            if self.config.collisions && self.collides(&on_air, sent_at, time, from, to) {
                if retries < self.config.max_retransmissions {
                    let airtime = time - sent_at;
                    let backoff = if self.config.tx_jitter_s > 0.0 {
                        rng.gen_range(0.0..=self.config.tx_jitter_s * (retries as f64 + 1.0))
                    } else {
                        airtime
                    };
                    let link_m = self.topo.pos(from).dist(self.topo.pos(to));
                    let listeners = self.topo.neighbors(from).len();
                    report.transmissions += 1;
                    report.bytes_transmitted += self.config.message_bytes;
                    report.links.push((from, to));
                    report.energy_j +=
                        energy.transmission_energy(self.config.message_bytes, listeners, link_m);
                    let resend_at = time + backoff;
                    report.link_times_s.push(resend_at);
                    on_air.push((resend_at, resend_at + airtime, from));
                    queue.schedule(
                        resend_at + airtime,
                        Event::Deliver {
                            to,
                            from,
                            sent_at: resend_at,
                            retries: retries + 1,
                            packet,
                        },
                    );
                } else {
                    report.dropped_packets += 1;
                }
                continue;
            }
            // Record delivery and strip the receiving node.
            if packet.dests.contains(&to) {
                packet.dests.retain(|&d| d != to);
                if pending.remove(&to) {
                    report.delivery_hops.insert(to, packet.hops);
                    report.delivery_times_s.insert(to, time);
                    report.completion_time_s = report.completion_time_s.max(time);
                }
            }
            if packet.dests.is_empty() {
                continue;
            }
            let forwards = protocol.on_packet(&ctx_at(to), packet);
            self.transmit_jittered(
                to,
                forwards,
                &mut queue,
                &mut report,
                &energy,
                &positions,
                &mut on_air,
                &mut rng,
            );
        }

        let mut failed: Vec<NodeId> = pending.into_iter().collect();
        failed.sort();
        report.failed_dests = failed;
        report
    }

    /// `true` if the transmission `[start, end]` from `from` to `to`
    /// overlaps another transmission audible at `to` (protocol-model
    /// interference), or if `to` itself was transmitting (half-duplex).
    fn collides(
        &self,
        on_air: &[(f64, f64, NodeId)],
        start: f64,
        end: f64,
        from: NodeId,
        to: NodeId,
    ) -> bool {
        let rr = self.config.radio_range;
        on_air.iter().any(|&(a, b, sender)| {
            sender != from
                && a < end
                && start < b
                && (sender == to || self.topo.pos(sender).dist(self.topo.pos(to)) <= rr)
        })
    }

    /// Applies hop caps, accounts energy/bytes, and schedules deliveries
    /// for the copies a protocol decided to send from `sender`, with the
    /// configured carrier-sense jitter.
    #[allow(clippy::too_many_arguments)]
    fn transmit_jittered(
        &self,
        sender: NodeId,
        forwards: Vec<Forward>,
        queue: &mut EventQueue,
        report: &mut TaskReport,
        energy: &EnergyModel,
        positions: &[gmp_geom::Point],
        on_air: &mut Vec<(f64, f64, NodeId)>,
        rng: &mut StdRng,
    ) {
        for mut fwd in forwards {
            assert!(
                self.topo.neighbors(sender).contains(&fwd.next_hop),
                "protocol bug: {} forwarded to non-neighbor {}",
                sender,
                fwd.next_hop
            );
            fwd.packet.hops += 1;
            if fwd.packet.hops > self.config.max_path_hops {
                report.dropped_packets += 1;
                continue;
            }
            let bytes = if self.config.size_dependent_airtime {
                fwd.packet.encoded_len(positions)
            } else {
                self.config.message_bytes
            };
            let link_m = self.topo.pos(sender).dist(self.topo.pos(fwd.next_hop));
            // Under power control only nodes within the (reduced) radius
            // overhear the transmission.
            let listeners = if self.config.power_control.is_some() {
                self.topo
                    .neighbors(sender)
                    .iter()
                    .filter(|&&n| {
                        self.topo.pos(sender).dist(self.topo.pos(n)) <= link_m + gmp_geom::EPS
                    })
                    .count()
            } else {
                self.topo.neighbors(sender).len()
            };
            report.transmissions += 1;
            report.bytes_transmitted += bytes;
            report.links.push((sender, fwd.next_hop));
            report.link_times_s.push(queue.now());
            report.energy_j += energy.transmission_energy(bytes, listeners, link_m);
            let jitter = if self.config.tx_jitter_s > 0.0 {
                rng.gen_range(0.0..=self.config.tx_jitter_s)
            } else {
                0.0
            };
            let sent_at = queue.now() + jitter;
            let arrival = sent_at + energy.airtime(bytes);
            if self.config.collisions {
                on_air.push((sent_at, arrival, sender));
            }
            queue.schedule(
                arrival,
                Event::Deliver {
                    to: fwd.next_hop,
                    from: sender,
                    sent_at,
                    retries: 0,
                    packet: fwd.packet,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::RoutingState;
    use gmp_geom::{Aabb, Point};

    fn line_topology(n: usize) -> Topology {
        let positions = (0..n).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        Topology::from_positions(positions, Aabb::square(1000.0), 12.0)
    }

    fn line_config() -> SimConfig {
        SimConfig::paper().with_radio_range(12.0)
    }

    /// Greedy unicast toward each destination, one copy per destination.
    struct Greedy;
    impl Protocol for Greedy {
        fn name(&self) -> String {
            "greedy".into()
        }
        fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: MulticastPacket) -> Vec<Forward> {
            packet
                .dests
                .iter()
                .filter_map(|&d| {
                    let target = ctx.pos_of(d);
                    let here = ctx.pos().dist(target);
                    ctx.neighbors()
                        .iter()
                        .copied()
                        .filter(|&n| ctx.pos_of(n).dist(target) < here)
                        .min_by(|&a, &b| {
                            ctx.pos_of(a)
                                .dist(target)
                                .total_cmp(&ctx.pos_of(b).dist(target))
                        })
                        .map(|n| Forward {
                            next_hop: n,
                            packet: packet.split(vec![d], RoutingState::Greedy),
                        })
                })
                .collect()
        }
    }

    /// Bounces a packet between the first two nodes forever.
    struct PingPong;
    impl Protocol for PingPong {
        fn name(&self) -> String {
            "ping-pong".into()
        }
        fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: MulticastPacket) -> Vec<Forward> {
            let other = if ctx.node == NodeId(0) {
                NodeId(1)
            } else {
                NodeId(0)
            };
            vec![Forward {
                next_hop: other,
                packet,
            }]
        }
    }

    /// Floods a copy to every neighbor at every hop (event-cap stressor).
    struct Flood;
    impl Protocol for Flood {
        fn name(&self) -> String {
            "flood".into()
        }
        fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: MulticastPacket) -> Vec<Forward> {
            ctx.neighbors()
                .iter()
                .map(|&n| Forward {
                    next_hop: n,
                    packet: packet.clone(),
                })
                .collect()
        }
    }

    #[test]
    fn greedy_delivers_along_a_line_with_exact_accounting() {
        let topo = line_topology(5);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 4);
        assert_eq!(report.delivery_hops[&NodeId(4)], 4);
        assert_eq!(report.dropped_packets, 0);
        assert!(!report.truncated);
        // Energy: senders 0,1,2,3 have 1,2,2,2 listeners respectively.
        let airtime = 128.0 * 8.0 / 1_000_000.0;
        let expected: f64 = [1, 2, 2, 2]
            .iter()
            .map(|&l| (1.3 + l as f64 * 0.9) * airtime)
            .sum();
        assert!((report.energy_j - expected).abs() < 1e-12);
        // Completion time: 4 store-and-forward hops.
        assert!((report.completion_time_s - 4.0 * airtime).abs() < 1e-12);
        assert_eq!(report.bytes_transmitted, 4 * 128);
        // The transmission log is the realized path.
        assert_eq!(
            report.links,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(1), NodeId(2)),
                (NodeId(2), NodeId(3)),
                (NodeId(3), NodeId(4)),
            ]
        );
        // Transmission timestamps are store-and-forward multiples.
        assert_eq!(report.link_times_s.len(), 4);
        for (i, &t) in report.link_times_s.iter().enumerate() {
            assert!((t - i as f64 * airtime).abs() < 1e-12);
        }
        // The ns-2-style trace interleaves sends and the delivery.
        let trace = report.ns2_trace();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 5); // 4 sends + 1 receive
        assert_eq!(lines[0], "s 0.000000 n0 n1");
        assert!(lines[4].starts_with("r ") && lines[4].ends_with("n4"));
    }

    #[test]
    fn multicast_to_two_destinations_counts_both() {
        let topo = line_topology(7);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        // Source in the middle, destinations at both ends.
        let task = MulticastTask::new(NodeId(3), vec![NodeId(0), NodeId(6)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 6);
        assert_eq!(report.delivery_hops[&NodeId(0)], 3);
        assert_eq!(report.delivery_hops[&NodeId(6)], 3);
        assert_eq!(report.mean_dest_hops(), Some(3.0));
    }

    #[test]
    fn hop_cap_drops_looping_packets() {
        let topo = line_topology(3);
        let config = line_config().with_max_path_hops(20);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(2)]);
        let report = runner.run(&mut PingPong, &task);
        assert!(!report.delivered_all());
        assert_eq!(report.failed_dests, vec![NodeId(2)]);
        assert_eq!(report.dropped_packets, 1);
        assert_eq!(report.transmissions, 20);
        assert!(!report.truncated);
    }

    #[test]
    fn event_cap_truncates_exponential_floods() {
        let topo = line_topology(4);
        let mut config = line_config().with_max_path_hops(10_000);
        config.max_events = 500;
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(3)]);
        let report = runner.run(&mut Flood, &task);
        assert!(report.truncated);
    }

    #[test]
    fn failure_injection_kills_delivery() {
        let topo = line_topology(5);
        let config = line_config().with_node_failure_prob(1.0);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run_seeded(&mut Greedy, &task, 7);
        assert!(!report.delivered_all());
        // The first hop was transmitted but swallowed by the dead node.
        assert_eq!(report.transmissions, 1);
        assert_eq!(report.dropped_packets, 1);
    }

    /// Hop 0: the source fans out to both destinations; each destination
    /// then bounces the *other* destination back toward the source, so the
    /// two bounce transmissions overlap in the air at the source.
    struct CrossFire;
    impl Protocol for CrossFire {
        fn name(&self) -> String {
            "cross-fire".into()
        }
        fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: MulticastPacket) -> Vec<Forward> {
            if ctx.node == NodeId(1) && packet.hops == 0 {
                vec![
                    Forward {
                        next_hop: NodeId(0),
                        packet: packet.split(vec![NodeId(0), NodeId(2)], RoutingState::Greedy),
                    },
                    Forward {
                        next_hop: NodeId(2),
                        packet: packet.split(vec![NodeId(0), NodeId(2)], RoutingState::Greedy),
                    },
                ]
            } else if ctx.node != NodeId(1) {
                // Bounce the remaining destination back toward the source.
                vec![Forward {
                    next_hop: NodeId(1),
                    packet: packet.clone(),
                }]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn collision_model_kills_overlapping_receptions() {
        // Three nodes in a line, all within mutual hearing range of the
        // middle one.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(8.0, 0.0),
            Point::new(16.0, 0.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(100.0), 12.0);
        let config = line_config().with_collisions(true);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(1), vec![NodeId(0), NodeId(2)]);
        let report = runner.run(&mut CrossFire, &task);
        // The two outbound copies share a sender, so they cannot collide
        // with each other: both destinations are delivered on hop 1.
        assert!(
            report.delivered_all(),
            "single-sender copies must not self-collide: {report:?}"
        );
        // Both bounces (different senders, same airtime, both audible at
        // the source) must collide and die.
        assert_eq!(report.transmissions, 4);
        assert_eq!(
            report.dropped_packets, 2,
            "overlapping receptions must collide: {report:?}"
        );

        // Same run without the collision model: nothing is dropped (the
        // bounces arrive and terminate at the source).
        let plain_config = line_config();
        let plain = TaskRunner::new(&topo, &plain_config).run(&mut CrossFire, &task);
        assert_eq!(plain.dropped_packets, 0);
    }

    #[test]
    fn collisions_off_by_default_preserves_old_behaviour() {
        let topo = line_topology(5);
        let config = line_config();
        assert!(!config.collisions);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        assert_eq!(report.dropped_packets, 0);
    }

    #[test]
    fn link_loss_drops_copies_but_stays_deterministic() {
        let topo = line_topology(6);
        let config = line_config().with_link_loss_prob(0.5);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(5)]);
        let a = runner.run_seeded(&mut Greedy, &task, 3);
        let b = runner.run_seeded(&mut Greedy, &task, 3);
        assert_eq!(a, b, "loss sampling must be seed-deterministic");
        // At 50% per-hop loss over 5 hops the copy essentially never
        // survives; the drop must be accounted.
        if !a.delivered_all() {
            assert!(a.dropped_packets >= 1);
        }
        // Different seed, possibly different outcome, never a panic.
        let _ = runner.run_seeded(&mut Greedy, &task, 4);
    }

    #[test]
    fn runs_are_deterministic() {
        let topo = line_topology(7);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(3), vec![NodeId(0), NodeId(6)]);
        let a = runner.run(&mut Greedy, &task);
        let b = runner.run(&mut Greedy, &task);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "radio range")]
    fn mismatched_radio_range_panics() {
        let topo = line_topology(3);
        let config = SimConfig::paper(); // 150 m ≠ 12 m
        let _ = TaskRunner::new(&topo, &config);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn forwarding_to_non_neighbor_panics() {
        struct Teleport;
        impl Protocol for Teleport {
            fn name(&self) -> String {
                "teleport".into()
            }
            fn on_packet(&mut self, _: &NodeContext<'_>, packet: MulticastPacket) -> Vec<Forward> {
                vec![Forward {
                    next_hop: NodeId(4),
                    packet,
                }]
            }
        }
        let topo = line_topology(5);
        let config = line_config();
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let _ = runner.run(&mut Teleport, &task);
    }

    #[test]
    fn size_dependent_airtime_charges_encoded_bytes() {
        let topo = line_topology(5);
        let config = line_config().with_size_dependent_airtime(true);
        let runner = TaskRunner::new(&topo, &config);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(4)]);
        let report = runner.run(&mut Greedy, &task);
        assert!(report.delivered_all());
        // Encoded packets here are smaller than 128 B (1 destination).
        assert!(report.bytes_transmitted < 4 * 128);
        assert!(report.bytes_transmitted > 0);
    }
}
