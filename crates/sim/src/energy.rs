//! The paper's energy model, plus the optional power-control extension.
//!
//! Footnote 2: "The energy consumption reported in this paper includes the
//! transmission power of senders and the receiving power of all listening
//! nodes within the transmission radio range of the senders." One
//! transmission of airtime `t` with `k` listeners therefore costs
//! `(P_tx + k · P_rx) · t` joules with the paper's fixed 1.3 W transmit
//! power.
//!
//! With [`PowerControl`] enabled (extension),
//! the transmit power scales with the link distance `d` as
//! `P_overhead + (d / rr)^α · P_tx`, and only nodes within `d` of the
//! sender count as listeners — the model under which short hops become
//! genuinely cheap.

use crate::config::{PowerControl, SimConfig};

/// Energy accounting for one simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Transmit power at full range, watts.
    pub tx_power_w: f64,
    /// Receive power, watts.
    pub rx_power_w: f64,
    /// Channel rate, bits/second.
    pub data_rate_bps: f64,
    /// Radio range (normalizes distances under power control), meters.
    pub radio_range: f64,
    /// Optional distance-scaled transmit power.
    pub power_control: Option<PowerControl>,
}

impl EnergyModel {
    /// Extracts the energy parameters from a [`SimConfig`].
    pub fn from_config(config: &SimConfig) -> Self {
        EnergyModel {
            tx_power_w: config.tx_power_w,
            rx_power_w: config.rx_power_w,
            data_rate_bps: config.data_rate_bps,
            radio_range: config.radio_range,
            power_control: config.power_control,
        }
    }

    /// Airtime of a message of `bytes` bytes, seconds.
    pub fn airtime(&self, bytes: usize) -> f64 {
        bytes as f64 * 8.0 / self.data_rate_bps
    }

    /// Effective transmit power for a hop of `link_m` meters, watts.
    pub fn tx_power_for(&self, link_m: f64) -> f64 {
        match self.power_control {
            None => self.tx_power_w,
            Some(pc) => {
                let norm = (link_m / self.radio_range).clamp(0.0, 1.0);
                pc.overhead_w + norm.powf(pc.alpha) * self.tx_power_w
            }
        }
    }

    /// Energy of one transmission of `bytes` bytes over `link_m` meters,
    /// heard by `listeners` nodes, joules.
    pub fn transmission_energy(&self, bytes: usize, listeners: usize, link_m: f64) -> f64 {
        (self.tx_power_for(link_m) + listeners as f64 * self.rx_power_w) * self.airtime(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::from_config(&SimConfig::paper())
    }

    #[test]
    fn paper_airtime() {
        assert!((model().airtime(128) - 0.001024).abs() < 1e-12);
    }

    #[test]
    fn energy_includes_all_listeners() {
        let m = model();
        // One sender, 10 listeners, 128 B: (1.3 + 10·0.9) · 1.024 ms.
        let expected = (1.3 + 9.0) * 0.001024;
        assert!((m.transmission_energy(128, 10, 150.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_listeners_costs_only_tx() {
        let m = model();
        assert!((m.transmission_energy(128, 0, 150.0) - 1.3 * 0.001024).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_linearly_with_size() {
        let m = model();
        let e1 = m.transmission_energy(128, 5, 100.0);
        let e2 = m.transmission_energy(256, 5, 100.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-12);
    }

    #[test]
    fn fixed_power_ignores_link_distance() {
        let m = model();
        assert_eq!(m.tx_power_for(10.0), m.tx_power_for(150.0));
        assert_eq!(m.tx_power_for(10.0), 1.3);
    }

    #[test]
    fn power_control_scales_with_distance() {
        let config = SimConfig::paper().with_power_control(crate::config::PowerControl {
            alpha: 2.0,
            overhead_w: 0.1,
        });
        let m = EnergyModel::from_config(&config);
        // Full-range hop: overhead + full tx power.
        assert!((m.tx_power_for(150.0) - 1.4).abs() < 1e-12);
        // Half-range hop: overhead + tx/4.
        assert!((m.tx_power_for(75.0) - (0.1 + 1.3 / 4.0)).abs() < 1e-12);
        // Short hops are much cheaper.
        assert!(m.tx_power_for(15.0) < 0.12);
        // Distances beyond the range clamp (radios cannot exceed it).
        assert_eq!(m.tx_power_for(500.0), m.tx_power_for(150.0));
    }
}
