//! Multicast tasks: the workload unit of the paper's evaluation.
//!
//! "For each task, we randomly pick a node as the source node and randomly
//! pick k nodes as the destination nodes" (Section 5).

use gmp_net::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One multicast routing task: a source and `k` destinations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastTask {
    /// The originating node.
    pub source: NodeId,
    /// The destination set (distinct, never containing the source).
    pub dests: Vec<NodeId>,
}

impl MulticastTask {
    /// Creates a task after validating it.
    ///
    /// # Panics
    ///
    /// Panics if `dests` contains duplicates or the source.
    pub fn new(source: NodeId, dests: Vec<NodeId>) -> Self {
        let mut sorted = dests.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), dests.len(), "duplicate destinations");
        assert!(!dests.contains(&source), "source cannot be a destination");
        MulticastTask { source, dests }
    }

    /// Draws a random task over `topo` with `k` destinations, seeded.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer than `k + 1` nodes.
    pub fn random(topo: &Topology, k: usize, seed: u64) -> Self {
        let ids: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        MulticastTask::random_among(&ids, k, seed)
    }

    /// Draws a random task whose source and destinations all come from
    /// `candidates` — the region-restricted form of
    /// [`MulticastTask::random`] used by the sharded substrate, where the
    /// eligible nodes are those inside a task window rather than the whole
    /// network. With `candidates = 0..topo.len()` this is bit-identical to
    /// `random` (same shuffle stream).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` has fewer than `k + 1` entries.
    pub fn random_among(candidates: &[NodeId], k: usize, seed: u64) -> Self {
        assert!(candidates.len() > k, "need at least k+1 nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids = candidates.to_vec();
        ids.shuffle(&mut rng);
        let source = ids[0];
        let dests = ids[1..=k].to_vec();
        MulticastTask { source, dests }
    }

    /// Number of destinations (`k`).
    pub fn k(&self) -> usize {
        self.dests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_net::TopologyConfig;

    #[test]
    fn random_task_has_distinct_members() {
        let topo = Topology::random(&TopologyConfig::new(300.0, 50, 100.0), 1);
        for seed in 0..20 {
            let t = MulticastTask::random(&topo, 12, seed);
            assert_eq!(t.k(), 12);
            let mut d = t.dests.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), 12);
            assert!(!t.dests.contains(&t.source));
        }
    }

    #[test]
    fn random_task_is_seed_deterministic() {
        let topo = Topology::random(&TopologyConfig::new(300.0, 50, 100.0), 1);
        assert_eq!(
            MulticastTask::random(&topo, 5, 99),
            MulticastTask::random(&topo, 5, 99)
        );
        assert_ne!(
            MulticastTask::random(&topo, 5, 99),
            MulticastTask::random(&topo, 5, 100)
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_destinations_panic() {
        MulticastTask::new(NodeId(0), vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    #[should_panic(expected = "source")]
    fn source_as_destination_panics() {
        MulticastTask::new(NodeId(0), vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "k+1")]
    fn oversized_k_panics() {
        let topo = Topology::random(&TopologyConfig::new(100.0, 5, 50.0), 1);
        MulticastTask::random(&topo, 5, 0);
    }
}
