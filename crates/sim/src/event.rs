//! The discrete-event queue.
//!
//! Events are ordered by simulated time with a monotonically increasing
//! sequence number as tiebreak, making runs bit-for-bit deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gmp_net::NodeId;

use crate::packet::MulticastPacket;

/// A scheduled simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `packet` arrives at `to`, transmitted by `from`.
    Deliver {
        /// Receiving node.
        to: NodeId,
        /// Transmitting node.
        from: NodeId,
        /// When the transmission started (airtime = arrival − sent_at).
        sent_at: f64,
        /// Link-layer retransmissions already used for this copy.
        retries: u8,
        /// The packet copy in flight.
        packet: MulticastPacket,
    },
}

#[derive(Debug)]
struct Scheduled {
    time: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: f64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Rewinds to an empty queue at time zero, keeping the heap's
    /// allocation — a reset queue is indistinguishable from a new one
    /// (times, tiebreak sequence numbers, and pop order all restart).
    pub fn reset(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = 0.0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past or not finite.
    pub fn schedule(&mut self, time: f64, event: Event) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(time >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Pops the earliest event, advancing the clock.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Timestamp of the earliest pending event, without popping it.
    /// Lets the runner detect equal-time batches for the staged
    /// decision pass.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(to: u32) -> Event {
        Event::Deliver {
            to: NodeId(to),
            from: NodeId(0),
            sent_at: 0.0,
            retries: 0,
            packet: MulticastPacket::new(0, NodeId(0), vec![]),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, ev(3));
        q.schedule(1.0, ev(1));
        q.schedule(2.0, ev(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ev(10));
        q.schedule(1.0, ev(20));
        let (_, first) = q.pop().unwrap();
        match first {
            Event::Deliver { to, .. } => assert_eq!(to, NodeId(10)),
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(5.0, ev(1));
        q.pop();
        assert_eq!(q.now(), 5.0);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ev(1));
        q.pop();
        q.schedule(1.0, ev(2));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ev(1));
    }
}
