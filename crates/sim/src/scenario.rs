//! Plain-text scenario files: save and reload a deployment plus its
//! multicast tasks, so experiments can be pinned, shared, and re-run
//! bit-for-bit (the role ns-2 scenario files played for the paper).
//!
//! The format is line-oriented:
//!
//! ```text
//! # gmp scenario v1
//! area 1000 1000
//! radio_range 150
//! node 0 123.456 789.012
//! node 1 …
//! task 5 7 9 23
//! ```
//!
//! `node` lines must appear in id order starting at 0; a `task` line is a
//! source followed by its destinations. Floats use Rust's shortest
//! round-trip formatting, so save → load reproduces coordinates exactly.
//!
//! Fault plans ride along as `fault` lines, one per knob or event:
//!
//! ```text
//! fault bernoulli 0.05 0.01
//! fault crash 7 12.5
//! fault blackout disk 500 500 120 10 inf
//! fault blackout rect 0 0 200 200 5 30
//! fault duty 10 0.8
//! fault churn 0 60 1 5 0 2 42
//! ```
//!
//! Infinite blackout ends serialize as `inf` and round-trip exactly.

use std::fmt::Write as _;
use std::path::Path;

use gmp_faults::{FaultEvent, FaultPlan, FaultRegion};
use gmp_geom::{Aabb, Point};
use gmp_net::{NodeId, Topology};

use crate::task::MulticastTask;

/// A deployment plus workload, as stored in a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Deployment area.
    pub area: Aabb,
    /// Radio range, meters.
    pub radio_range: f64,
    /// Node positions, indexed by id.
    pub positions: Vec<Point>,
    /// Multicast tasks.
    pub tasks: Vec<MulticastTask>,
    /// Fault plan applied to every task (empty by default).
    pub faults: FaultPlan,
}

/// Error produced when parsing a scenario file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseScenarioError {}

impl Scenario {
    /// Captures a topology and tasks into a scenario.
    ///
    /// # Example
    ///
    /// ```
    /// use gmp_net::{Topology, TopologyConfig};
    /// use gmp_sim::{MulticastTask, Scenario};
    /// let topo = Topology::random(&TopologyConfig::new(400.0, 50, 120.0), 3);
    /// let scenario = Scenario::capture(&topo, vec![MulticastTask::random(&topo, 5, 1)]);
    /// let reloaded = Scenario::from_text(&scenario.to_text()).unwrap();
    /// assert_eq!(reloaded, scenario);
    /// ```
    pub fn capture(topo: &Topology, tasks: Vec<MulticastTask>) -> Self {
        Scenario {
            area: topo.area(),
            radio_range: topo.radio_range(),
            positions: topo.positions(),
            tasks,
            faults: FaultPlan::none(),
        }
    }

    /// Replaces the scenario's fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Rebuilds the topology described by this scenario.
    pub fn topology(&self) -> Topology {
        Topology::from_positions(self.positions.clone(), self.area, self.radio_range)
    }

    /// Serializes to the scenario text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# gmp scenario v1");
        let _ = writeln!(
            out,
            "area {} {} {} {}",
            self.area.min.x, self.area.min.y, self.area.max.x, self.area.max.y
        );
        let _ = writeln!(out, "radio_range {}", self.radio_range);
        for (i, p) in self.positions.iter().enumerate() {
            let _ = writeln!(out, "node {} {} {}", i, p.x, p.y);
        }
        for t in &self.tasks {
            let dests: Vec<String> = t.dests.iter().map(|d| d.0.to_string()).collect();
            let _ = writeln!(out, "task {} {}", t.source.0, dests.join(" "));
        }
        if self.faults.node_failure_prob != 0.0 || self.faults.link_loss_prob != 0.0 {
            let _ = writeln!(
                out,
                "fault bernoulli {} {}",
                self.faults.node_failure_prob, self.faults.link_loss_prob
            );
        }
        for ev in &self.faults.events {
            match *ev {
                FaultEvent::Crash { node, at_s } => {
                    let _ = writeln!(out, "fault crash {} {}", node.0, at_s);
                }
                FaultEvent::Blackout {
                    region,
                    start_s,
                    end_s,
                } => match region {
                    FaultRegion::Disk { center, radius } => {
                        let _ = writeln!(
                            out,
                            "fault blackout disk {} {} {} {} {}",
                            center.x, center.y, radius, start_s, end_s
                        );
                    }
                    FaultRegion::Rect { min, max } => {
                        let _ = writeln!(
                            out,
                            "fault blackout rect {} {} {} {} {} {}",
                            min.x, min.y, max.x, max.y, start_s, end_s
                        );
                    }
                },
                FaultEvent::DutyCycle {
                    period_s,
                    on_fraction,
                } => {
                    let _ = writeln!(out, "fault duty {period_s} {on_fraction}");
                }
                FaultEvent::LinkChurn {
                    start_s,
                    end_s,
                    speed_mps,
                    pause_s,
                    seed,
                } => {
                    let _ = writeln!(
                        out,
                        "fault churn {} {} {} {} {} {} {}",
                        start_s, end_s, speed_mps.0, speed_mps.1, pause_s.0, pause_s.1, seed
                    );
                }
            }
        }
        out
    }

    /// Parses the scenario text format.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseScenarioError`] naming the offending line for any
    /// structural or numeric problem.
    pub fn from_text(text: &str) -> Result<Self, ParseScenarioError> {
        let err = |line: usize, message: &str| ParseScenarioError {
            line,
            message: message.to_string(),
        };
        let mut area = None;
        let mut radio_range = None;
        let mut positions: Vec<Point> = Vec::new();
        let mut tasks = Vec::new();
        let mut faults = FaultPlan::none();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().expect("non-empty line");
            let rest: Vec<&str> = parts.collect();
            match keyword {
                "area" => {
                    if rest.len() != 4 {
                        return Err(err(line_no, "area needs 4 coordinates"));
                    }
                    let v: Result<Vec<f64>, _> = rest.iter().map(|s| s.parse()).collect();
                    let v = v.map_err(|_| err(line_no, "bad area coordinate"))?;
                    area = Some(Aabb::new(Point::new(v[0], v[1]), Point::new(v[2], v[3])));
                }
                "radio_range" => {
                    if rest.len() != 1 {
                        return Err(err(line_no, "radio_range needs one value"));
                    }
                    let r: f64 = rest[0]
                        .parse()
                        .map_err(|_| err(line_no, "bad radio range"))?;
                    if r.is_nan() || r <= 0.0 {
                        return Err(err(line_no, "radio range must be positive"));
                    }
                    radio_range = Some(r);
                }
                "node" => {
                    if rest.len() != 3 {
                        return Err(err(line_no, "node needs id x y"));
                    }
                    let id: usize = rest[0].parse().map_err(|_| err(line_no, "bad node id"))?;
                    if id != positions.len() {
                        return Err(err(line_no, "node ids must be dense and in order"));
                    }
                    let x: f64 = rest[1].parse().map_err(|_| err(line_no, "bad x"))?;
                    let y: f64 = rest[2].parse().map_err(|_| err(line_no, "bad y"))?;
                    positions.push(Point::new(x, y));
                }
                "task" => {
                    if rest.len() < 2 {
                        return Err(err(line_no, "task needs a source and ≥1 destination"));
                    }
                    let ids: Result<Vec<u32>, _> = rest.iter().map(|s| s.parse()).collect();
                    let ids = ids.map_err(|_| err(line_no, "bad task node id"))?;
                    if ids.iter().any(|&i| i as usize >= positions.len()) {
                        return Err(err(line_no, "task references unknown node"));
                    }
                    let source = NodeId(ids[0]);
                    let dests: Vec<NodeId> = ids[1..].iter().map(|&i| NodeId(i)).collect();
                    let mut sorted = dests.clone();
                    sorted.sort();
                    sorted.dedup();
                    if sorted.len() != dests.len() || dests.contains(&source) {
                        return Err(err(
                            line_no,
                            "task destinations must be distinct non-sources",
                        ));
                    }
                    tasks.push(MulticastTask::new(source, dests));
                }
                "fault" => {
                    let parse_f64 = |s: &str, what: &str| -> Result<f64, ParseScenarioError> {
                        s.parse::<f64>()
                            .ok()
                            .filter(|v| !v.is_nan())
                            .ok_or_else(|| err(line_no, &format!("bad {what}")))
                    };
                    let kind = *rest
                        .first()
                        .ok_or_else(|| err(line_no, "fault needs a kind"))?;
                    let args = &rest[1..];
                    match kind {
                        "bernoulli" => {
                            if args.len() != 2 {
                                return Err(err(line_no, "fault bernoulli needs p_node p_link"));
                            }
                            let pn = parse_f64(args[0], "node failure probability")?;
                            let pl = parse_f64(args[1], "link loss probability")?;
                            if !(0.0..=1.0).contains(&pn) || !(0.0..=1.0).contains(&pl) {
                                return Err(err(line_no, "probability out of range"));
                            }
                            faults.node_failure_prob = pn;
                            faults.link_loss_prob = pl;
                        }
                        "crash" => {
                            if args.len() != 2 {
                                return Err(err(line_no, "fault crash needs node time"));
                            }
                            let node: u32 =
                                args[0].parse().map_err(|_| err(line_no, "bad node id"))?;
                            let at_s = parse_f64(args[1], "crash time")?;
                            if at_s < 0.0 {
                                return Err(err(line_no, "crash time must be non-negative"));
                            }
                            faults = faults.with_crash(NodeId(node), at_s);
                        }
                        "blackout" => {
                            let shape = *args
                                .first()
                                .ok_or_else(|| err(line_no, "blackout needs disk|rect"))?;
                            let nums: Result<Vec<f64>, _> = args[1..]
                                .iter()
                                .map(|s| parse_f64(s, "blackout number"))
                                .collect();
                            let nums = nums?;
                            let (region, start_s, end_s) = match (shape, nums.as_slice()) {
                                ("disk", [cx, cy, r, s, e]) => (
                                    FaultRegion::Disk {
                                        center: Point::new(*cx, *cy),
                                        radius: *r,
                                    },
                                    *s,
                                    *e,
                                ),
                                ("rect", [x0, y0, x1, y1, s, e]) => (
                                    FaultRegion::Rect {
                                        min: Point::new(*x0, *y0),
                                        max: Point::new(*x1, *y1),
                                    },
                                    *s,
                                    *e,
                                ),
                                _ => return Err(err(line_no, "malformed blackout")),
                            };
                            if !(start_s >= 0.0 && start_s < end_s) {
                                return Err(err(line_no, "bad blackout window"));
                            }
                            faults = faults.with_blackout(region, start_s, end_s);
                        }
                        "duty" => {
                            if args.len() != 2 {
                                return Err(err(line_no, "fault duty needs period on_fraction"));
                            }
                            let period_s = parse_f64(args[0], "duty period")?;
                            let on_fraction = parse_f64(args[1], "duty on-fraction")?;
                            if period_s <= 0.0 || !(on_fraction > 0.0 && on_fraction <= 1.0) {
                                return Err(err(line_no, "bad duty cycle"));
                            }
                            faults = faults.with_duty_cycle(period_s, on_fraction);
                        }
                        "churn" => {
                            if args.len() != 7 {
                                return Err(err(
                                    line_no,
                                    "fault churn needs start end smin smax pmin pmax seed",
                                ));
                            }
                            let nums: Result<Vec<f64>, _> = args[..6]
                                .iter()
                                .map(|s| parse_f64(s, "churn number"))
                                .collect();
                            let nums = nums?;
                            let seed: u64 = args[6]
                                .parse()
                                .map_err(|_| err(line_no, "bad churn seed"))?;
                            let (start_s, end_s) = (nums[0], nums[1]);
                            let speed = (nums[2], nums[3]);
                            let pause = (nums[4], nums[5]);
                            if !(start_s >= 0.0 && start_s < end_s && end_s.is_finite()) {
                                return Err(err(line_no, "bad churn window"));
                            }
                            if !(speed.0 > 0.0 && speed.0 <= speed.1) {
                                return Err(err(line_no, "bad speed range"));
                            }
                            if !(pause.0 >= 0.0 && pause.0 <= pause.1) {
                                return Err(err(line_no, "bad pause range"));
                            }
                            faults = faults.with_link_churn(start_s, end_s, speed, pause, seed);
                        }
                        other => {
                            return Err(err(line_no, &format!("unknown fault kind `{other}`")))
                        }
                    }
                }
                other => return Err(err(line_no, &format!("unknown keyword `{other}`"))),
            }
        }
        let area = area.ok_or_else(|| err(0, "missing `area` line"))?;
        let radio_range = radio_range.ok_or_else(|| err(0, "missing `radio_range` line"))?;
        if positions.is_empty() {
            return Err(err(0, "scenario has no nodes"));
        }
        Ok(Scenario {
            area,
            radio_range,
            positions,
            tasks,
            faults,
        })
    }

    /// Writes the scenario to a file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads a scenario from a file.
    ///
    /// # Errors
    ///
    /// Returns I/O errors or parse errors (boxed).
    pub fn load(path: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)?;
        Ok(Scenario::from_text(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_net::TopologyConfig;

    fn sample() -> Scenario {
        let topo = Topology::random(&TopologyConfig::new(500.0, 40, 120.0), 5);
        let tasks = vec![
            MulticastTask::random(&topo, 5, 1),
            MulticastTask::random(&topo, 8, 2),
        ];
        Scenario::capture(&topo, tasks)
    }

    #[test]
    fn text_round_trip_is_exact() {
        let s = sample();
        let parsed = Scenario::from_text(&s.to_text()).unwrap();
        assert_eq!(parsed, s);
        // Topology rebuilt from the scenario has identical adjacency.
        let t1 = s.topology();
        let t2 = parsed.topology();
        assert_eq!(t1.positions(), t2.positions());
        assert_eq!(t1.adjacency(), t2.adjacency());
    }

    #[test]
    fn file_round_trip() {
        let s = sample();
        let dir = std::env::temp_dir().join("gmp_scenario_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.txt");
        s.save(&path).unwrap();
        let loaded = Scenario::load(&path).unwrap();
        assert_eq!(loaded, s);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# hello\n\narea 0 0 100 100\n# mid comment\nradio_range 50\nnode 0 1 2\nnode 1 3 4\n\ntask 0 1\n";
        let s = Scenario::from_text(text).unwrap();
        assert_eq!(s.positions.len(), 2);
        assert_eq!(s.tasks.len(), 1);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let cases = [
            ("area 0 0 100\nradio_range 50\nnode 0 1 2\n", 1, "area"),
            (
                "area 0 0 100 100\nradio_range -5\nnode 0 1 2\n",
                2,
                "positive",
            ),
            ("area 0 0 100 100\nradio_range 50\nnode 1 1 2\n", 3, "dense"),
            (
                "area 0 0 100 100\nradio_range 50\nnode 0 1 2\ntask 0 5\n",
                4,
                "unknown node",
            ),
            (
                "area 0 0 100 100\nradio_range 50\nnode 0 1 2\nbogus 1\n",
                4,
                "keyword",
            ),
        ];
        for (text, line, needle) in cases {
            let e = Scenario::from_text(text).unwrap_err();
            assert_eq!(e.line, line, "case: {needle}");
            assert!(e.message.contains(needle), "{e}");
        }
    }

    #[test]
    fn missing_headers_are_rejected() {
        assert!(Scenario::from_text("node 0 1 2\n").is_err());
        assert!(Scenario::from_text("area 0 0 1 1\nradio_range 5\n").is_err());
    }

    #[test]
    fn fault_plan_round_trips_exactly() {
        let faults = FaultPlan::none()
            .with_node_failure_prob(0.05)
            .with_link_loss_prob(0.012_5)
            .with_crash(NodeId(7), 12.5)
            .with_blackout(
                FaultRegion::Disk {
                    center: Point::new(250.0, 250.0),
                    radius: 90.0,
                },
                10.0,
                f64::INFINITY,
            )
            .with_blackout(
                FaultRegion::Rect {
                    min: Point::new(0.0, 0.0),
                    max: Point::new(120.0, 80.0),
                },
                5.0,
                30.0,
            )
            .with_duty_cycle(10.0, 0.8)
            .with_link_churn(0.0, 60.0, (1.0, 5.0), (0.0, 2.0), 42);
        let s = sample().with_faults(faults);
        let text = s.to_text();
        assert!(text.contains("fault blackout disk 250 250 90 10 inf"));
        let parsed = Scenario::from_text(&text).unwrap();
        assert_eq!(parsed, s);
        // Fingerprints match, so the compiled-plan cache treats the
        // reloaded plan as the same plan.
        assert_eq!(parsed.faults.fingerprint(), s.faults.fingerprint());
    }

    #[test]
    fn fault_free_scenarios_emit_no_fault_lines() {
        let s = sample();
        assert!(!s.to_text().contains("fault"));
        assert_eq!(
            Scenario::from_text(&s.to_text()).unwrap().faults,
            FaultPlan::none()
        );
    }

    #[test]
    fn bad_fault_lines_are_rejected() {
        let base = "area 0 0 100 100\nradio_range 50\nnode 0 1 2\n";
        let cases = [
            ("fault bernoulli 1.5 0\n", "probability out of range"),
            ("fault crash 0 -1\n", "non-negative"),
            ("fault blackout disk 0 0 5 9 2\n", "bad blackout window"),
            ("fault blackout tri 0 0 5 0 1\n", "malformed blackout"),
            ("fault duty 0 0.5\n", "bad duty cycle"),
            ("fault churn 0 inf 1 2 0 1 3\n", "bad churn window"),
            ("fault churn 0 10 0 2 0 1 3\n", "bad speed range"),
            ("fault wat 1\n", "unknown fault kind"),
        ];
        for (line, needle) in cases {
            let e = Scenario::from_text(&format!("{base}{line}")).unwrap_err();
            assert_eq!(e.line, 4, "case: {needle}");
            assert!(e.message.contains(needle), "{e}");
        }
    }

    #[test]
    fn duplicate_task_destinations_are_rejected() {
        let text = "area 0 0 100 100\nradio_range 50\nnode 0 1 2\nnode 1 3 4\ntask 0 1 1\n";
        let e = Scenario::from_text(text).unwrap_err();
        assert!(e.message.contains("distinct"));
    }

    #[test]
    fn scenario_replay_reproduces_simulation_results() {
        // The whole point: a saved scenario re-runs identically.
        use crate::{SimConfig, TaskRunner};
        let s = sample();
        let text = s.to_text();
        let reloaded = Scenario::from_text(&text).unwrap();
        let config = SimConfig::paper()
            .with_area_side(500.0)
            .with_node_count(40)
            .with_radio_range(120.0);
        let t1 = s.topology();
        let t2 = reloaded.topology();
        struct Greedy;
        impl crate::Protocol for Greedy {
            fn name(&self) -> String {
                "greedy".into()
            }
            fn on_packet(
                &mut self,
                ctx: &crate::NodeContext<'_>,
                packet: crate::MulticastPacket,
                out: &mut Vec<crate::Forward>,
            ) {
                out.extend(packet.dests.iter().filter_map(|&d| {
                    let target = ctx.pos_of(d);
                    let here = ctx.pos().dist(target);
                    ctx.neighbors()
                        .iter()
                        .copied()
                        .filter(|&n| ctx.pos_of(n).dist(target) < here)
                        .min_by(|&a, &b| {
                            ctx.pos_of(a)
                                .dist(target)
                                .total_cmp(&ctx.pos_of(b).dist(target))
                        })
                        .map(|n| crate::Forward {
                            next_hop: n,
                            packet: packet.split(vec![d], Default::default()),
                        })
                }))
            }
        }
        for task in &s.tasks {
            let r1 = TaskRunner::new(&t1, &config).run(&mut Greedy, task);
            let r2 = TaskRunner::new(&t2, &config).run(&mut Greedy, task);
            assert_eq!(r1, r2);
        }
    }
}
