//! Property tests shared by all baselines: forwarding decisions must
//! partition the destination set (no destination duplicated or dropped
//! silently except by documented void behaviour), and next hops must be
//! real neighbors.

use gmp_baselines::{DsmRouter, GrdRouter, LgkRouter, LgsRouter, PbmRouter, SmtRouter};
use gmp_net::{NodeId, Topology};
use gmp_sim::{MulticastPacket, MulticastTask, NodeContext, Protocol, SimConfig};
use proptest::prelude::*;

fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(PbmRouter::with_lambda(0.0)),
        Box::new(PbmRouter::with_lambda(0.3)),
        Box::new(PbmRouter::with_lambda(0.6)),
        Box::new(LgsRouter::new()),
        Box::new(LgkRouter::new(2)),
        Box::new(LgkRouter::new(3)),
        Box::new(GrdRouter::new()),
        Box::new(DsmRouter::new()),
        Box::new(SmtRouter::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn source_decisions_partition_the_destinations(
        nodes in 200usize..450,
        seed in 0u64..300,
        k in 2usize..12,
    ) {
        let config = SimConfig::paper().with_node_count(nodes);
        let topo = Topology::random(&config.topology_config(), seed);
        let task = MulticastTask::random(&topo, k, seed + 1);
        let ctx = NodeContext {
            topo: &topo,
            node: task.source,
            config: &config,
            alive: None,
        };
        for mut proto in protocols() {
            proto.on_task_start(&ctx, task.source, &task.dests);
            let packet = MulticastPacket::new(0, task.source, task.dests.clone());
            let forwards = proto.route(&ctx, packet);
            // Collect all destinations across emitted copies.
            let mut all: Vec<NodeId> = forwards
                .iter()
                .flat_map(|f| f.packet.dests.iter().copied())
                .collect();
            all.sort();
            let n_with_dups = all.len();
            all.dedup();
            prop_assert_eq!(
                all.len(),
                n_with_dups,
                "{} duplicated a destination across copies",
                proto.name()
            );
            // Every routed destination is one of the task's.
            for d in &all {
                prop_assert!(task.dests.contains(d), "{} invented {d}", proto.name());
            }
            // Every next hop is a genuine neighbor of the source.
            for f in &forwards {
                prop_assert!(
                    topo.neighbors(task.source).contains(&f.next_hop),
                    "{} picked a non-neighbor",
                    proto.name()
                );
                prop_assert!(!f.packet.dests.is_empty(), "{} sent an empty copy", proto.name());
            }
        }
    }
}
