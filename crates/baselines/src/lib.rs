//! The comparison protocols from the paper's evaluation (Section 5).
//!
//! * [`pbm::PbmRouter`] — Position Based Multicasting \[21\]: per hop,
//!   chooses the neighbor subset minimizing a λ-weighted tradeoff between
//!   bandwidth (subset size) and progress (remaining distance); void
//!   destinations immediately enter perimeter mode.
//! * [`lgs::LgsRouter`] — Location-Guided Steiner tree \[5\]: partitions
//!   destinations with an MST over `{current node} ∪ destinations` and
//!   unicasts each group toward its subtree-root destination; has no void
//!   recovery (the paper's Fig. 15 exploits exactly that).
//! * [`lgk::LgkRouter`] — Location-Guided K-ary tree \[5\]: the sibling LGT
//!   scheme; picks the `k` nearest destinations as subtree roots.
//! * [`grd::GrdRouter`] — independent greedy (GPSR) unicast per
//!   destination: minimizes per-destination hops, serving as the paper's
//!   lower bound in Fig. 12.
//! * [`dsm::DsmRouter`] — Dynamic Source Multicast \[6\]: the source
//!   freezes a Euclidean MST over the members and embeds it in the packet
//!   (related-work baseline, Section 1).
//! * [`smt::SmtRouter`] — the centralized Steiner heuristic \[16\]: the
//!   source knows the whole topology, computes a KMB tree, and embeds the
//!   explicit routing tree in the packet.
//! * [`mcfr::McfrRouter`] — concurrent face routing multicast
//!   (arXiv:1706.05263): guaranteed delivery via racing left/right FACE-1
//!   traversals per stalled destination.
//! * [`gvg::GvgRouter`] — greedy multicast with GVG-style void traversal
//!   (arXiv:0803.3632): guaranteed delivery via a single FACE-1 agent.
//!
//! All of them implement [`gmp_sim::Protocol`], so experiments treat them
//! and GMP uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dsm;
pub(crate) mod facecore;
pub mod grd;
pub mod gvg;
pub mod lgk;
pub mod lgs;
pub mod mcfr;
pub mod pbm;
pub mod smt;
pub(crate) mod util;

pub use dsm::DsmRouter;
pub use grd::GrdRouter;
pub use gvg::GvgRouter;
pub use lgk::LgkRouter;
pub use lgs::LgsRouter;
pub use mcfr::McfrRouter;
pub use pbm::{PbmConfig, PbmRouter};
pub use smt::SmtRouter;
