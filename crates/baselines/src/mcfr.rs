//! MCFR: concurrent face routing multicast (arXiv:1706.05263).
//!
//! MCFR extends greedy geographic multicast with *concurrent* face
//! routing: when a destination stalls at a greedy local minimum, the node
//! launches two FACE-1 traversals at once — one counterclockwise, one
//! clockwise — so the packet races the short way around the void against
//! the long way instead of committing to one orientation. Whichever agent
//! first reaches a node strictly closer than the stall point is promoted
//! back to greedy (keeping its orientation, so a later stall re-enters
//! face mode without fanning out again). The payoff is bounded
//! worst-case detours at the cost of duplicate transmissions; the
//! guarantee — zero unjustified failures on connected topologies — is
//! machine-checked by the certificate proptests in `gmp-bench`.

use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol};

use crate::facecore::FaceMulticast;

/// Concurrent face routing multicast.
#[derive(Debug)]
pub struct McfrRouter {
    core: FaceMulticast,
}

impl McfrRouter {
    /// Creates the router.
    pub fn new() -> Self {
        McfrRouter {
            core: FaceMulticast::new(true),
        }
    }
}

impl Default for McfrRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for McfrRouter {
    fn name(&self) -> String {
        "MCFR".into()
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        self.core.on_packet(ctx, packet, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_net::topology::{Hole, Topology, TopologyConfig};
    use gmp_net::NodeId;
    use gmp_sim::{FaultPlan, MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut McfrRouter::new(), &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn recovers_around_voids_with_concurrent_agents() {
        let tconfig = TopologyConfig::new(800.0, 450, 150.0).with_hole(Hole::Circle {
            center: gmp_geom::Point::new(400.0, 400.0),
            radius: 200.0,
        });
        let topo = Topology::random(&tconfig, 3);
        assert!(topo.is_connected());
        let config = SimConfig::paper()
            .with_area_side(800.0)
            .with_node_count(450)
            .with_max_path_hops(2000);
        let near = |p: gmp_geom::Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(gmp_geom::Point::new(50.0, 400.0));
        let dest = near(gmp_geom::Point::new(750.0, 400.0));
        assert_ne!(source, dest);
        let task = MulticastTask::new(source, vec![dest]);
        let report = TaskRunner::new(&topo, &config).run(&mut McfrRouter::new(), &task);
        assert!(report.delivered_all(), "{:?}", report.failed_dests);
        assert!(!report.truncated);
    }

    #[test]
    fn unreachable_island_fails_without_truncation() {
        let mut positions: Vec<gmp_geom::Point> = (0..20)
            .map(|i| gmp_geom::Point::new((i % 5) as f64 * 100.0, (i / 5) as f64 * 100.0))
            .collect();
        positions.push(gmp_geom::Point::new(3000.0, 3000.0));
        let topo = Topology::from_positions(positions, gmp_geom::Aabb::square(4000.0), 150.0);
        let config = SimConfig::paper().with_node_count(21);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(20)]);
        let report = TaskRunner::new(&topo, &config).run(&mut McfrRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                NodeId(20),
                gmp_sim::FailureCause::Disconnected
            )]
        );
        assert!(!report.truncated);
    }

    #[test]
    fn zero_unjustified_failures_under_crashes() {
        let config = SimConfig::paper()
            .with_node_count(400)
            .with_max_path_hops(4000);
        let topo = Topology::random(&config.topology_config(), 11);
        for seed in 0..4u64 {
            let plan = FaultPlan::random_crashes(topo.len(), 0.15, 0.0, 900 + seed);
            let config = config.clone().with_faults(plan);
            let task = MulticastTask::random(&topo, 8, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut McfrRouter::new(), &task);
            assert_eq!(
                report.unjustified_failures().count(),
                0,
                "seed {seed}: {:?}",
                report.failed_dests
            );
            assert!(!report.truncated, "seed {seed} hit the event/hop budget");
        }
    }
}
