//! Shared greedy-forwarding helpers.

use gmp_geom::Point;
use gmp_net::{NodeId, Topology};

/// The neighbor of `node` strictly closer to `target` than `node` itself,
/// minimizing the remaining distance (plain greedy geographic forwarding).
pub fn greedy_next_hop(topo: &Topology, node: NodeId, target: Point) -> Option<NodeId> {
    let own = topo.pos(node).dist_sq(target);
    topo.neighbors(node)
        .iter()
        .copied()
        .filter(|&n| topo.pos(n).dist_sq(target) < own)
        .min_by(|&a, &b| {
            topo.pos(a)
                .dist_sq(target)
                .total_cmp(&topo.pos(b).dist_sq(target))
        })
}

/// [`greedy_next_hop`] restricted to neighbors the liveness mask reports
/// alive; identical to the unfiltered version when `alive` is `None`.
/// The guaranteed-delivery protocols (MCFR/GVG) must not greedily hand a
/// packet to a node they can observe is dead.
pub fn live_greedy_next_hop(
    topo: &Topology,
    node: NodeId,
    target: Point,
    alive: Option<&[bool]>,
) -> Option<NodeId> {
    let own = topo.pos(node).dist_sq(target);
    topo.neighbors(node)
        .iter()
        .copied()
        .filter(|&n| alive.is_none_or(|a| a[n.index()]))
        .filter(|&n| topo.pos(n).dist_sq(target) < own)
        .min_by(|&a, &b| {
            topo.pos(a)
                .dist_sq(target)
                .total_cmp(&topo.pos(b).dist_sq(target))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;

    #[test]
    fn greedy_picks_strictly_closer_minimum() {
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(-10.0, 0.0),
                Point::new(8.0, 4.0),
            ],
            Aabb::square(100.0),
            20.0,
        );
        let target = Point::new(50.0, 0.0);
        assert_eq!(greedy_next_hop(&topo, NodeId(0), target), Some(NodeId(1)));
        // Target behind every neighbor: none qualifies.
        assert_eq!(
            greedy_next_hop(&topo, NodeId(1), Point::new(11.0, 0.0)),
            None
        );
    }

    #[test]
    fn live_greedy_skips_dead_neighbors() {
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(8.0, 4.0),
            ],
            Aabb::square(100.0),
            20.0,
        );
        let target = Point::new(50.0, 0.0);
        assert_eq!(
            live_greedy_next_hop(&topo, NodeId(0), target, None),
            Some(NodeId(1))
        );
        let alive = [true, true, true];
        assert_eq!(
            live_greedy_next_hop(&topo, NodeId(0), target, Some(&alive)),
            Some(NodeId(1))
        );
        let alive = [true, false, true];
        assert_eq!(
            live_greedy_next_hop(&topo, NodeId(0), target, Some(&alive)),
            Some(NodeId(2))
        );
        let alive = [true, false, false];
        assert_eq!(
            live_greedy_next_hop(&topo, NodeId(0), target, Some(&alive)),
            None
        );
    }
}
