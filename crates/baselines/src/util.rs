//! Shared greedy-forwarding helpers.

use gmp_geom::Point;
use gmp_net::{NodeId, Topology};

/// The neighbor of `node` strictly closer to `target` than `node` itself,
/// minimizing the remaining distance (plain greedy geographic forwarding).
pub fn greedy_next_hop(topo: &Topology, node: NodeId, target: Point) -> Option<NodeId> {
    let own = topo.pos(node).dist_sq(target);
    topo.neighbors(node)
        .iter()
        .copied()
        .filter(|&n| topo.pos(n).dist_sq(target) < own)
        .min_by(|&a, &b| {
            topo.pos(a)
                .dist_sq(target)
                .total_cmp(&topo.pos(b).dist_sq(target))
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;

    #[test]
    fn greedy_picks_strictly_closer_minimum() {
        let topo = Topology::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(-10.0, 0.0),
                Point::new(8.0, 4.0),
            ],
            Aabb::square(100.0),
            20.0,
        );
        let target = Point::new(50.0, 0.0);
        assert_eq!(greedy_next_hop(&topo, NodeId(0), target), Some(NodeId(1)));
        // Target behind every neighbor: none qualifies.
        assert_eq!(
            greedy_next_hop(&topo, NodeId(1), Point::new(11.0, 0.0)),
            None
        );
    }
}
