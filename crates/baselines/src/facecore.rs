//! Shared engine for the guaranteed-delivery protocols (MCFR and GVG).
//!
//! Both protocols follow the greedy-face-greedy discipline on the live
//! planar subgraph ([`gmp_net::traversal`]):
//!
//! * **Greedy multicast**: destinations are forwarded greedily, grouped by
//!   next hop so shared path prefixes cost one transmission.
//! * **Stall → face agent(s)**: at a greedy local minimum the destination
//!   splits into per-destination FACE-1 agents — one counterclockwise walk
//!   for GVG, a concurrent counterclockwise *and* clockwise pair for MCFR
//!   (racing the short way around the void against the long way, per
//!   arXiv:1706.05263).
//! * **Best-progress promotion**: an agent reaching a node strictly closer
//!   to its destination than the stall point resumes greedy forwarding,
//!   but *keeps its direction lineage* — a re-stalled agent restarts a
//!   walk only in its own direction, so MCFR never exceeds two agents per
//!   destination.
//!
//! A full face scan with no crossing strictly closer than the anchor
//! proves the destination unreachable from this component, so the agent
//! gives up; the delivery-guarantee oracle then classifies the failure as
//! justified (`Disconnected`/`DestDead`). The guarantee-certificate
//! proptests in `gmp-bench` hold both protocols to *zero unjustified*
//! failures on any connected topology under crash/blackout plans.

use gmp_net::traversal::{FaceDir, FaceScratch, FaceWalk};
use gmp_net::NodeId;
use gmp_sim::{Forward, MulticastPacket, NodeContext, RoutingState};

use crate::util::live_greedy_next_hop;

/// The directions a stalled destination fans out into.
const CONCURRENT: &[FaceDir] = &[FaceDir::Ccw, FaceDir::Cw];
const SINGLE: &[FaceDir] = &[FaceDir::Ccw];

/// Greedy-face-greedy multicast core, parameterized by the number of
/// concurrent face agents spawned per stalled destination.
#[derive(Debug)]
pub(crate) struct FaceMulticast {
    dirs: &'static [FaceDir],
    scratch: FaceScratch,
}

impl FaceMulticast {
    pub(crate) fn new(concurrent: bool) -> Self {
        FaceMulticast {
            dirs: if concurrent { CONCURRENT } else { SINGLE },
            scratch: FaceScratch::new(),
        }
    }

    pub(crate) fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        match &packet.state {
            RoutingState::Face { dir, walk } => self.face_agent(ctx, &packet, *dir, *walk, out),
            _ => self.spread(ctx, &packet, out),
        }
    }

    /// Greedy multicast: group destinations by their greedy next hop
    /// (order-preserving, so decisions are deterministic) and fan stalled
    /// destinations out into face agents.
    fn spread(&mut self, ctx: &NodeContext<'_>, packet: &MulticastPacket, out: &mut Vec<Forward>) {
        let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &d in packet.dests.iter() {
            if let Some(hop) = self.unicast_hop(ctx, d) {
                match groups.iter_mut().find(|(h, _)| *h == hop) {
                    Some((_, ds)) => ds.push(d),
                    None => groups.push((hop, vec![d])),
                }
            } else {
                self.enter_face(ctx, packet, d, out);
            }
        }
        for (hop, ds) in groups {
            out.push(Forward {
                next_hop: hop,
                packet: packet.split(ds, RoutingState::Greedy),
            });
        }
    }

    /// Direct delivery to a live neighbor, else the live greedy next hop.
    fn unicast_hop(&self, ctx: &NodeContext<'_>, d: NodeId) -> Option<NodeId> {
        if ctx.is_alive(d) && ctx.neighbors().binary_search(&d).is_ok() {
            return Some(d);
        }
        live_greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(d), ctx.alive)
    }

    /// Spawns this protocol's face agents for a stalled destination.
    fn enter_face(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: &MulticastPacket,
        d: NodeId,
        out: &mut Vec<Forward>,
    ) {
        let target = ctx.pos_of(d);
        for &dir in self.dirs {
            if let Some((next_hop, walk)) = FaceWalk::begin(
                ctx.topo,
                ctx.planar_kind(),
                ctx.alive,
                dir,
                ctx.node,
                target,
                &mut self.scratch,
            ) {
                out.push(Forward {
                    next_hop,
                    packet: packet.split(
                        vec![d],
                        RoutingState::Face {
                            dir,
                            walk: Some(walk),
                        },
                    ),
                });
            }
            // No live planar neighbor: this component is a dead end, and
            // the oracle will classify the failure as justified.
        }
    }

    /// One step of a single-destination face agent.
    fn face_agent(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: &MulticastPacket,
        dir: FaceDir,
        walk: Option<FaceWalk>,
        out: &mut Vec<Forward>,
    ) {
        let Some(&d) = packet.dests.first() else {
            return; // stale duplicate: its destination was already served
        };
        let target = ctx.pos_of(d);
        // Delivery shortcut: the destination is a live radio neighbor.
        if ctx.is_alive(d) && ctx.neighbors().binary_search(&d).is_ok() {
            out.push(Forward {
                next_hop: d,
                packet: packet.split(vec![d], RoutingState::Face { dir, walk: None }),
            });
            return;
        }
        if let Some(mut w) = walk {
            if !w.promotes(ctx.pos(), target) {
                // Still behind the stall point: continue the FACE-1 walk.
                // An Err here means the scan found no closer crossing:
                // provably unreachable, so the agent dies silently.
                if let Ok(next_hop) = w.next(
                    ctx.topo,
                    ctx.planar_kind(),
                    ctx.alive,
                    dir,
                    ctx.node,
                    target,
                    &mut self.scratch,
                ) {
                    out.push(Forward {
                        next_hop,
                        packet: packet.split(vec![d], RoutingState::Face { dir, walk: Some(w) }),
                    });
                }
                return;
            }
            // Strict progress past the stall point: promote to greedy,
            // keeping the direction lineage.
        }
        match live_greedy_next_hop(ctx.topo, ctx.node, target, ctx.alive) {
            Some(next_hop) => out.push(Forward {
                next_hop,
                packet: packet.split(vec![d], RoutingState::Face { dir, walk: None }),
            }),
            // Re-stalled: restart a walk in this agent's own direction.
            None => {
                if let Some((next_hop, w)) = FaceWalk::begin(
                    ctx.topo,
                    ctx.planar_kind(),
                    ctx.alive,
                    dir,
                    ctx.node,
                    target,
                    &mut self.scratch,
                ) {
                    out.push(Forward {
                        next_hop,
                        packet: packet.split(vec![d], RoutingState::Face { dir, walk: Some(w) }),
                    });
                }
            }
        }
    }
}
