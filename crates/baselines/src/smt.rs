//! SMT: the centralized Steiner-tree baseline \[16\].
//!
//! "This centralized algorithm assumes that the source node knows the
//! positions of all sensor nodes in the network; thus the source node can
//! calculate a close to optimal Steiner tree connecting itself and all
//! destinations. The source node forwards a copy of the data packet with
//! the routing information embedded in the packet." (Section 5.)
//!
//! The tree is computed with the Kou–Markowsky–Berman heuristic over the
//! unit-disk graph with hop weights (each transmission costs 1), and the
//! explicit child map travels inside the packet
//! ([`RoutingState::SourceTree`]). Destinations disconnected from the
//! source are simply never reached — centralized knowledge does not
//! repair partitions.

use std::collections::HashMap;
use std::sync::Arc;

use gmp_net::NodeId;
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};
use gmp_steiner::kmb::kmb;

/// The centralized source-routing baseline.
#[derive(Debug, Clone, Default)]
pub struct SmtRouter {
    tree: Option<Arc<HashMap<NodeId, Vec<NodeId>>>>,
}

impl SmtRouter {
    /// Creates the router. The routing tree is computed per task in
    /// [`Protocol::on_task_start`].
    pub fn new() -> Self {
        SmtRouter { tree: None }
    }

    /// Destinations of `packet` lying in the subtree rooted at `child`.
    fn dests_below(
        tree: &HashMap<NodeId, Vec<NodeId>>,
        child: NodeId,
        dests: &[NodeId],
    ) -> Vec<NodeId> {
        let mut found = Vec::new();
        let mut stack = vec![child];
        while let Some(v) = stack.pop() {
            if dests.contains(&v) {
                found.push(v);
            }
            if let Some(cs) = tree.get(&v) {
                stack.extend_from_slice(cs);
            }
        }
        found.sort();
        found
    }
}

impl Protocol for SmtRouter {
    fn name(&self) -> String {
        "SMT".into()
    }

    fn on_task_start(&mut self, ctx: &NodeContext<'_>, source: NodeId, dests: &[NodeId]) {
        // Unit-disk graph with hop weights.
        let graph: Vec<Vec<(u32, f64)>> = (0..ctx.topo.len())
            .map(|i| {
                ctx.topo
                    .neighbors(NodeId(i as u32))
                    .iter()
                    .map(|n| (n.0, 1.0))
                    .collect()
            })
            .collect();
        let mut terminals: Vec<u32> = vec![source.0];
        terminals.extend(dests.iter().map(|d| d.0));
        // Drop terminals unreachable from the source so the rest still get
        // a tree.
        let reachable = {
            let mut seen = vec![false; ctx.topo.len()];
            let mut q = std::collections::VecDeque::from([source]);
            seen[source.index()] = true;
            while let Some(u) = q.pop_front() {
                for &v in ctx.topo.neighbors(u) {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        q.push_back(v);
                    }
                }
            }
            seen
        };
        terminals.retain(|&t| reachable[t as usize]);
        self.tree = kmb(&graph, &terminals).map(|t| {
            // Vertex-indexed children lists; only reached vertices carry a
            // (possibly empty) entry in the packet-embedded map.
            let to_nodes = |v: &[u32]| -> Vec<NodeId> { v.iter().copied().map(NodeId).collect() };
            let children = t.rooted_children(source.0, graph.len());
            let mut rooted = HashMap::new();
            rooted.insert(source, to_nodes(&children[source.index()]));
            for ch in &children {
                for &v in ch {
                    rooted.insert(NodeId(v), to_nodes(&children[v as usize]));
                }
            }
            Arc::new(rooted)
        });
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        let tree: Arc<HashMap<NodeId, Vec<NodeId>>> = match &packet.state {
            RoutingState::SourceTree(t) => Arc::clone(t),
            _ => match &self.tree {
                Some(t) => Arc::clone(t),
                None => return, // no tree: all terminals stranded
            },
        };
        let children = match tree.get(&ctx.node) {
            Some(c) => c.clone(),
            None => return,
        };
        out.extend(children.into_iter().filter_map(|c| {
            let below = Self::dests_below(&tree, c, &packet.dests);
            if below.is_empty() {
                return None;
            }
            Some(Forward {
                next_hop: c,
                packet: packet.split(below, RoutingState::SourceTree(Arc::clone(&tree))),
            })
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::{Aabb, Point};
    use gmp_net::Topology;
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut SmtRouter::new(), &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn transmissions_equal_tree_edges() {
        // On a line, the KMB tree to the far end is the line itself:
        // exactly n−1 transmissions, no duplicates.
        let positions = (0..6).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(6);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(3), NodeId(5)]);
        let report = TaskRunner::new(&topo, &config).run(&mut SmtRouter::new(), &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 5);
        assert_eq!(report.delivery_hops[&NodeId(3)], 3);
        assert_eq!(report.delivery_hops[&NodeId(5)], 5);
    }

    #[test]
    fn shares_trunk_for_clustered_destinations() {
        let config = SimConfig::paper().with_node_count(600);
        let topo = Topology::random(&config.topology_config(), 8);
        let near = |p: Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(Point::new(50.0, 50.0));
        let mut dests: Vec<NodeId> = [
            Point::new(900.0, 900.0),
            Point::new(950.0, 850.0),
            Point::new(850.0, 950.0),
        ]
        .iter()
        .map(|&p| near(p))
        .filter(|&d| d != source)
        .collect();
        dests.sort();
        dests.dedup();
        let task = MulticastTask::new(source, dests.clone());
        let report = TaskRunner::new(&topo, &config).run(&mut SmtRouter::new(), &task);
        assert!(report.delivered_all());
        // Far fewer than independent unicasts (~10 hops each).
        assert!(report.transmissions < dests.len() * 10);
    }

    #[test]
    fn partitioned_destination_fails_gracefully() {
        let mut positions: Vec<Point> =
            (0..10).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        positions.push(Point::new(5000.0, 5000.0)); // island
        let topo = Topology::from_positions(positions, Aabb::square(6000.0), 150.0);
        let config = SimConfig::paper().with_node_count(11);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(5), NodeId(10)]);
        let report = TaskRunner::new(&topo, &config).run(&mut SmtRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                NodeId(10),
                gmp_sim::FailureCause::Disconnected
            )]
        );
        assert!(report.delivery_hops.contains_key(&NodeId(5)));
    }
}
