//! DSM: Dynamic Source Multicast \[6\] (related-work baseline).
//!
//! "In source-routing based schemes (such as Dynamic Source Multicast,
//! DSM), the entire multicast tree is created by the source node in
//! advance and included in the packet. In DSM, a minimum spanning tree
//! based heuristic is used to create this routing graph. Each receiving
//! node on this path decodes the multicast tree information and routes
//! the packet to the next nodes as decided by the source." (Section 1.)
//!
//! Unlike the centralized SMT baseline, DSM's source knows only the
//! *member* locations (which geographic multicast assumes anyway), not
//! the whole topology: it builds a Euclidean MST over `{source} ∪
//! destinations`, embeds that logical tree in the packet, and each tree
//! edge is realized as a greedy geographic unicast leg. Because the tree
//! is frozen at the source, DSM cannot adapt to what intermediate nodes
//! see — exactly the rigidity LGT/GMP were designed to remove.

use std::collections::HashMap;
use std::sync::Arc;

use gmp_net::NodeId;
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};
use gmp_steiner::mst::euclidean_mst;

use crate::util::greedy_next_hop;

/// The DSM router.
#[derive(Debug, Clone, Default)]
pub struct DsmRouter {
    /// The frozen logical tree for the current task: children lists over
    /// {source} ∪ destinations.
    tree: Option<Arc<HashMap<NodeId, Vec<NodeId>>>>,
}

impl DsmRouter {
    /// Creates the router; the tree is computed per task.
    pub fn new() -> Self {
        DsmRouter::default()
    }

    /// Emits one unicast leg per logical child of `node`, carrying the
    /// destinations in that child's logical subtree.
    fn fan_out(
        &self,
        ctx: &NodeContext<'_>,
        packet: &MulticastPacket,
        tree: &Arc<HashMap<NodeId, Vec<NodeId>>>,
        node: NodeId,
    ) -> Vec<Forward> {
        let children = match tree.get(&node) {
            Some(c) => c.clone(),
            None => return Vec::new(),
        };
        children
            .into_iter()
            .filter_map(|child| {
                // Destinations below this child in the logical tree.
                let mut below = Vec::new();
                let mut stack = vec![child];
                while let Some(v) = stack.pop() {
                    if packet.dests.contains(&v) {
                        below.push(v);
                    }
                    if let Some(cs) = tree.get(&v) {
                        stack.extend_from_slice(cs);
                    }
                }
                if below.is_empty() {
                    return None;
                }
                below.sort();
                greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(child)).map(|n| Forward {
                    next_hop: n,
                    packet: packet.split(below, RoutingState::UnicastLeg { target: child }),
                })
            })
            .collect()
    }
}

impl Protocol for DsmRouter {
    fn name(&self) -> String {
        "DSM".into()
    }

    fn on_task_start(&mut self, ctx: &NodeContext<'_>, source: NodeId, dests: &[NodeId]) {
        // Euclidean MST over {source} ∪ destinations, frozen for the task.
        let mut ids = vec![source];
        ids.extend_from_slice(dests);
        let points: Vec<gmp_geom::Point> = ids.iter().map(|&d| ctx.pos_of(d)).collect();
        let mst = euclidean_mst(&points);
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (i, parent) in mst.parent.iter().enumerate() {
            children.entry(ids[i]).or_default();
            if let Some(p) = parent {
                children.entry(ids[*p]).or_default().push(ids[i]);
            }
        }
        self.tree = Some(Arc::new(children));
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        let tree = match &self.tree {
            Some(t) => Arc::clone(t),
            None => return,
        };
        match packet.state {
            // Mid-leg relay: keep pushing toward the leg target.
            RoutingState::UnicastLeg { target } if target != ctx.node => {
                // Frozen tree, no recovery on voids.
                if let Some(n) = greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(target)) {
                    out.push(Forward {
                        next_hop: n,
                        packet: packet.clone(),
                    });
                }
            }
            // At a tree vertex (the source, or a leg target): fan out to
            // the frozen children.
            _ => out.extend(self.fan_out(ctx, &packet, &tree, ctx.node)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::{Aabb, Point};
    use gmp_net::Topology;
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut DsmRouter::new(), &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn follows_the_frozen_mst_chain() {
        // Destinations in a line: DSM's MST chains them like LGS, but the
        // chain is fixed at the source instead of recomputed.
        let positions = (0..5).map(|i| Point::new(i as f64 * 140.0, 0.0)).collect();
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(5);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        let report = TaskRunner::new(&topo, &config).run(&mut DsmRouter::new(), &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 4);
        for i in 1..=4u32 {
            assert_eq!(report.delivery_hops[&NodeId(i)], i);
        }
    }

    #[test]
    fn splits_at_the_source_for_opposite_clusters() {
        let positions = vec![
            Point::new(500.0, 500.0), // source
            Point::new(400.0, 500.0), // left relay
            Point::new(600.0, 500.0), // right relay
            Point::new(260.0, 500.0), // left dest
            Point::new(740.0, 500.0), // right dest
        ];
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(5);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(3), NodeId(4)]);
        let report = TaskRunner::new(&topo, &config).run(&mut DsmRouter::new(), &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 4);
        assert_eq!(report.delivery_hops[&NodeId(3)], 2);
        assert_eq!(report.delivery_hops[&NodeId(4)], 2);
    }

    #[test]
    fn fails_on_voids_like_other_frozen_schemes() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(120.0, 0.0),
            Point::new(700.0, 0.0),
        ];
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(3);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(2)]);
        let report = TaskRunner::new(&topo, &config).run(&mut DsmRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                NodeId(2),
                gmp_sim::FailureCause::Disconnected
            )]
        );
    }
}
