//! GRD: independent greedy (GPSR) unicast per destination.
//!
//! "GRD … corresponds to the extreme case, where packets are independently
//! routed for each destination. This algorithm explicitly minimizes the
//! per-destination hop count and serves well as a lower-bound for the
//! average number of hops for each destination" (Section 5). Each copy is
//! a full GPSR unicast: greedy forwarding with perimeter-mode recovery.

use gmp_net::face::perimeter_next_hop;
use gmp_net::PerimeterState;
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};

use crate::util::greedy_next_hop;

/// Independent greedy unicast per destination (GPSR).
#[derive(Debug, Clone, Copy, Default)]
pub struct GrdRouter;

impl GrdRouter {
    /// Creates the router.
    pub fn new() -> Self {
        GrdRouter
    }

    fn route_single(&self, ctx: &NodeContext<'_>, packet: MulticastPacket) -> Option<Forward> {
        let dest = packet.dests[0];
        let target = ctx.pos_of(dest);
        // Perimeter recovery exit: resume greedy once we are closer to the
        // destination than the point where the packet entered the mode.
        let mut perimeter = match packet.state {
            RoutingState::Perimeter(p) if !p.closer_than_entry(ctx.pos()) => Some(p),
            _ => None,
        };
        let next_hop = if perimeter.is_none() {
            match greedy_next_hop(ctx.topo, ctx.node, target) {
                Some(n) => {
                    return Some(Forward {
                        next_hop: n,
                        packet: packet.split(vec![dest], RoutingState::Greedy),
                    })
                }
                None => {
                    let mut state = PerimeterState::enter(ctx.pos(), target);
                    let n = perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, &mut state)
                        .ok()?;
                    perimeter = Some(state);
                    n
                }
            }
        } else {
            let state = perimeter.as_mut()?;
            perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, state).ok()?
        };
        Some(Forward {
            next_hop,
            packet: packet.split(vec![dest], RoutingState::Perimeter(perimeter?)),
        })
    }
}

impl Protocol for GrdRouter {
    fn name(&self) -> String {
        "GRD".into()
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        if packet.dests.len() > 1 {
            // Fan out one independent unicast per destination.
            out.extend(packet.dests.iter().filter_map(|&d| {
                self.route_single(ctx, packet.split(vec![d], RoutingState::Greedy))
            }));
            return;
        }
        out.extend(self.route_single(ctx, packet));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_net::topology::{Hole, Topology, TopologyConfig};
    use gmp_net::NodeId;
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut GrdRouter::new(), &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn transmissions_scale_with_destination_count() {
        // GRD shares nothing: doubling destinations roughly doubles hops.
        let config = SimConfig::paper().with_node_count(600);
        let topo = Topology::random(&config.topology_config(), 7);
        let t5 = MulticastTask::random(&topo, 5, 1);
        let t20 = MulticastTask::random(&topo, 20, 1);
        let r5 = TaskRunner::new(&topo, &config).run(&mut GrdRouter::new(), &t5);
        let r20 = TaskRunner::new(&topo, &config).run(&mut GrdRouter::new(), &t20);
        assert!(r20.transmissions as f64 > 2.0 * r5.transmissions as f64);
    }

    #[test]
    fn recovers_around_voids() {
        let tconfig = TopologyConfig::new(800.0, 450, 150.0).with_hole(Hole::Circle {
            center: gmp_geom::Point::new(400.0, 400.0),
            radius: 200.0,
        });
        let topo = Topology::random(&tconfig, 3);
        assert!(topo.is_connected());
        let config = SimConfig::paper()
            .with_area_side(800.0)
            .with_node_count(450);
        let near = |p: gmp_geom::Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(gmp_geom::Point::new(50.0, 400.0));
        let dest = near(gmp_geom::Point::new(750.0, 400.0));
        assert_ne!(source, dest);
        let task = MulticastTask::new(source, vec![dest]);
        let report = TaskRunner::new(&topo, &config).run(&mut GrdRouter::new(), &task);
        assert!(report.delivered_all());
    }

    #[test]
    fn unreachable_island_fails_without_truncation() {
        let mut positions: Vec<gmp_geom::Point> = (0..20)
            .map(|i| gmp_geom::Point::new((i % 5) as f64 * 100.0, (i / 5) as f64 * 100.0))
            .collect();
        positions.push(gmp_geom::Point::new(3000.0, 3000.0));
        let topo = Topology::from_positions(positions, gmp_geom::Aabb::square(4000.0), 150.0);
        let config = SimConfig::paper().with_node_count(21);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(20)]);
        let report = TaskRunner::new(&topo, &config).run(&mut GrdRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                NodeId(20),
                gmp_sim::FailureCause::Disconnected
            )]
        );
        assert!(!report.truncated);
    }
}
