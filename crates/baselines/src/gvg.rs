//! GVG: greedy multicast with guaranteed void traversal (arXiv:0803.3632).
//!
//! The GVG line of work routes around voids by walking the boundary
//! graph of the void itself. On a planarized unit-disk graph the void
//! boundary *is* a face, so the same FACE-1 engine applies: greedy
//! forwarding until a local minimum, then a single counterclockwise
//! FACE-1 traversal of the void boundary until a node strictly closer
//! than the stall point promotes the packet back to greedy. Compared to
//! MCFR this spends no duplicate transmissions — the trade is worst-case
//! detour length (the lone agent may take the long way around). Delivery
//! on connected topologies is still guaranteed, and machine-checked by
//! the certificate proptests in `gmp-bench`.

use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol};

use crate::facecore::FaceMulticast;

/// Greedy multicast with single-agent void traversal.
#[derive(Debug)]
pub struct GvgRouter {
    core: FaceMulticast,
}

impl GvgRouter {
    /// Creates the router.
    pub fn new() -> Self {
        GvgRouter {
            core: FaceMulticast::new(false),
        }
    }
}

impl Default for GvgRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for GvgRouter {
    fn name(&self) -> String {
        "GVG".into()
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        self.core.on_packet(ctx, packet, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::McfrRouter;
    use gmp_net::topology::{Hole, Topology, TopologyConfig};
    use gmp_net::NodeId;
    use gmp_sim::{FaultPlan, MulticastTask, Protocol, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut GvgRouter::new(), &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn recovers_around_voids_with_a_single_agent() {
        let tconfig = TopologyConfig::new(800.0, 450, 150.0).with_hole(Hole::Circle {
            center: gmp_geom::Point::new(400.0, 400.0),
            radius: 200.0,
        });
        let topo = Topology::random(&tconfig, 3);
        assert!(topo.is_connected());
        let config = SimConfig::paper()
            .with_area_side(800.0)
            .with_node_count(450)
            .with_max_path_hops(2000);
        let near = |p: gmp_geom::Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(gmp_geom::Point::new(50.0, 400.0));
        let dest = near(gmp_geom::Point::new(750.0, 400.0));
        let task = MulticastTask::new(source, vec![dest]);
        let report = TaskRunner::new(&topo, &config).run(&mut GvgRouter::new(), &task);
        assert!(report.delivered_all(), "{:?}", report.failed_dests);

        // The single agent must not out-spend MCFR's duplicate pair on
        // the same task.
        let mcfr = TaskRunner::new(&topo, &config).run(&mut McfrRouter::new(), &task);
        assert!(
            report.transmissions <= mcfr.transmissions,
            "GVG {} vs MCFR {}",
            report.transmissions,
            mcfr.transmissions
        );
    }

    #[test]
    fn unreachable_island_fails_without_truncation() {
        let mut positions: Vec<gmp_geom::Point> = (0..20)
            .map(|i| gmp_geom::Point::new((i % 5) as f64 * 100.0, (i / 5) as f64 * 100.0))
            .collect();
        positions.push(gmp_geom::Point::new(3000.0, 3000.0));
        let topo = Topology::from_positions(positions, gmp_geom::Aabb::square(4000.0), 150.0);
        let config = SimConfig::paper().with_node_count(21);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(20)]);
        let report = TaskRunner::new(&topo, &config).run(&mut GvgRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                NodeId(20),
                gmp_sim::FailureCause::Disconnected
            )]
        );
        assert!(!report.truncated);
    }

    #[test]
    fn zero_unjustified_failures_under_crashes() {
        let config = SimConfig::paper()
            .with_node_count(400)
            .with_max_path_hops(4000);
        let topo = Topology::random(&config.topology_config(), 11);
        for seed in 0..4u64 {
            let plan = FaultPlan::random_crashes(topo.len(), 0.15, 0.0, 900 + seed);
            let config = config.clone().with_faults(plan);
            let task = MulticastTask::random(&topo, 8, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut GvgRouter::new(), &task);
            assert_eq!(
                report.unjustified_failures().count(),
                0,
                "seed {seed}: {:?}",
                report.failed_dests
            );
            assert!(!report.truncated, "seed {seed} hit the event/hop budget");
        }
    }

    #[test]
    fn decisions_are_pure_across_scratch_reuse() {
        // Re-running the same task through one router instance must give
        // bit-identical reports: the shared FaceScratch carries no state
        // between decisions.
        let config = SimConfig::paper().with_node_count(300);
        let topo = Topology::random(&config.topology_config(), 5);
        let task = MulticastTask::random(&topo, 12, 9);
        let runner = TaskRunner::new(&topo, &config);
        let mut router = GvgRouter::new();
        let a = runner.run(&mut router, &task);
        let b = runner.run(&mut router, &task);
        assert_eq!(a, b);
        let mut mcfr = McfrRouter::new();
        let a = runner.run(&mut mcfr, &task);
        let b = runner.run(&mut mcfr, &task);
        assert_eq!(a, b);
        assert_eq!(mcfr.name(), "MCFR");
        assert_eq!(router.name(), "GVG");
    }
}
