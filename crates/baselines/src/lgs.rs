//! LGS: the Location-Guided Steiner tree scheme of LGT \[5\].
//!
//! Each partitioning node builds a minimum spanning tree over `{itself} ∪
//! destinations` (actual node locations only — the constraint the paper
//! criticizes), takes its own MST children as subtree roots, and unicasts
//! one copy per subtree toward its root destination. Intermediate relay
//! nodes forward greedily toward that root without re-partitioning; the
//! root repeats the process for its subtree.
//!
//! LGS has no void recovery: "it assumes a valid next hop can always be
//! found and it fails when a void destination is identified" (Section
//! 5.4), which drives its failure count in Fig. 15.

use gmp_geom::Point;
use gmp_net::NodeId;
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};
use gmp_steiner::mst::euclidean_mst;

use crate::util::greedy_next_hop;

/// The LGS router.
#[derive(Debug, Clone, Copy, Default)]
pub struct LgsRouter;

impl LgsRouter {
    /// Creates the router.
    pub fn new() -> Self {
        LgsRouter
    }

    /// Partition at a subtree root: MST over `{here} ∪ dests`, one copy
    /// per MST child of `here`, each unicast toward that child.
    fn partition(&self, ctx: &NodeContext<'_>, packet: &MulticastPacket) -> Vec<Forward> {
        let mut points: Vec<Point> = Vec::with_capacity(packet.dests.len() + 1);
        points.push(ctx.pos());
        points.extend(packet.dests.iter().map(|&d| ctx.pos_of(d)));
        let mst = euclidean_mst(&points);
        let mut out = Vec::new();
        for &child in &mst.children[0] {
            // Indices ≥ 1 map to packet.dests[idx - 1].
            let group: Vec<NodeId> = mst
                .subtree(child)
                .into_iter()
                .map(|i| packet.dests[i - 1])
                .collect();
            let root_dest = packet.dests[child - 1];
            // Void (`None`): LGS gives up on this whole group.
            if let Some(n) = greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(root_dest)) {
                out.push(Forward {
                    next_hop: n,
                    packet: packet.split(group, RoutingState::UnicastLeg { target: root_dest }),
                });
            }
        }
        out
    }
}

impl Protocol for LgsRouter {
    fn name(&self) -> String {
        "LGS".into()
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        match packet.state {
            // Relay leg: forward greedily toward the subtree root without
            // re-partitioning, unless we *are* the root (the runner already
            // stripped us from the destination list in that case).
            RoutingState::UnicastLeg { target } if target != ctx.node => {
                // Void mid-leg (`None`): fail.
                if let Some(n) = greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(target)) {
                    out.push(Forward {
                        next_hop: n,
                        packet: packet.clone(),
                    });
                }
            }
            _ => out.extend(self.partition(ctx, &packet)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;
    use gmp_net::Topology;
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let report = TaskRunner::new(&topo, &config).run(&mut LgsRouter::new(), &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn figure_13_chain_reaches_destinations_sequentially() {
        // Destinations strung out in a line away from the source: the LGS
        // MST chains them, so the farthest destination pays the full
        // sequential path (large per-destination hop count).
        let mut positions = vec![Point::new(0.0, 0.0)];
        for i in 1..=4 {
            positions.push(Point::new(i as f64 * 140.0, 0.0));
        }
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(5);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        let report = TaskRunner::new(&topo, &config).run(&mut LgsRouter::new(), &task);
        assert!(report.delivered_all());
        // Chain: hops to the i-th destination is exactly i.
        for i in 1..=4u32 {
            assert_eq!(report.delivery_hops[&NodeId(i)], i);
        }
        assert_eq!(report.transmissions, 4);
    }

    #[test]
    fn fails_on_voids_without_recovery() {
        // A gap between the source's reach and the destination: greedy has
        // a local minimum and LGS must fail (no perimeter mode).
        let positions = vec![
            Point::new(0.0, 0.0),     // source
            Point::new(120.0, 0.0),   // relay; its only forward neighbor is none
            Point::new(700.0, 0.0),   // destination across the gap
            Point::new(700.0, 140.0), // friend of the destination
        ];
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(4);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(2)]);
        let report = TaskRunner::new(&topo, &config).run(&mut LgsRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                NodeId(2),
                gmp_sim::FailureCause::Disconnected
            )]
        );
        assert!(report.transmissions <= 1);
    }

    #[test]
    fn partitions_opposite_clusters_immediately() {
        let positions = vec![
            Point::new(500.0, 500.0), // source
            Point::new(400.0, 500.0), // left neighbor
            Point::new(600.0, 500.0), // right neighbor
            Point::new(100.0, 500.0), // left dest
            Point::new(900.0, 500.0), // right dest
        ];
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(5);
        let _task = MulticastTask::new(NodeId(0), vec![NodeId(3), NodeId(4)]);
        let mut router = LgsRouter::new();
        let ctx = NodeContext {
            topo: &topo,
            node: NodeId(0),
            config: &config,
            alive: None,
        };
        let fwd = router.route(
            &ctx,
            MulticastPacket::new(0, NodeId(0), vec![NodeId(3), NodeId(4)]),
        );
        assert_eq!(fwd.len(), 2);
        let mut hops: Vec<NodeId> = fwd.iter().map(|f| f.next_hop).collect();
        hops.sort();
        assert_eq!(hops, vec![NodeId(1), NodeId(2)]);
    }
}
