//! PBM: Position Based Multicasting \[21\].
//!
//! At every hop PBM jointly optimizes (a) progress toward the destinations
//! and (b) bandwidth (number of copies) by choosing the neighbor subset
//! `W` minimizing
//!
//! ```text
//! f(W) = λ · |W|/|N|  +  (1 − λ) · Σ_d min_{w∈W} d(w, d) / Σ_d d(s, d)
//! ```
//!
//! with each destination assigned to its closest member of `W`. The
//! tradeoff parameter λ is workload-dependent — the paper's central
//! criticism — and the Fig. 11/12 experiments sweep λ ∈ {0, 0.1, …, 0.6}
//! per task and keep the best result.
//!
//! Exhaustive subset enumeration is exponential in the neighbor count
//! (Section 4.2), which is infeasible at the paper's density (~70
//! neighbors). As documented in DESIGN.md, the search is bounded: the
//! candidate pool is the union of each destination's nearest progressing
//! neighbors, capped, and subsets are enumerated up to a size cap. Both
//! caps are [`PbmConfig`] knobs.
//!
//! Void destinations are grouped and sent into perimeter mode immediately
//! (Section 5.4 contrasts this with GMP's more permissive grouping).

use gmp_geom::Point;
use gmp_net::face::perimeter_next_hop;
use gmp_net::{NodeId, PerimeterState};
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};

/// Tunables of the PBM search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbmConfig {
    /// The λ tradeoff: 0 = pure progress (greedy, many copies),
    /// 1 = pure bandwidth (single copy).
    pub lambda: f64,
    /// Maximum subset size considered (paper: all subsets; here capped for
    /// tractability — see DESIGN.md).
    pub max_subset_size: usize,
    /// Nearest progressing neighbors per destination admitted to the
    /// candidate pool.
    pub candidates_per_dest: usize,
    /// Hard cap on the candidate pool (the subset search is `2^pool`).
    pub max_candidates: usize,
}

impl Default for PbmConfig {
    fn default() -> Self {
        PbmConfig {
            lambda: 0.3,
            max_subset_size: 4,
            candidates_per_dest: 3,
            max_candidates: 12,
        }
    }
}

/// The PBM router.
#[derive(Debug, Clone, Copy, Default)]
pub struct PbmRouter {
    config: PbmConfig,
}

impl PbmRouter {
    /// PBM with the default configuration (λ = 0.3).
    pub fn new() -> Self {
        PbmRouter::default()
    }

    /// PBM with an explicit λ, other knobs default.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `\[0, 1\]`.
    pub fn with_lambda(lambda: f64) -> Self {
        assert!((0.0..=1.0).contains(&lambda), "lambda out of range");
        PbmRouter {
            config: PbmConfig {
                lambda,
                ..PbmConfig::default()
            },
        }
    }

    /// PBM with a full configuration.
    pub fn with_config(config: PbmConfig) -> Self {
        PbmRouter { config }
    }

    /// The router's configuration.
    pub fn config(&self) -> PbmConfig {
        self.config
    }

    /// The subset search over progressing destinations. Returns one
    /// `(next_hop, dests)` per chosen neighbor.
    fn choose_subsets(
        &self,
        ctx: &NodeContext<'_>,
        dests_ok: &[NodeId],
    ) -> Vec<(NodeId, Vec<NodeId>)> {
        let here = ctx.pos();
        let neighbors = ctx.neighbors();
        if neighbors.is_empty() || dests_ok.is_empty() {
            return Vec::new();
        }
        // Candidate pool: per destination, its nearest progressing
        // neighbors.
        let mut pool: Vec<NodeId> = Vec::new();
        for &d in dests_ok {
            let target = ctx.pos_of(d);
            let own = here.dist(target);
            let mut close: Vec<NodeId> = neighbors
                .iter()
                .copied()
                .filter(|&n| ctx.pos_of(n).dist(target) < own)
                .collect();
            close.sort_by(|&a, &b| {
                ctx.pos_of(a)
                    .dist_sq(target)
                    .total_cmp(&ctx.pos_of(b).dist_sq(target))
            });
            for n in close.into_iter().take(self.config.candidates_per_dest) {
                if !pool.contains(&n) {
                    pool.push(n);
                }
            }
        }
        pool.sort();
        pool.truncate(self.config.max_candidates);
        if pool.is_empty() {
            return Vec::new();
        }

        let dist_sum_from_here: f64 = dests_ok.iter().map(|&d| here.dist(ctx.pos_of(d))).sum();
        let cap = self.config.max_subset_size.min(dests_ok.len()).max(1);
        let n_count = neighbors.len() as f64;

        let mut best: Option<(f64, u32)> = None;
        for mask in 1u32..(1u32 << pool.len()) {
            let size = mask.count_ones() as usize;
            if size > cap {
                continue;
            }
            // Assign each destination to the closest subset member; every
            // destination must make strict progress, every member must
            // serve someone.
            let mut served = vec![false; pool.len()];
            let mut remaining = 0.0f64;
            let mut feasible = true;
            for &d in dests_ok {
                let target = ctx.pos_of(d);
                let mut best_w: Option<(f64, usize)> = None;
                for (i, &w) in pool.iter().enumerate() {
                    if mask & (1 << i) == 0 {
                        continue;
                    }
                    let dist = ctx.pos_of(w).dist(target);
                    if best_w.is_none_or(|(bd, _)| dist < bd) {
                        best_w = Some((dist, i));
                    }
                }
                let (dist, wi) = best_w.expect("mask non-empty");
                if dist >= here.dist(target) {
                    feasible = false; // this subset strands destination d
                    break;
                }
                served[wi] = true;
                remaining += dist;
            }
            if !feasible {
                continue;
            }
            let all_serve = (0..pool.len()).all(|i| mask & (1 << i) == 0 || served[i]);
            if !all_serve {
                continue; // dominated by the same mask minus idle members
            }
            let f = self.config.lambda * size as f64 / n_count
                + (1.0 - self.config.lambda) * remaining / dist_sum_from_here;
            if best.is_none_or(|(bf, bm)| f < bf - 1e-12 || (f < bf + 1e-12 && mask < bm)) {
                best = Some((f, mask));
            }
        }

        let chosen_mask = match best {
            Some((_, m)) => m,
            // The size cap made full coverage impossible: fall back to the
            // per-destination nearest-neighbor grouping.
            None => (1u32 << pool.len()) - 1,
        };

        // Materialize the assignment for the chosen subset.
        let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
        for &d in dests_ok {
            let target = ctx.pos_of(d);
            let w = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| chosen_mask & (1 << i) != 0)
                .map(|(_, &w)| w)
                .filter(|&w| ctx.pos_of(w).dist(target) < here.dist(target))
                .min_by(|&a, &b| {
                    ctx.pos_of(a)
                        .dist_sq(target)
                        .total_cmp(&ctx.pos_of(b).dist_sq(target))
                });
            if let Some(w) = w {
                match groups.iter_mut().find(|(hop, _)| *hop == w) {
                    Some((_, g)) => g.push(d),
                    None => groups.push((w, vec![d])),
                }
            }
            // A destination no chosen member improves is silently dropped
            // here; callers route it through the void path instead. This
            // can only happen on the fallback mask.
        }
        groups
    }
}

impl Protocol for PbmRouter {
    fn name(&self) -> String {
        format!("PBM(λ={})", self.config.lambda)
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        let here = ctx.pos();

        // Perimeter packets stay in perimeter mode until the GPSR exit
        // test passes; then the destinations re-enter normal routing.
        if let RoutingState::Perimeter(state) = packet.state {
            if !state.closer_than_entry(here) {
                let mut state = state;
                if let Ok(n) = perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, &mut state)
                {
                    out.push(Forward {
                        next_hop: n,
                        packet: packet.split(packet.dests.clone(), RoutingState::Perimeter(state)),
                    });
                }
                return;
            }
        }

        // Split destinations by whether any neighbor makes progress.
        let (ok, voids): (Vec<NodeId>, Vec<NodeId>) = packet.dests.iter().partition(|&&d| {
            let target = ctx.pos_of(d);
            let own = here.dist(target);
            ctx.neighbors()
                .iter()
                .any(|&n| ctx.pos_of(n).dist(target) < own)
        });

        let mut unassigned: Vec<NodeId> = voids;
        let groups = self.choose_subsets(ctx, &ok);
        let assigned: std::collections::HashSet<NodeId> =
            groups.iter().flat_map(|(_, g)| g.iter().copied()).collect();
        for &d in &ok {
            if !assigned.contains(&d) {
                unassigned.push(d);
            }
        }
        for (hop, group) in groups {
            out.push(Forward {
                next_hop: hop,
                packet: packet.split(group, RoutingState::Greedy),
            });
        }

        // All void destinations: one perimeter packet toward their average
        // location.
        if !unassigned.is_empty() {
            unassigned.sort();
            let avg =
                Point::centroid(unassigned.iter().map(|&d| ctx.pos_of(d))).expect("non-empty");
            let mut state = PerimeterState::enter(here, avg);
            if let Ok(n) = perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, &mut state) {
                out.push(Forward {
                    next_hop: n,
                    packet: packet.split(unassigned, RoutingState::Perimeter(state)),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;
    use gmp_net::topology::{Hole, Topology, TopologyConfig};
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for lambda in [0.0, 0.3, 0.6] {
            for seed in 0..4u64 {
                let task = MulticastTask::random(&topo, 10, seed);
                let mut pbm = PbmRouter::with_lambda(lambda);
                let report = TaskRunner::new(&topo, &config).run(&mut pbm, &task);
                assert!(
                    report.delivered_all(),
                    "λ {lambda} seed {seed}: {:?}",
                    report.failed_dests
                );
            }
        }
    }

    #[test]
    fn lambda_zero_fans_out_like_greedy() {
        // With λ = 0 the objective only rewards progress, so each
        // destination rides toward its own nearest neighbor.
        let positions = vec![
            Point::new(500.0, 500.0), // source
            Point::new(400.0, 500.0), // left neighbor
            Point::new(600.0, 500.0), // right neighbor
            Point::new(100.0, 500.0), // left dest
            Point::new(900.0, 500.0), // right dest
        ];
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(5);
        let ctx = NodeContext {
            topo: &topo,
            node: NodeId(0),
            config: &config,
            alive: None,
        };
        let mut pbm = PbmRouter::with_lambda(0.0);
        let fwd = pbm.route(
            &ctx,
            MulticastPacket::new(0, NodeId(0), vec![NodeId(3), NodeId(4)]),
        );
        assert_eq!(fwd.len(), 2);
    }

    #[test]
    fn high_lambda_prefers_fewer_copies() {
        // Two destinations in the same general direction with one shared
        // good neighbor: a bandwidth-heavy λ should send a single copy.
        let positions = vec![
            Point::new(0.0, 0.0),     // source
            Point::new(140.0, 0.0),   // shared forward neighbor
            Point::new(145.0, 35.0),  // strictly better for dest A only
            Point::new(145.0, -35.0), // strictly better for dest B only
            Point::new(600.0, 80.0),  // dest A
            Point::new(600.0, -80.0), // dest B
        ];
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(6);
        let ctx = NodeContext {
            topo: &topo,
            node: NodeId(0),
            config: &config,
            alive: None,
        };
        let dests = vec![NodeId(4), NodeId(5)];
        let mut thrifty = PbmRouter::with_lambda(0.9);
        let f_thrifty = thrifty.route(&ctx, MulticastPacket::new(0, NodeId(0), dests.clone()));
        assert_eq!(f_thrifty.len(), 1, "λ=0.9 should send one copy");
        // The single copy carries both destinations.
        assert_eq!(f_thrifty[0].packet.dests.len(), 2);
        let mut eager = PbmRouter::with_lambda(0.0);
        let f_eager = eager.route(&ctx, MulticastPacket::new(0, NodeId(0), dests));
        assert_eq!(f_eager.len(), 2, "λ=0 should maximize progress");
    }

    #[test]
    fn voids_enter_perimeter_mode_immediately() {
        let tconfig = TopologyConfig::new(800.0, 450, 150.0).with_hole(Hole::Circle {
            center: Point::new(400.0, 400.0),
            radius: 200.0,
        });
        let topo = Topology::random(&tconfig, 3);
        assert!(topo.is_connected());
        let config = SimConfig::paper()
            .with_area_side(800.0)
            .with_node_count(450);
        let near = |p: Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(Point::new(50.0, 400.0));
        let dest = near(Point::new(750.0, 400.0));
        let task = MulticastTask::new(source, vec![dest]);
        let report = TaskRunner::new(&topo, &config).run(&mut PbmRouter::new(), &task);
        assert!(report.delivered_all(), "{:?}", report.failed_dests);
    }

    #[test]
    fn config_accessors_and_validation() {
        assert_eq!(PbmRouter::with_lambda(0.5).config().lambda, 0.5);
        assert_eq!(PbmRouter::new().name(), "PBM(λ=0.3)");
        let custom = PbmRouter::with_config(PbmConfig {
            lambda: 0.1,
            max_subset_size: 2,
            candidates_per_dest: 2,
            max_candidates: 8,
        });
        assert_eq!(custom.config().max_subset_size, 2);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn out_of_range_lambda_panics() {
        PbmRouter::with_lambda(1.5);
    }
}
