//! LGK: the location-guided k-ary tree scheme of LGT \[5\].
//!
//! The sibling of LGS in the same paper: instead of an MST, the
//! partitioning node picks the `k` destinations *nearest to itself* as
//! subtree roots and assigns every remaining destination to the nearest
//! root. The GMP paper evaluates only LGS, so LGK is included here as an
//! extension for completeness of the LGT family.

use gmp_net::NodeId;
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};

use crate::util::greedy_next_hop;

/// The LGK router with fan-out `k`.
#[derive(Debug, Clone, Copy)]
pub struct LgkRouter {
    k: usize,
}

impl LgkRouter {
    /// Creates an LGK router with fan-out `k` (the LGT paper uses small
    /// values; 2 is the default elsewhere in this workspace).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "fan-out must be positive");
        LgkRouter { k }
    }

    /// The configured fan-out.
    pub fn k(&self) -> usize {
        self.k
    }

    fn partition(&self, ctx: &NodeContext<'_>, packet: &MulticastPacket) -> Vec<Forward> {
        // Roots: the k destinations nearest to the current node.
        let mut by_dist: Vec<NodeId> = packet.dests.to_vec();
        by_dist.sort_by(|&a, &b| {
            ctx.pos()
                .dist_sq(ctx.pos_of(a))
                .total_cmp(&ctx.pos().dist_sq(ctx.pos_of(b)))
        });
        let roots: Vec<NodeId> = by_dist.iter().copied().take(self.k).collect();
        let mut groups: Vec<Vec<NodeId>> = roots.iter().map(|&r| vec![r]).collect();
        for &d in by_dist.iter().skip(self.k) {
            let gi = roots
                .iter()
                .enumerate()
                .min_by(|(_, &r1), (_, &r2)| {
                    ctx.pos_of(r1)
                        .dist_sq(ctx.pos_of(d))
                        .total_cmp(&ctx.pos_of(r2).dist_sq(ctx.pos_of(d)))
                })
                .map(|(i, _)| i)
                .expect("roots non-empty");
            groups[gi].push(d);
        }
        roots
            .iter()
            .zip(groups)
            .filter_map(|(&root, group)| {
                greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(root)).map(|n| Forward {
                    next_hop: n,
                    packet: packet.split(group, RoutingState::UnicastLeg { target: root }),
                })
            })
            .collect()
    }
}

impl Default for LgkRouter {
    fn default() -> Self {
        LgkRouter::new(2)
    }
}

impl Protocol for LgkRouter {
    fn name(&self) -> String {
        format!("LGK(k={})", self.k)
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        match packet.state {
            RoutingState::UnicastLeg { target } if target != ctx.node => {
                if let Some(n) = greedy_next_hop(ctx.topo, ctx.node, ctx.pos_of(target)) {
                    out.push(Forward {
                        next_hop: n,
                        packet: packet.clone(),
                    });
                }
            }
            _ => out.extend(self.partition(ctx, &packet)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_net::Topology;
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        for k in [1usize, 2, 4] {
            for seed in 0..3u64 {
                let task = MulticastTask::random(&topo, 9, seed);
                let report = TaskRunner::new(&topo, &config).run(&mut LgkRouter::new(k), &task);
                assert!(
                    report.delivered_all(),
                    "k {k} seed {seed}: {:?}",
                    report.failed_dests
                );
            }
        }
    }

    #[test]
    fn name_carries_fanout() {
        assert_eq!(LgkRouter::new(3).name(), "LGK(k=3)");
        assert_eq!(LgkRouter::default().k(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fanout_panics() {
        LgkRouter::new(0);
    }

    #[test]
    fn k1_degenerates_to_a_chain() {
        // With k = 1 every partition forwards a single group toward the
        // nearest destination — sequential delivery like the Fig. 13 chain.
        let positions = (0..5)
            .map(|i| gmp_geom::Point::new(i as f64 * 140.0, 0.0))
            .collect();
        let topo = Topology::from_positions(positions, gmp_geom::Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(5);
        let task = MulticastTask::new(
            gmp_net::NodeId(0),
            vec![
                gmp_net::NodeId(1),
                gmp_net::NodeId(2),
                gmp_net::NodeId(3),
                gmp_net::NodeId(4),
            ],
        );
        let report = TaskRunner::new(&topo, &config).run(&mut LgkRouter::new(1), &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 4);
        assert_eq!(report.delivery_hops[&gmp_net::NodeId(4)], 4);
    }
}
