//! Proof of the hot-path contract: once a [`DecisionScratch`]'s buffers have
//! reached their high-water capacity, a forwarding decision performs ZERO
//! heap allocations. A counting `#[global_allocator]` wraps the system
//! allocator; the test warms the scratch on a workload, then replays the
//! exact same workload and asserts the allocation counter did not move.
//!
//! This file holds exactly one test: the counter is process-global, and a
//! sibling test running on another thread would pollute the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use gmp_core::{CacheConfig, ConcurrentTreeCache, DecisionScratch, TreeCache};
use gmp_net::Topology;
use gmp_sim::{MulticastTask, SimConfig};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_decisions_do_not_allocate() {
    let config = SimConfig::paper().with_node_count(300);
    let topo = Topology::random(&config.topology_config(), 7);
    let tasks: Vec<MulticastTask> = (0..25)
        .map(|i| MulticastTask::random(&topo, 2 + (i as usize % 20), 100 + i))
        .collect();

    let mut scratch = DecisionScratch::new();
    // Two warm-up passes over the whole workload: pass one grows every
    // buffer to its high-water mark, pass two settles the group pool's
    // vector capacities along the exact recycling sequence the measured
    // pass will repeat.
    for _ in 0..2 {
        for t in &tasks {
            for &rra in &[true, false] {
                scratch.group_destinations_into(&topo, t.source, &t.dests, rra, None, None);
            }
        }
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut decisions = 0usize;
    for t in &tasks {
        for &rra in &[true, false] {
            let g = scratch.group_destinations_into(&topo, t.source, &t.dests, rra, None, None);
            // Touch the output so the decisions cannot be optimized away.
            decisions += usize::from(!g.covered.is_empty() || !g.voids.is_empty());
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert!(decisions > 0, "workload produced no decisions");
    assert_eq!(
        after - before,
        0,
        "steady-state forwarding decisions performed {} heap allocations",
        after - before
    );

    // Same contract with the decision cache in front: the first pass
    // populates it (inserts may allocate), the second settles the
    // hit-path's pooled copies, and the measured pass — now lookups that
    // verify and serve stored groupings — must not touch the allocator
    // either.
    let mut cache = TreeCache::with_config(CacheConfig::default());
    for _ in 0..2 {
        for t in &tasks {
            for &rra in &[true, false] {
                cache.group_destinations_cached(
                    &mut scratch,
                    &topo,
                    t.source,
                    &t.dests,
                    rra,
                    None,
                    None,
                );
            }
        }
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut hits_output = 0usize;
    for t in &tasks {
        for &rra in &[true, false] {
            let g = cache.group_destinations_cached(
                &mut scratch,
                &topo,
                t.source,
                &t.dests,
                rra,
                None,
                None,
            );
            hits_output += usize::from(!g.covered.is_empty() || !g.voids.is_empty());
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert!(hits_output > 0, "cached workload produced no decisions");
    let stats = cache.stats();
    assert_eq!(
        stats.fallbacks, 0,
        "static workload must never fail verification"
    );
    assert!(
        stats.hits >= stats.misses,
        "measured pass must be served from the cache: {stats:?}"
    );
    assert_eq!(
        after - before,
        0,
        "steady-state cached decisions performed {} heap allocations",
        after - before
    );

    // Same contract again for the thread-shared cache, warmed *under
    // concurrency*: two racing workers publish the whole workload (their
    // publishes and lost set() races may allocate — that's warm-up), after
    // which every slot fill is final. The measured pass then takes the
    // lock-free get-verify-serve path exclusively: zero allocations, same
    // as the private cache. This is the property BENCH_5's
    // steady_alloc_drift certificate rides on.
    let shared = ConcurrentTreeCache::with_config(CacheConfig::default());
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let shared = &shared;
            let tasks = &tasks;
            let topo = &topo;
            scope.spawn(move || {
                let mut worker_scratch = DecisionScratch::new();
                for t in tasks {
                    for &rra in &[true, false] {
                        shared.group_destinations_cached(
                            &mut worker_scratch,
                            topo,
                            t.source,
                            &t.dests,
                            rra,
                            None,
                            None,
                        );
                    }
                }
            });
        }
    });
    // One settling pass on the measuring thread's scratch.
    for t in &tasks {
        for &rra in &[true, false] {
            shared.group_destinations_cached(
                &mut scratch,
                &topo,
                t.source,
                &t.dests,
                rra,
                None,
                None,
            );
        }
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    let mut shared_output = 0usize;
    for t in &tasks {
        for &rra in &[true, false] {
            let g = shared.group_destinations_cached(
                &mut scratch,
                &topo,
                t.source,
                &t.dests,
                rra,
                None,
                None,
            );
            shared_output += usize::from(!g.covered.is_empty() || !g.voids.is_empty());
        }
    }
    let after = ALLOCS.load(Ordering::SeqCst);

    assert!(
        shared_output > 0,
        "shared-cache workload produced no decisions"
    );
    let stats = shared.stats();
    assert_eq!(
        stats.fallbacks, 0,
        "static workload must never fail verification"
    );
    assert!(stats.hits > 0, "measured pass must be served: {stats:?}");
    assert_eq!(
        after - before,
        0,
        "steady-state shared-cache lookups performed {} heap allocations",
        after - before
    );
}
