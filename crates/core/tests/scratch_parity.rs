//! Parity proptest for the allocation-free hot path: a [`DecisionScratch`]
//! reused across many decisions must produce bit-identical groupings to the
//! allocating [`group_destinations`] — same covered groups in the same order,
//! same void lists — over random topologies, transmitting nodes, destination
//! sets, radio modes, and perimeter entries.

use gmp_core::{group_destinations, DecisionScratch};
use gmp_geom::Point;
use gmp_net::Topology;
use gmp_sim::{MulticastTask, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn reused_scratch_matches_fresh_grouping(
        nodes in 150usize..400,
        seed in 0u64..500,
        runs in proptest::collection::vec(
            (
                2usize..15,
                0u64..1000,
                proptest::bool::ANY,
                proptest::bool::ANY,
                (0.0..700.0f64, 0.0..700.0f64),
            ),
            1..8,
        ),
    ) {
        let config = SimConfig::paper().with_node_count(nodes);
        let topo = Topology::random(&config.topology_config(), seed);
        // ONE scratch across every run: the whole point is that state left
        // behind by decision N must not leak into decision N+1.
        let mut scratch = DecisionScratch::new();
        for (k, task_seed, rra, perim, (px, py)) in runs {
            let task = MulticastTask::random(&topo, k, task_seed);
            let entry = perim.then(|| Point::new(px, py));
            let fresh = group_destinations(&topo, task.source, &task.dests, rra, entry);
            let reused =
                scratch.group_destinations_into(&topo, task.source, &task.dests, rra, entry, None);
            prop_assert_eq!(reused, &fresh);
        }
    }
}
