//! GMP: the Geographic Multicast routing Protocol (the paper's
//! contribution, Section 4).
//!
//! GMP is fully distributed and stateless. Each transmitting node:
//!
//! 1. builds a virtual Euclidean Steiner tree over itself and the
//!    remaining destinations with [rrSTR](gmp_steiner::rrstr::rrstr) (Section 3);
//! 2. treats the root's children — the *pivots*, which may be virtual
//!    Euclidean points — as destination groups;
//! 3. for each pivot picks the neighbor closest to the pivot, subject to
//!    the loop-prevention constraint that the neighbor's total distance to
//!    the group's destinations strictly improves on the current node's;
//! 4. when no neighbor qualifies, *splits* the group by detaching the
//!    pivot's last child (Section 4.1);
//! 5. destinations whose singleton groups remain void are merged into one
//!    perimeter-mode packet routed toward their average location over the
//!    planarized graph, re-attempting normal GMP grouping at every hop.
//!
//! [`GmpRouter`] implements [`gmp_sim::Protocol`], so it plugs directly
//! into the simulator next to the baselines.
//!
//! # Example
//!
//! ```
//! use gmp_core::GmpRouter;
//! use gmp_net::Topology;
//! use gmp_sim::{MulticastTask, SimConfig, TaskRunner};
//!
//! let config = SimConfig::paper().with_area_side(500.0).with_node_count(150);
//! let topo = Topology::random(&config.topology_config(), 3);
//! let task = MulticastTask::random(&topo, 6, 11);
//! let report = TaskRunner::new(&topo, &config).run(&mut GmpRouter::new(), &task);
//! assert!(report.delivered_all());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod geocast;
pub mod grouping;
pub mod router;

pub use cache::{CacheConfig, CacheStats, ConcurrentTreeCache, TreeCache};
pub use geocast::GmpGeocast;
pub use grouping::{group_destinations, CoveredGroup, DecisionScratch, Grouping};
pub use router::{GmpConfig, GmpRouter};
