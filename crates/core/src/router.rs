//! The GMP forwarding engine (Figure 7 + the Section 4.1 void handling).

use std::sync::Arc;

use gmp_geom::Point;
use gmp_net::face::perimeter_next_hop;
use gmp_net::PerimeterState;
use gmp_sim::{Forward, MulticastPacket, NodeContext, Protocol, RoutingState};

use crate::cache::{CacheStats, ConcurrentTreeCache, TreeCache};
use crate::grouping::{DecisionScratch, Grouping};

/// Configuration of the GMP router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GmpConfig {
    /// Apply the Section 3.3 radio-range-aware pruning in rrSTR.
    /// `true` is GMP; `false` is the GMPnr ablation.
    pub radio_range_aware: bool,
    /// Merge packet copies whose groups selected the same next hop into a
    /// single transmission (the receiving node re-partitions anyway).
    /// `false` is the paper-faithful behaviour (Figure 7 forwards one
    /// copy per pivot unconditionally); `true` is a measurable
    /// optimization ablation.
    pub merge_same_next_hop: bool,
}

impl Default for GmpConfig {
    fn default() -> Self {
        GmpConfig {
            radio_range_aware: true,
            merge_same_next_hop: false,
        }
    }
}

/// The Geographic Multicast routing Protocol.
///
/// Stateless across packets — every forwarding decision is recomputed
/// from the packet's destination list and the node's local neighborhood.
/// The router does carry a [`DecisionScratch`] and a [`TreeCache`], but
/// those are pure working memory: they never influence a decision (the
/// cache only serves groupings proven bit-identical to recomputation —
/// see [`crate::cache`]), they only let the steady-state hot path skip
/// redundant tree rebuilds and run without allocating.
#[derive(Debug, Clone, Default)]
pub struct GmpRouter {
    config: GmpConfig,
    scratch: DecisionScratch,
    cache: CacheBackend,
}

/// The router's decision memo: a private per-router [`TreeCache`] (the
/// default), or a handle to a [`ConcurrentTreeCache`] shared with other
/// routers — typically one per engine worker thread. The two backends
/// serve bit-identical groupings (both verify every served entry against
/// exact inputs), so which one a router carries never shows in a report.
#[derive(Debug, Clone)]
enum CacheBackend {
    Private(TreeCache),
    Shared(Arc<ConcurrentTreeCache>),
}

impl Default for CacheBackend {
    fn default() -> Self {
        CacheBackend::Private(TreeCache::new())
    }
}

impl GmpRouter {
    /// The full protocol (radio-range-aware rrSTR).
    pub fn new() -> Self {
        GmpRouter::with_config(GmpConfig::default())
    }

    /// The GMPnr ablation: radio-range-aware decisions turned off.
    pub fn without_radio_range_awareness() -> Self {
        GmpRouter::with_config(GmpConfig {
            radio_range_aware: false,
            ..GmpConfig::default()
        })
    }

    /// A router with an explicit configuration (ablation entry point).
    pub fn with_config(config: GmpConfig) -> Self {
        GmpRouter {
            config,
            scratch: DecisionScratch::new(),
            cache: CacheBackend::default(),
        }
    }

    /// The full protocol backed by a decision cache shared with other
    /// routers (one warm cache across all engine workers instead of N
    /// cold private ones).
    pub fn with_shared_cache(cache: Arc<ConcurrentTreeCache>) -> Self {
        GmpRouter::with_config_and_shared_cache(GmpConfig::default(), cache)
    }

    /// [`GmpRouter::with_config`] backed by a shared decision cache.
    pub fn with_config_and_shared_cache(
        config: GmpConfig,
        cache: Arc<ConcurrentTreeCache>,
    ) -> Self {
        GmpRouter {
            config,
            scratch: DecisionScratch::new(),
            cache: CacheBackend::Shared(cache),
        }
    }

    /// The router's configuration.
    pub fn config(&self) -> GmpConfig {
        self.config
    }

    /// Decision-cache behaviour counters (hits, misses, fallbacks,
    /// evictions) accumulated over this router's lifetime — or over the
    /// whole shared cache's lifetime when one is attached.
    pub fn cache_stats(&self) -> CacheStats {
        match &self.cache {
            CacheBackend::Private(cache) => cache.stats(),
            CacheBackend::Shared(cache) => cache.stats(),
        }
    }
}

/// Builds the forwards for the covered groups and, if needed, one
/// perimeter-mode copy for the void destinations. Operates on the
/// grouping in place: merging coalesces the covered list, and the void
/// list is moved into the perimeter packet.
fn emit(
    config: GmpConfig,
    ctx: &NodeContext<'_>,
    packet: &MulticastPacket,
    grouping: &mut Grouping,
    prior_perimeter: Option<PerimeterState>,
    out: &mut Vec<Forward>,
) {
    let had_covered = !grouping.covered.is_empty();
    if config.merge_same_next_hop {
        // Coalesce groups sharing a next hop into one copy.
        grouping.covered.sort_by_key(|g| g.next_hop);
        grouping.covered.dedup_by(|b, a| {
            if a.next_hop == b.next_hop {
                a.dests.append(&mut b.dests);
                a.dests.sort();
                true
            } else {
                false
            }
        });
    }
    out.extend(grouping.covered.iter().map(|g| {
        // A group carrying the packet's whole destination list forwards
        // the list by reference count instead of re-allocating it — the
        // steady state of every pass-through hop.
        let dests = if packet.dests == g.dests {
            packet.dests.clone()
        } else {
            g.dests.clone().into()
        };
        Forward {
            // Step 4 of Figure 7: a found next hop clears PERIMODE.
            next_hop: g.next_hop,
            packet: packet.split(dests, RoutingState::Greedy),
        }
    }));

    if grouping.voids.is_empty() {
        return;
    }

    // Section 4.1: all void destinations travel as ONE perimeter group.
    let mut state = match (&prior_perimeter, had_covered) {
        // "If no valid next hop can be found for any of the groups, the
        // packet remains in perimeter mode with the same previous
        // average destination."
        (Some(prev), false) => *prev,
        // Fresh perimeter round (or partially-covered: "a new perimeter
        // group will replace uncovered groups and a new average
        // destination location is calculated").
        _ => {
            let avg = Point::centroid(grouping.voids.iter().map(|&d| ctx.pos_of(d)))
                .expect("voids non-empty");
            PerimeterState::enter(ctx.pos(), avg)
        }
    };
    match perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, &mut state) {
        Ok(next_hop) => out.push(Forward {
            next_hop,
            packet: packet.split(
                std::mem::take(&mut grouping.voids),
                RoutingState::Perimeter(state),
            ),
        }),
        Err(_) => {
            // Unreachable void destinations: the copy dies here and the
            // runner records them as failed.
        }
    }
}

impl Protocol for GmpRouter {
    fn name(&self) -> String {
        if self.config.radio_range_aware {
            "GMP".into()
        } else {
            "GMPnr".into()
        }
    }

    fn on_packet(
        &mut self,
        ctx: &NodeContext<'_>,
        packet: MulticastPacket,
        out: &mut Vec<Forward>,
    ) {
        debug_assert!(!packet.dests.is_empty());
        let prior = match &packet.state {
            RoutingState::Perimeter(p) => Some(*p),
            _ => None,
        };
        // Step 4 of the Section 4.1 perimeter procedure: every receiving
        // node (perimeter or not) first tries normal GMP grouping. For a
        // perimeter packet the exit must also beat the entry point's total
        // distance (GPSR's progress rule), or the packet would bounce
        // straight back into the void.
        match &mut self.cache {
            CacheBackend::Private(cache) => cache.group_destinations_cached(
                &mut self.scratch,
                ctx.topo,
                ctx.node,
                &packet.dests,
                self.config.radio_range_aware,
                prior.map(|p| p.entry),
                ctx.alive,
            ),
            CacheBackend::Shared(cache) => cache.group_destinations_cached(
                &mut self.scratch,
                ctx.topo,
                ctx.node,
                &packet.dests,
                self.config.radio_range_aware,
                prior.map(|p| p.entry),
                ctx.alive,
            ),
        };
        emit(
            self.config,
            ctx,
            &packet,
            self.scratch.grouping_mut(),
            prior,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;
    use gmp_net::topology::{Hole, Topology, TopologyConfig};
    use gmp_net::NodeId;
    use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

    fn run(
        topo: &Topology,
        config: &SimConfig,
        router: &mut GmpRouter,
        task: &MulticastTask,
    ) -> gmp_sim::TaskReport {
        TaskRunner::new(topo, config).run(router, task)
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(GmpRouter::new().name(), "GMP");
        assert_eq!(GmpRouter::without_radio_range_awareness().name(), "GMPnr");
        assert!(GmpRouter::new().config().radio_range_aware);
        assert!(!GmpRouter::new().config().merge_same_next_hop);
    }

    #[test]
    fn merging_same_next_hop_never_increases_hops() {
        let config = SimConfig::paper().with_node_count(600);
        let topo = Topology::random(&config.topology_config(), 55);
        let mut plain_total = 0usize;
        let mut merged_total = 0usize;
        for seed in 0..15u64 {
            let task = MulticastTask::random(&topo, 15, seed);
            let plain = run(&topo, &config, &mut GmpRouter::new(), &task);
            let mut merged_router = GmpRouter::with_config(GmpConfig {
                merge_same_next_hop: true,
                ..GmpConfig::default()
            });
            let merged = run(&topo, &config, &mut merged_router, &task);
            assert!(plain.delivered_all());
            assert!(merged.delivered_all(), "merging must not break delivery");
            plain_total += plain.transmissions;
            merged_total += merged.transmissions;
        }
        assert!(
            merged_total <= plain_total,
            "merged {merged_total} > plain {plain_total}"
        );
    }

    #[test]
    fn delivers_single_destination_on_a_line() {
        let positions = (0..6).map(|i| Point::new(i as f64 * 100.0, 0.0)).collect();
        let topo = Topology::from_positions(positions, Aabb::square(1000.0), 150.0);
        let config = SimConfig::paper().with_node_count(6);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(5)]);
        let report = run(&topo, &config, &mut GmpRouter::new(), &task);
        assert!(report.delivered_all());
        assert_eq!(report.transmissions, 5);
        assert_eq!(report.delivery_hops[&NodeId(5)], 5);
    }

    #[test]
    fn delivers_on_dense_random_networks() {
        let config = SimConfig::paper().with_node_count(500);
        let topo = Topology::random(&config.topology_config(), 42);
        assert!(topo.is_connected());
        for seed in 0..8u64 {
            for k in [3usize, 8, 15] {
                let task = MulticastTask::random(&topo, k, seed * 31 + k as u64);
                let report = run(&topo, &config, &mut GmpRouter::new(), &task);
                assert!(
                    report.delivered_all(),
                    "seed {seed} k {k}: failed {:?}",
                    report.failed_dests
                );
                assert!(!report.truncated);
            }
        }
    }

    #[test]
    fn gmpnr_also_delivers() {
        let config = SimConfig::paper().with_node_count(400);
        let topo = Topology::random(&config.topology_config(), 9);
        for seed in 0..5u64 {
            let task = MulticastTask::random(&topo, 10, seed);
            let mut nr = GmpRouter::without_radio_range_awareness();
            let report = run(&topo, &config, &mut nr, &task);
            assert!(
                report.delivered_all(),
                "seed {seed}: {:?}",
                report.failed_dests
            );
        }
    }

    #[test]
    fn radio_awareness_does_not_increase_hops_on_average() {
        // The whole point of Section 3.3: GMPnr generates redundant hops.
        let config = SimConfig::paper().with_node_count(600);
        let topo = Topology::random(&config.topology_config(), 77);
        let mut aware_total = 0usize;
        let mut nr_total = 0usize;
        for seed in 0..20u64 {
            let task = MulticastTask::random(&topo, 15, seed);
            aware_total += run(&topo, &config, &mut GmpRouter::new(), &task).transmissions;
            nr_total += run(
                &topo,
                &config,
                &mut GmpRouter::without_radio_range_awareness(),
                &task,
            )
            .transmissions;
        }
        assert!(
            aware_total <= nr_total,
            "GMP used {aware_total} hops, GMPnr {nr_total}"
        );
    }

    #[test]
    fn routes_around_voids_with_perimeter_mode() {
        // Donut topology: a central hole big enough to force perimeter
        // routing between opposite sides.
        let tconfig = TopologyConfig::new(800.0, 500, 150.0).with_hole(Hole::Circle {
            center: Point::new(400.0, 400.0),
            radius: 220.0,
        });
        let topo = Topology::random(&tconfig, 4);
        assert!(topo.is_connected());
        let config = SimConfig::paper()
            .with_area_side(800.0)
            .with_node_count(500);
        // Source and destinations straddling the hole.
        let near = |p: Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(Point::new(60.0, 400.0));
        let mut dests = vec![
            near(Point::new(740.0, 400.0)),
            near(Point::new(400.0, 740.0)),
            near(Point::new(740.0, 740.0)),
        ];
        dests.sort();
        dests.dedup();
        dests.retain(|&d| d != source);
        let task = MulticastTask::new(source, dests);
        let report = run(&topo, &config, &mut GmpRouter::new(), &task);
        assert!(
            report.delivered_all(),
            "failed across the hole: {:?}",
            report.failed_dests
        );
    }

    #[test]
    fn unreachable_destination_fails_cleanly() {
        // An island node the protocol can never reach.
        let mut positions: Vec<Point> = (0..30)
            .map(|i| Point::new((i % 6) as f64 * 100.0, (i / 6) as f64 * 100.0))
            .collect();
        positions.push(Point::new(2500.0, 2500.0)); // island
        let topo = Topology::from_positions(positions, Aabb::square(3000.0), 150.0);
        let config = SimConfig::paper().with_node_count(31);
        let island = NodeId(30);
        let task = MulticastTask::new(NodeId(0), vec![NodeId(17), island]);
        let report = run(&topo, &config, &mut GmpRouter::new(), &task);
        assert_eq!(
            report.failed_dests,
            vec![gmp_sim::FailedDest::new(
                island,
                gmp_sim::FailureCause::Disconnected
            )]
        );
        assert!(report.delivery_hops.contains_key(&NodeId(17)));
        assert!(!report.truncated);
    }

    #[test]
    fn shared_cache_router_matches_private_bit_for_bit() {
        let config = SimConfig::paper().with_node_count(400);
        let topo = Topology::random(&config.topology_config(), 21);
        let shared = Arc::new(ConcurrentTreeCache::with_config(
            crate::cache::CacheConfig::default(),
        ));
        for seed in 0..6u64 {
            let task = MulticastTask::random(&topo, 12, seed);
            let private = run(&topo, &config, &mut GmpRouter::new(), &task);
            let mut router = GmpRouter::with_shared_cache(Arc::clone(&shared));
            let with_shared = run(&topo, &config, &mut router, &task);
            assert_eq!(private, with_shared, "seed {seed}");
        }
        let cold = shared.stats();
        assert!(cold.lookups() > 0);
        // A second router over the same tasks rides the warm shared
        // cache: no new publishes, hits only.
        for seed in 0..6u64 {
            let task = MulticastTask::random(&topo, 12, seed);
            let mut router = GmpRouter::with_shared_cache(Arc::clone(&shared));
            run(&topo, &config, &mut router, &task);
        }
        let warm = shared.stats();
        assert_eq!(warm.misses, cold.misses, "warm replay must not publish");
        assert!(warm.hits > cold.hits);
    }

    #[test]
    fn gmp_beats_unicast_star_on_clustered_destinations() {
        // Multicasting to a far-away cluster must be much cheaper than the
        // sum of independent unicast paths (the motivation of the paper).
        let config = SimConfig::paper().with_node_count(700);
        let topo = Topology::random(&config.topology_config(), 13);
        let near = |p: Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let source = near(Point::new(50.0, 50.0));
        let mut dests: Vec<NodeId> = [
            Point::new(900.0, 850.0),
            Point::new(850.0, 900.0),
            Point::new(920.0, 920.0),
            Point::new(880.0, 960.0),
        ]
        .iter()
        .map(|&p| near(p))
        .collect();
        dests.sort();
        dests.dedup();
        dests.retain(|&d| d != source);
        let k = dests.len();
        let task = MulticastTask::new(source, dests);
        let report = run(&topo, &config, &mut GmpRouter::new(), &task);
        assert!(report.delivered_all());
        // A unicast star would cost ≈ k × (diagonal hops ≈ 9); GMP shares
        // the long trunk, so it must use far fewer than k × 9 hops.
        assert!(
            report.transmissions < k * 9,
            "GMP used {} transmissions for {k} clustered destinations",
            report.transmissions
        );
    }
}
