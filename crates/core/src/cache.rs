//! Cross-hop memoization of the forwarding decision.
//!
//! GMP is stateless per hop: every forwarder rebuilds a virtual Steiner
//! tree over the packet's remaining destination set and regroups from
//! scratch (Figure 7). Consecutive hops therefore repeat nearly identical
//! work — same destination set, same neighborhood geometry — and the
//! simulator replays whole tasks thousands of times. [`TreeCache`]
//! exploits that: it memoizes the *outcome* of
//! [`DecisionScratch::group_destinations_into`] keyed by a fingerprint of
//! the decision inputs, and serves a stored [`Grouping`] instead of
//! rebuilding the tree.
//!
//! # Why cached decisions are bit-exact
//!
//! The grouping is a pure function of exactly these inputs: the deciding
//! node's position, the radio range, the destination ids and positions,
//! the neighbor ids, positions and liveness bits, the radio-range-aware
//! flag, and the perimeter entry point. A cache entry stores **all of
//! them exactly** (positions compared by `f64` bit pattern), and a lookup
//! only serves the stored grouping after verifying every one — so a hit
//! is *proven* equal to what recomputation would produce, not assumed
//! from a hash. Quantized positions appear in the fingerprint purely to
//! find the candidate entry; correctness never rests on the hash.
//!
//! A verification failure (hash collision, a node's liveness flipped by a
//! fault plan, even a different topology behind the same ids) falls back
//! to a full rebuild and replaces the entry in place — this is how
//! `gmp-faults` liveness changes invalidate affected entries without any
//! out-of-band notification.
//!
//! The liveness bits are *normalized*: a `None` view and an all-`true`
//! slice store identical bits. That is sound because the grouping's only
//! read of the view — the candidate filter at the top of
//! `find_next_hop`'s neighbor loop — precedes all floating-point work, so
//! the two views are bit-identical by construction (the zero-fault parity
//! contract).
//!
//! With `GMP_CACHE_PARANOID` set (any value but `0`), every verified hit
//! *additionally* recomputes the decision and asserts the stored grouping
//! matches — the belt-and-braces mode the parity tests run under.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use gmp_geom::Point;
use gmp_net::{NodeId, Topology};

use crate::grouping::{copy_grouping_into, DecisionScratch, Grouping};

/// Tuning knobs for [`TreeCache`]. These affect only speed, never
/// outcomes: capacity bounds memory, the quantum only shapes the lookup
/// fingerprint (the exact validity check is unconditional).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheConfig {
    /// Maximum number of stored decisions before an epoch flush
    /// (`GMP_CACHE_CAPACITY`).
    pub capacity: usize,
    /// Position quantization step for the fingerprint, meters
    /// (`GMP_CACHE_QUANTUM`). Coarser buckets more near-identical
    /// geometries onto the same probe; the exact check rejects any
    /// false merge, so this trades hash spread against lookup hits.
    pub quantum: f64,
    /// Recompute-and-compare every hit (`GMP_CACHE_PARANOID`).
    pub paranoid: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity: 8192,
            quantum: 1e-3,
            paranoid: false,
        }
    }
}

impl CacheConfig {
    /// The defaults with any `GMP_CACHE_CAPACITY` / `GMP_CACHE_QUANTUM` /
    /// `GMP_CACHE_PARANOID` environment overrides applied. Unparsable or
    /// out-of-range values fall back to the defaults with a warning on
    /// stderr — never a panic.
    pub fn from_env() -> Self {
        let (config, warnings) = CacheConfig::from_lookup(|key| std::env::var(key).ok());
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        config
    }

    /// [`CacheConfig::from_env`] with the variable source injected, so the
    /// malformed-input paths are testable without mutating the process
    /// environment. Returns the resolved configuration plus one warning
    /// message per rejected value.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> (Self, Vec<String>) {
        let mut config = CacheConfig::default();
        let mut warnings = Vec::new();
        config.capacity = gmp_sim::env_knob(
            &lookup,
            "GMP_CACHE_CAPACITY",
            config.capacity,
            "is not a positive integer",
            &format!("default {}", config.capacity),
            |raw| raw.parse::<usize>().ok().filter(|&cap| cap > 0),
            &mut warnings,
        );
        config.quantum = gmp_sim::env_knob(
            &lookup,
            "GMP_CACHE_QUANTUM",
            config.quantum,
            "is not a positive finite number",
            &format!("default {}", config.quantum),
            |raw| {
                raw.parse::<f64>()
                    .ok()
                    .filter(|&q| q.is_finite() && q > 0.0)
            },
            &mut warnings,
        );
        // Any value but "0" enables paranoid mode — no malformed case, by
        // construction.
        if let Some(raw) = lookup("GMP_CACHE_PARANOID") {
            config.paranoid = raw != "0";
        }
        (config, warnings)
    }
}

/// Counters describing how the cache behaved, for the bench reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a stored, fully verified entry.
    pub hits: u64,
    /// Lookups with no stored entry under the fingerprint: computed
    /// fresh, then stored.
    pub misses: u64,
    /// Lookups whose stored entry failed the exact validity check
    /// (liveness flip, hash collision, changed geometry): computed fresh,
    /// entry replaced.
    pub fallbacks: u64,
    /// Entries discarded by capacity epoch flushes.
    pub evictions: u64,
    /// Capacity epoch flushes performed (each discards every entry).
    pub epoch_flushes: u64,
    /// Decisions currently stored — an occupancy snapshot taken by
    /// [`TreeCache::stats`], not a running counter.
    pub entries_live: u64,
    /// Inserts that recycled a flushed entry (and its vectors) from the
    /// free list instead of allocating a fresh one.
    pub pool_reused: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses + self.fallbacks
    }

    /// Fraction of lookups served from the cache, or 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One memoized decision: every exact input plus the resulting grouping.
#[derive(Debug, Clone, Default)]
struct CacheEntry {
    node: NodeId,
    node_pos: Point,
    radio_range: f64,
    rra: bool,
    perimeter_entry: Option<Point>,
    dests: Vec<NodeId>,
    dest_pos: Vec<Point>,
    neighbors: Vec<NodeId>,
    neighbor_pos: Vec<Point>,
    neighbor_alive: Vec<bool>,
    grouping: Grouping,
}

/// Trivial pass-through hasher: the map key already *is* the mixed
/// fingerprint, so rehashing it through SipHash would only burn cycles.
#[derive(Debug, Clone, Copy, Default)]
struct FingerprintHasher(u64);

impl Hasher for FingerprintHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = mix(self.0, b as u64);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = mix(self.0, v);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct FingerprintBuild;

impl BuildHasher for FingerprintBuild {
    type Hasher = FingerprintHasher;
    fn build_hasher(&self) -> FingerprintHasher {
        FingerprintHasher::default()
    }
}

/// One FxHash-style mixing step (rotate, xor, multiply by a large odd
/// constant) — cheap, dependency-free, and plenty for keys this small.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

#[inline]
fn point_bits_eq(a: Point, b: Point) -> bool {
    a.x.to_bits() == b.x.to_bits() && a.y.to_bits() == b.y.to_bits()
}

#[inline]
fn entry_bits_eq(a: Option<Point>, b: Option<Point>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(p), Some(q)) => point_bits_eq(p, q),
        _ => false,
    }
}

/// The normalized liveness bit for one neighbor (see the module docs for
/// why `None` and all-`true` may share it).
#[inline]
fn alive_bit(alive: Option<&[bool]>, n: NodeId) -> bool {
    alive.is_none_or(|a| a[n.index()])
}

/// Memoizes forwarding decisions across hops (and across simulated
/// tasks, which replay the same decisions thousands of times in the
/// benchmarks).
///
/// The cache owns no scratch of its own: results are always materialized
/// into the caller's [`DecisionScratch`], so downstream code (the emit
/// step, which mutates the grouping in place) is oblivious to whether the
/// decision was computed or served.
#[derive(Debug, Clone)]
pub struct TreeCache {
    config: CacheConfig,
    /// `1 / quantum`, precomputed for the fingerprint loop.
    inv_quantum: f64,
    /// Fingerprint → index into `entries`. On the (astronomically rare)
    /// fingerprint collision between distinct keys, the exact check
    /// rejects the resident entry and the loser recomputes + replaces —
    /// correct either way.
    map: HashMap<u64, u32, FingerprintBuild>,
    entries: Vec<CacheEntry>,
    /// Flushed entries recycled on insert, so steady-state epochs reuse
    /// their vectors instead of reallocating.
    free: Vec<CacheEntry>,
    /// Group-vector pool for entry replacement (the scratch has its own).
    pool: Vec<Vec<NodeId>>,
    stats: CacheStats,
}

impl Default for TreeCache {
    fn default() -> Self {
        TreeCache::new()
    }
}

impl TreeCache {
    /// A cache with the environment-tuned configuration
    /// ([`CacheConfig::from_env`]).
    pub fn new() -> Self {
        TreeCache::with_config(CacheConfig::from_env())
    }

    /// A cache with an explicit configuration.
    pub fn with_config(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        assert!(
            config.quantum.is_finite() && config.quantum > 0.0,
            "cache quantum must be positive"
        );
        TreeCache {
            config,
            inv_quantum: 1.0 / config.quantum,
            map: HashMap::default(),
            entries: Vec::new(),
            free: Vec::new(),
            pool: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Behaviour counters since construction (flushes don't reset them),
    /// with the live-occupancy snapshot filled in.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries_live: self.entries.len() as u64,
            ..self.stats
        }
    }

    /// Number of currently stored decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no decisions are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// [`DecisionScratch::group_destinations_into`] through the cache:
    /// serves a stored grouping when every exact input matches, computes
    /// (and stores) it otherwise. The result always lives in `scratch`,
    /// bit-identical to what the direct call would leave there.
    #[allow(clippy::too_many_arguments)]
    pub fn group_destinations_cached<'a>(
        &mut self,
        scratch: &'a mut DecisionScratch,
        topo: &Topology,
        node: NodeId,
        dests: &[NodeId],
        radio_range_aware: bool,
        perimeter_entry: Option<Point>,
        alive: Option<&[bool]>,
    ) -> &'a Grouping {
        let fp = self.fingerprint(topo, node, dests, radio_range_aware, perimeter_entry, alive);
        if let Some(&slot) = self.map.get(&fp) {
            let entry = &self.entries[slot as usize];
            if entry_matches(
                entry,
                topo,
                node,
                dests,
                radio_range_aware,
                perimeter_entry,
                alive,
            ) {
                self.stats.hits += 1;
                if self.config.paranoid {
                    // Recompute-and-compare mode: the recomputed grouping
                    // is returned (it is asserted identical, so the
                    // choice is immaterial).
                    scratch.group_destinations_into(
                        topo,
                        node,
                        dests,
                        radio_range_aware,
                        perimeter_entry,
                        alive,
                    );
                    assert_eq!(
                        scratch.grouping_ref(),
                        &entry.grouping,
                        "paranoid cache check failed at node {node} for {dests:?}"
                    );
                } else {
                    scratch.load_grouping(&entry.grouping);
                }
                return scratch.grouping_ref();
            }
            // Exact check failed: the inputs changed under this
            // fingerprint (liveness flip, collision…). Recompute and
            // replace the resident entry in place.
            self.stats.fallbacks += 1;
            scratch.group_destinations_into(
                topo,
                node,
                dests,
                radio_range_aware,
                perimeter_entry,
                alive,
            );
            let entry = &mut self.entries[slot as usize];
            fill_entry(
                entry,
                &mut self.pool,
                scratch.grouping_ref(),
                topo,
                node,
                dests,
                radio_range_aware,
                perimeter_entry,
                alive,
            );
            return scratch.grouping_ref();
        }

        self.stats.misses += 1;
        scratch.group_destinations_into(
            topo,
            node,
            dests,
            radio_range_aware,
            perimeter_entry,
            alive,
        );
        if self.entries.len() >= self.config.capacity {
            // Epoch flush: deterministic, wholesale, and cheap — the
            // entries (and their vectors) move to the free list for
            // reuse. An LRU chain would save refills but put its
            // bookkeeping on every lookup; the benches' working sets fit
            // the default capacity comfortably (see DESIGN.md).
            self.stats.evictions += self.entries.len() as u64;
            self.stats.epoch_flushes += 1;
            self.map.clear();
            self.free.append(&mut self.entries);
        }
        let mut entry = match self.free.pop() {
            Some(recycled) => {
                self.stats.pool_reused += 1;
                recycled
            }
            None => CacheEntry::default(),
        };
        fill_entry(
            &mut entry,
            &mut self.pool,
            scratch.grouping_ref(),
            topo,
            node,
            dests,
            radio_range_aware,
            perimeter_entry,
            alive,
        );
        let slot = self.entries.len() as u32;
        self.entries.push(entry);
        self.map.insert(fp, slot);
        scratch.grouping_ref()
    }

    /// The lookup fingerprint (see [`fingerprint_with`]).
    fn fingerprint(
        &self,
        topo: &Topology,
        node: NodeId,
        dests: &[NodeId],
        radio_range_aware: bool,
        perimeter_entry: Option<Point>,
        alive: Option<&[bool]>,
    ) -> u64 {
        fingerprint_with(
            self.inv_quantum,
            topo,
            node,
            dests,
            radio_range_aware,
            perimeter_entry,
            alive,
        )
    }
}

/// The lookup fingerprint: node id, flags, and *quantized* positions
/// mixed into 64 bits. Only a probe — every served decision is
/// re-verified against exact inputs. Shared by [`TreeCache`] and
/// [`ConcurrentTreeCache`] so a private and a shared cache agree on
/// which probe a decision lands under.
fn fingerprint_with(
    inv_quantum: f64,
    topo: &Topology,
    node: NodeId,
    dests: &[NodeId],
    radio_range_aware: bool,
    perimeter_entry: Option<Point>,
    alive: Option<&[bool]>,
) -> u64 {
    let quant = |c: f64| (c * inv_quantum).round() as i64 as u64;
    let mut h = mix(0x9e37_79b9_7f4a_7c15, node.0 as u64);
    h = mix(h, radio_range_aware as u64);
    let here = topo.pos(node);
    h = mix(h, quant(here.x));
    h = mix(h, quant(here.y));
    match perimeter_entry {
        Some(e) => {
            h = mix(h, 1);
            h = mix(h, quant(e.x));
            h = mix(h, quant(e.y));
        }
        None => h = mix(h, 2),
    }
    for &d in dests {
        let p = topo.pos(d);
        h = mix(h, d.0 as u64);
        h = mix(h, quant(p.x));
        h = mix(h, quant(p.y));
    }
    // Normalized per-neighbor liveness, folded in as a running bit
    // string so dead-neighbor variants get their own probe.
    let mut bits = 1u64;
    for &n in topo.neighbors(node) {
        bits = (bits << 1) | alive_bit(alive, n) as u64;
        if bits >> 63 == 1 {
            h = mix(h, bits);
            bits = 1;
        }
    }
    mix(h, bits)
}

/// The exact-input validity check: `true` iff recomputing from these
/// arguments is guaranteed to reproduce `entry.grouping` (every value the
/// decision reads is compared, positions by bit pattern).
fn entry_matches(
    entry: &CacheEntry,
    topo: &Topology,
    node: NodeId,
    dests: &[NodeId],
    radio_range_aware: bool,
    perimeter_entry: Option<Point>,
    alive: Option<&[bool]>,
) -> bool {
    entry.node == node
        && entry.rra == radio_range_aware
        && entry.radio_range.to_bits() == topo.radio_range().to_bits()
        && point_bits_eq(entry.node_pos, topo.pos(node))
        && entry_bits_eq(entry.perimeter_entry, perimeter_entry)
        && entry.dests == dests
        && entry
            .dest_pos
            .iter()
            .zip(dests)
            .all(|(&p, &d)| point_bits_eq(p, topo.pos(d)))
        && entry.neighbors == topo.neighbors(node)
        && entry
            .neighbor_pos
            .iter()
            .zip(&entry.neighbors)
            .all(|(&p, &n)| point_bits_eq(p, topo.pos(n)))
        && entry
            .neighbor_alive
            .iter()
            .zip(&entry.neighbors)
            .all(|(&bit, &n)| bit == alive_bit(alive, n))
}

/// (Re)populates `entry` from the decision's exact inputs and freshly
/// computed `grouping`, reusing its existing vectors.
#[allow(clippy::too_many_arguments)]
fn fill_entry(
    entry: &mut CacheEntry,
    pool: &mut Vec<Vec<NodeId>>,
    grouping: &Grouping,
    topo: &Topology,
    node: NodeId,
    dests: &[NodeId],
    radio_range_aware: bool,
    perimeter_entry: Option<Point>,
    alive: Option<&[bool]>,
) {
    entry.node = node;
    entry.node_pos = topo.pos(node);
    entry.radio_range = topo.radio_range();
    entry.rra = radio_range_aware;
    entry.perimeter_entry = perimeter_entry;
    entry.dests.clear();
    entry.dests.extend_from_slice(dests);
    entry.dest_pos.clear();
    entry.dest_pos.extend(dests.iter().map(|&d| topo.pos(d)));
    entry.neighbors.clear();
    entry.neighbors.extend_from_slice(topo.neighbors(node));
    entry.neighbor_pos.clear();
    entry
        .neighbor_pos
        .extend(entry.neighbors.iter().map(|&n| topo.pos(n)));
    entry.neighbor_alive.clear();
    entry
        .neighbor_alive
        .extend(entry.neighbors.iter().map(|&n| alive_bit(alive, n)));
    copy_grouping_into(grouping, &mut entry.grouping, pool);
}

/// Probe window width of [`ConcurrentTreeCache`]: a fingerprint may land
/// in any of this many consecutive slots.
const WAYS: usize = 4;

/// An immutable published decision: the fingerprint tag plus the full
/// exact-input entry. Boxed so the slot table holds one pointer per slot
/// and publication is a single atomic pointer install.
#[derive(Debug)]
struct PublishedEntry {
    fp: u64,
    entry: CacheEntry,
}

/// A thread-shared variant of [`TreeCache`] for the multi-worker session
/// engine: one warm decision cache serving every worker instead of N
/// cold private ones duplicating the same misses.
///
/// # Design
///
/// The table is a fixed power-of-two array of `OnceLock` slots, each
/// holding at most one immutable published decision. A lookup probes the
/// [`WAYS`]-slot window starting at the fingerprint's bucket; reading a
/// slot is [`OnceLock::get`] — one atomic load on the hot path, no lock,
/// no bus traffic beyond the counters. A miss computes the decision in
/// the caller's scratch (exactly as the private cache would) and then
/// *publishes* it into the first empty slot in the window via
/// [`OnceLock::set`]; the first writer wins and entries are never
/// mutated or evicted afterwards. Stats are relaxed atomics.
///
/// # Why sharing cannot change outcomes
///
/// Served entries pass the same [`entry_matches`] exact-input
/// verification as the private cache: every value the decision reads is
/// compared bitwise before the stored grouping is served, so a hit is
/// *proven* equal to recomputation no matter which thread published the
/// entry or when. The only cross-thread effect is whether a given lookup
/// is a hit or a recompute — two paths that are bit-identical by the
/// cache's core contract (pinned by `cache_parity`).
///
/// # Why warmed lookups stay allocation-free
///
/// Slot fills are monotonic (empty → published, never back), and a
/// lookup boxes a new entry only after probing its whole window. Replay
/// a workload once to warm the table: every decision the replay needs is
/// now resident (published by whichever thread got there first), so
/// subsequent replays take the `get`-verify-serve path exclusively —
/// zero allocations, regardless of worker count or interleaving. The
/// `steady_alloc_drift` certificate in BENCH_5 measures exactly this.
///
/// Capacity beyond `config.capacity.next_power_of_two()` is handled by
/// *not storing*: if a window is full, the decision is recomputed each
/// time (counted as a miss) rather than evicting — eviction under
/// concurrency would need entry reclamation, and the bench working sets
/// fit the default capacity comfortably.
#[derive(Debug)]
pub struct ConcurrentTreeCache {
    config: CacheConfig,
    inv_quantum: f64,
    /// Bucket mask; `slots.len()` is a power of two `>= WAYS`.
    mask: usize,
    slots: Vec<OnceLock<Box<PublishedEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    fallbacks: AtomicU64,
}

impl Default for ConcurrentTreeCache {
    fn default() -> Self {
        ConcurrentTreeCache::new()
    }
}

impl ConcurrentTreeCache {
    /// A shared cache with the environment-tuned configuration
    /// ([`CacheConfig::from_env`]).
    pub fn new() -> Self {
        ConcurrentTreeCache::with_config(CacheConfig::from_env())
    }

    /// A shared cache with an explicit configuration.
    pub fn with_config(config: CacheConfig) -> Self {
        assert!(config.capacity > 0, "cache capacity must be positive");
        assert!(
            config.quantum.is_finite() && config.quantum > 0.0,
            "cache quantum must be positive"
        );
        let table = config.capacity.next_power_of_two().max(WAYS);
        let mut slots = Vec::with_capacity(table);
        slots.resize_with(table, OnceLock::new);
        ConcurrentTreeCache {
            config,
            inv_quantum: 1.0 / config.quantum,
            mask: table - 1,
            slots,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Behaviour counters since construction, with the live-occupancy
    /// snapshot filled in. Eviction/flush/pool counters are structurally
    /// zero: published entries are immutable and never discarded.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            entries_live: self.len() as u64,
            ..CacheStats::default()
        }
    }

    /// Number of currently published decisions.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }

    /// `true` if no decisions are published.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.get().is_none())
    }

    /// [`DecisionScratch::group_destinations_into`] through the shared
    /// cache — same contract as
    /// [`TreeCache::group_destinations_cached`], but callable through a
    /// shared reference from any number of threads at once.
    #[allow(clippy::too_many_arguments)]
    pub fn group_destinations_cached<'a>(
        &self,
        scratch: &'a mut DecisionScratch,
        topo: &Topology,
        node: NodeId,
        dests: &[NodeId],
        radio_range_aware: bool,
        perimeter_entry: Option<Point>,
        alive: Option<&[bool]>,
    ) -> &'a Grouping {
        let fp = fingerprint_with(
            self.inv_quantum,
            topo,
            node,
            dests,
            radio_range_aware,
            perimeter_entry,
            alive,
        );
        let base = fp as usize & self.mask;
        let mut stale = false;
        for way in 0..WAYS {
            let Some(published) = self.slots[(base + way) & self.mask].get() else {
                continue;
            };
            if published.fp != fp {
                continue;
            }
            if entry_matches(
                &published.entry,
                topo,
                node,
                dests,
                radio_range_aware,
                perimeter_entry,
                alive,
            ) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if self.config.paranoid {
                    scratch.group_destinations_into(
                        topo,
                        node,
                        dests,
                        radio_range_aware,
                        perimeter_entry,
                        alive,
                    );
                    assert_eq!(
                        scratch.grouping_ref(),
                        &published.entry.grouping,
                        "paranoid shared-cache check failed at node {node} for {dests:?}"
                    );
                } else {
                    scratch.load_grouping(&published.entry.grouping);
                }
                return scratch.grouping_ref();
            }
            // Same fingerprint, different exact inputs (collision after
            // quantization). Immutable entries can't be replaced, so this
            // probe recomputes; the corrected decision may still land in
            // a later way of the window.
            stale = true;
        }

        if stale {
            self.fallbacks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        scratch.group_destinations_into(
            topo,
            node,
            dests,
            radio_range_aware,
            perimeter_entry,
            alive,
        );

        // Publish into the first empty way. A resident entry that holds
        // *this* decision (same fingerprint and exact inputs — e.g. a
        // racing publisher beat us) ends the walk; a same-fingerprint
        // collision does not, so the corrected decision can land in a
        // later way where the probe loop will find it.
        let this_entry_resident = |resident: &PublishedEntry| {
            resident.fp == fp
                && entry_matches(
                    &resident.entry,
                    topo,
                    node,
                    dests,
                    radio_range_aware,
                    perimeter_entry,
                    alive,
                )
        };
        let mut boxed: Option<Box<PublishedEntry>> = None;
        for way in 0..WAYS {
            let slot = &self.slots[(base + way) & self.mask];
            if let Some(resident) = slot.get() {
                if this_entry_resident(resident) {
                    break;
                }
                continue;
            }
            let candidate = boxed.take().unwrap_or_else(|| {
                let mut published = Box::new(PublishedEntry {
                    fp,
                    entry: CacheEntry::default(),
                });
                let mut pool = Vec::new();
                fill_entry(
                    &mut published.entry,
                    &mut pool,
                    scratch.grouping_ref(),
                    topo,
                    node,
                    dests,
                    radio_range_aware,
                    perimeter_entry,
                    alive,
                );
                published
            });
            match slot.set(candidate) {
                Ok(()) => break,
                Err(lost) => {
                    if slot.get().is_some_and(|winner| this_entry_resident(winner)) {
                        break;
                    }
                    boxed = Some(lost);
                }
            }
        }
        scratch.grouping_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grouping::group_destinations;
    use gmp_net::TopologyConfig;

    fn topo() -> Topology {
        Topology::random(&TopologyConfig::new(600.0, 300, 120.0), 8)
    }

    fn dests_for(seed: u64, topo: &Topology, node: NodeId) -> Vec<NodeId> {
        let mut d: Vec<NodeId> = (0..6)
            .map(|i| NodeId(((seed * 131 + i * 97) % topo.len() as u64) as u32))
            .filter(|&d| d != node)
            .collect();
        d.sort();
        d.dedup();
        d
    }

    #[test]
    fn hit_reproduces_the_computed_grouping_exactly() {
        let topo = topo();
        let mut cache = TreeCache::with_config(CacheConfig::default());
        let mut scratch = DecisionScratch::new();
        for seed in 0..12u64 {
            let node = NodeId((seed * 71 % 300) as u32);
            let dests = dests_for(seed, &topo, node);
            let expect = group_destinations(&topo, node, &dests, true, None);
            for _ in 0..3 {
                let got = cache
                    .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
                    .clone();
                assert_eq!(got, expect, "seed {seed}");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 12);
        assert_eq!(stats.hits, 24);
        assert_eq!(stats.fallbacks, 0);
        assert!(stats.hit_rate() > 0.6);
    }

    #[test]
    fn paranoid_mode_hits_and_agrees() {
        let topo = topo();
        let mut cache = TreeCache::with_config(CacheConfig {
            paranoid: true,
            ..CacheConfig::default()
        });
        let mut scratch = DecisionScratch::new();
        let node = NodeId(17);
        let dests = dests_for(3, &topo, node);
        let a = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        let b = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn liveness_flip_falls_back_and_replaces() {
        let topo = topo();
        let mut cache = TreeCache::with_config(CacheConfig::default());
        let mut scratch = DecisionScratch::new();
        let node = NodeId(42);
        let dests = dests_for(7, &topo, node);
        let all_alive = vec![true; topo.len()];
        let mut some_dead = all_alive.clone();
        for &n in topo.neighbors(node) {
            some_dead[n.index()] = false;
        }

        // Warm with the all-alive view; `None` must then hit (normalized
        // liveness), and the dead view must recompute, not serve.
        let warm = cache
            .group_destinations_cached(
                &mut scratch,
                &topo,
                node,
                &dests,
                true,
                None,
                Some(&all_alive),
            )
            .clone();
        let none_view = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        assert_eq!(warm, none_view);
        assert_eq!(cache.stats().hits, 1);

        let dead_view = cache
            .group_destinations_cached(
                &mut scratch,
                &topo,
                node,
                &dests,
                true,
                None,
                Some(&some_dead),
            )
            .clone();
        assert_eq!(
            dead_view,
            {
                let mut s = DecisionScratch::new();
                s.group_destinations_into(&topo, node, &dests, true, None, Some(&some_dead));
                s.grouping_ref().clone()
            },
            "dead-neighbor decision must be recomputed, never served stale"
        );
        assert!(dead_view.covered.is_empty(), "all neighbors are dead");
        // Either probe shape is fine (miss under a new fingerprint or
        // fallback under the old); a stale hit is not.
        assert_eq!(cache.stats().hits, 1);

        // And the original view still resolves correctly afterwards.
        let again = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        assert_eq!(again, warm);
    }

    #[test]
    fn capacity_flush_keeps_serving_correctly() {
        let topo = topo();
        let mut cache = TreeCache::with_config(CacheConfig {
            capacity: 4,
            ..CacheConfig::default()
        });
        let mut scratch = DecisionScratch::new();
        for round in 0..3 {
            for seed in 0..10u64 {
                let node = NodeId((seed * 71 % 300) as u32);
                let dests = dests_for(seed, &topo, node);
                let got = cache
                    .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
                    .clone();
                let expect = group_destinations(&topo, node, &dests, true, None);
                assert_eq!(got, expect, "round {round} seed {seed}");
            }
        }
        assert!(cache.len() <= 4);
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        // Occupancy and flush accounting: every flush dropped a full
        // capacity's worth of entries, the snapshot matches len(), and
        // post-flush refills recycled pooled entries instead of
        // allocating fresh ones.
        assert!(stats.epoch_flushes > 0);
        assert_eq!(stats.evictions, stats.epoch_flushes * 4);
        assert_eq!(stats.entries_live, cache.len() as u64);
        assert!(stats.pool_reused > 0);
    }

    #[test]
    fn perimeter_entry_distinguishes_decisions() {
        let topo = topo();
        let mut cache = TreeCache::with_config(CacheConfig::default());
        let mut scratch = DecisionScratch::new();
        let node = NodeId(5);
        let dests = dests_for(1, &topo, node);
        let entry = Some(Point::new(10.0, 20.0));
        let plain = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        let perim = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, entry, None)
            .clone();
        assert_eq!(plain, group_destinations(&topo, node, &dests, true, None));
        assert_eq!(perim, group_destinations(&topo, node, &dests, true, entry));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn env_defaults_are_sane() {
        let config = CacheConfig::from_env();
        assert!(config.capacity > 0);
        assert!(config.quantum > 0.0);
    }

    /// A lookup table standing in for the process environment.
    fn lookup_from<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |key| {
            pairs
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        }
    }

    #[test]
    fn malformed_env_values_fall_back_to_defaults_with_warnings() {
        let defaults = CacheConfig::default();
        for bad in ["banana", "0", "-3", "1.5", ""] {
            let (config, warnings) =
                CacheConfig::from_lookup(lookup_from(&[("GMP_CACHE_CAPACITY", bad)]));
            assert_eq!(config, defaults, "capacity {bad:?}");
            assert_eq!(warnings.len(), 1, "capacity {bad:?}");
            assert!(warnings[0].contains("GMP_CACHE_CAPACITY"), "{warnings:?}");
        }
        for bad in ["banana", "0", "-1e-3", "NaN", "inf", ""] {
            let (config, warnings) =
                CacheConfig::from_lookup(lookup_from(&[("GMP_CACHE_QUANTUM", bad)]));
            assert_eq!(config, defaults, "quantum {bad:?}");
            assert_eq!(warnings.len(), 1, "quantum {bad:?}");
            assert!(warnings[0].contains("GMP_CACHE_QUANTUM"), "{warnings:?}");
        }
        // Both malformed at once: both defaults survive, both warned.
        let (config, warnings) = CacheConfig::from_lookup(lookup_from(&[
            ("GMP_CACHE_CAPACITY", "lots"),
            ("GMP_CACHE_QUANTUM", "tiny"),
        ]));
        assert_eq!(config, defaults);
        assert_eq!(warnings.len(), 2);
    }

    #[test]
    fn valid_env_values_apply_without_warnings() {
        let (config, warnings) = CacheConfig::from_lookup(lookup_from(&[
            ("GMP_CACHE_CAPACITY", "1024"),
            ("GMP_CACHE_QUANTUM", "0.5"),
            ("GMP_CACHE_PARANOID", "1"),
        ]));
        assert_eq!(config.capacity, 1024);
        assert_eq!(config.quantum, 0.5);
        assert!(config.paranoid);
        assert!(warnings.is_empty());
    }

    #[test]
    fn paranoid_accepts_any_value_but_zero() {
        for (value, expect) in [("0", false), ("1", true), ("yes", true), ("", true)] {
            let (config, warnings) =
                CacheConfig::from_lookup(lookup_from(&[("GMP_CACHE_PARANOID", value)]));
            assert_eq!(config.paranoid, expect, "paranoid {value:?}");
            assert!(warnings.is_empty());
        }
    }

    #[test]
    fn absent_env_yields_defaults_silently() {
        let (config, warnings) = CacheConfig::from_lookup(|_| None);
        assert_eq!(config, CacheConfig::default());
        assert!(warnings.is_empty());
    }

    #[test]
    fn concurrent_cache_matches_direct_compute() {
        let topo = topo();
        let cache = ConcurrentTreeCache::with_config(CacheConfig::default());
        let mut scratch = DecisionScratch::new();
        for seed in 0..12u64 {
            let node = NodeId((seed * 71 % 300) as u32);
            let dests = dests_for(seed, &topo, node);
            let expect = group_destinations(&topo, node, &dests, true, None);
            for _ in 0..3 {
                let got = cache
                    .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
                    .clone();
                assert_eq!(got, expect, "seed {seed}");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 12);
        assert_eq!(stats.hits, 24);
        assert_eq!(stats.fallbacks, 0);
        assert_eq!(stats.entries_live, cache.len() as u64);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.epoch_flushes, 0);
    }

    #[test]
    fn concurrent_cache_agrees_across_threads() {
        let topo = topo();
        let cache = ConcurrentTreeCache::with_config(CacheConfig::default());
        // Every thread hammers the same key set concurrently; each lookup
        // is checked against direct computation, so a wrongly shared or
        // torn entry fails inside the worker that observed it.
        std::thread::scope(|scope| {
            for worker in 0..4u64 {
                let topo = &topo;
                let cache = &cache;
                scope.spawn(move || {
                    let mut scratch = DecisionScratch::new();
                    for round in 0..3u64 {
                        for seed in 0..12u64 {
                            // Stagger the key order per worker so publishes
                            // and probes interleave differently.
                            let seed = (seed + worker * 5 + round) % 12;
                            let node = NodeId((seed * 71 % 300) as u32);
                            let dests = dests_for(seed, topo, node);
                            let got = cache
                                .group_destinations_cached(
                                    &mut scratch,
                                    topo,
                                    node,
                                    &dests,
                                    true,
                                    None,
                                    None,
                                )
                                .clone();
                            let expect = group_destinations(topo, node, &dests, true, None);
                            assert_eq!(got, expect, "worker {worker} seed {seed}");
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.lookups(), 4 * 3 * 12);
        // All 12 decisions are published exactly once each (no same-key
        // duplicates survive the publish walk), so a cold follow-up pass
        // is pure hits.
        let mut scratch = DecisionScratch::new();
        let before = cache.stats();
        for seed in 0..12u64 {
            let node = NodeId((seed * 71 % 300) as u32);
            let dests = dests_for(seed, &topo, node);
            cache.group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None);
        }
        let after = cache.stats();
        assert_eq!(after.hits, before.hits + 12);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn concurrent_liveness_flip_recomputes() {
        let topo = topo();
        let cache = ConcurrentTreeCache::with_config(CacheConfig::default());
        let mut scratch = DecisionScratch::new();
        let node = NodeId(42);
        let dests = dests_for(7, &topo, node);
        let all_alive = vec![true; topo.len()];
        let mut some_dead = all_alive.clone();
        for &n in topo.neighbors(node) {
            some_dead[n.index()] = false;
        }

        let warm = cache
            .group_destinations_cached(
                &mut scratch,
                &topo,
                node,
                &dests,
                true,
                None,
                Some(&all_alive),
            )
            .clone();
        let none_view = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        assert_eq!(warm, none_view, "normalized liveness must share the entry");
        assert_eq!(cache.stats().hits, 1);

        let dead_view = cache
            .group_destinations_cached(
                &mut scratch,
                &topo,
                node,
                &dests,
                true,
                None,
                Some(&some_dead),
            )
            .clone();
        let expect_dead = {
            let mut s = DecisionScratch::new();
            s.group_destinations_into(&topo, node, &dests, true, None, Some(&some_dead));
            s.grouping_ref().clone()
        };
        assert_eq!(dead_view, expect_dead, "dead view must be recomputed");
        assert_eq!(cache.stats().hits, 1);

        // Both variants are now resident under their own fingerprints.
        let again_alive = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        assert_eq!(again_alive, warm);
        let again_dead = cache
            .group_destinations_cached(
                &mut scratch,
                &topo,
                node,
                &dests,
                true,
                None,
                Some(&some_dead),
            )
            .clone();
        assert_eq!(again_dead, expect_dead);
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn concurrent_paranoid_mode_hits_and_agrees() {
        let topo = topo();
        let cache = ConcurrentTreeCache::with_config(CacheConfig {
            paranoid: true,
            ..CacheConfig::default()
        });
        let mut scratch = DecisionScratch::new();
        let node = NodeId(17);
        let dests = dests_for(3, &topo, node);
        let a = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        let b = cache
            .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
            .clone();
        assert_eq!(a, b);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn concurrent_full_window_recomputes_instead_of_evicting() {
        let topo = topo();
        // A 4-slot table (capacity rounds up to WAYS) with 10 distinct
        // decisions: windows overflow, so some keys can never publish —
        // they must recompute correctly every time, and occupancy stays
        // bounded by the table size.
        let cache = ConcurrentTreeCache::with_config(CacheConfig {
            capacity: 1,
            ..CacheConfig::default()
        });
        let mut scratch = DecisionScratch::new();
        for round in 0..3 {
            for seed in 0..10u64 {
                let node = NodeId((seed * 71 % 300) as u32);
                let dests = dests_for(seed, &topo, node);
                let got = cache
                    .group_destinations_cached(&mut scratch, &topo, node, &dests, true, None, None)
                    .clone();
                let expect = group_destinations(&topo, node, &dests, true, None);
                assert_eq!(got, expect, "round {round} seed {seed}");
            }
        }
        assert!(cache.len() <= 4);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0, "shared cache never evicts");
        assert_eq!(stats.lookups(), 30);
    }

    #[test]
    fn warmed_concurrent_cache_publishes_nothing_new() {
        let topo = topo();
        let cache = ConcurrentTreeCache::with_config(CacheConfig::default());
        let mut scratch = DecisionScratch::new();
        let replay = |cache: &ConcurrentTreeCache, scratch: &mut DecisionScratch| {
            for seed in 0..12u64 {
                let node = NodeId((seed * 71 % 300) as u32);
                let dests = dests_for(seed, &topo, node);
                cache.group_destinations_cached(scratch, &topo, node, &dests, true, None, None);
            }
        };
        replay(&cache, &mut scratch);
        let warmed = cache.len();
        let before = cache.stats();
        replay(&cache, &mut scratch);
        assert_eq!(cache.len(), warmed, "steady-state replay must not publish");
        let after = cache.stats();
        assert_eq!(after.misses, before.misses);
        assert_eq!(after.fallbacks, before.fallbacks);
        assert_eq!(after.hits, before.hits + 12);
    }
}
