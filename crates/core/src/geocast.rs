//! Geocast routing (extension): geographic unicast to the region, then
//! restricted flooding inside it.
//!
//! This is the classic location-based geocast structure \[15\]: outside the
//! target region the packet travels like a GPSR unicast aimed at the
//! region's anchor point (greedy with perimeter recovery — the same
//! machinery GMP's void handling uses); the first copy to enter the
//! region switches to restricted flooding among region members.
//!
//! Flooding is modeled as one unicast per not-yet-covered member
//! neighbor. The duplicate-suppression table lives in the protocol object
//! and is keyed by node, emulating the per-node "already seen this
//! session" bit a real deployment would keep.

use std::collections::HashSet;

use gmp_net::face::perimeter_next_hop;
use gmp_net::{NodeId, PerimeterState};
use gmp_sim::geocast::{GeocastForward, GeocastPacket, GeocastPhase, GeocastProtocol};
use gmp_sim::NodeContext;

/// Geocast router: GPSR-style approach plus region-restricted flooding.
#[derive(Debug, Clone, Default)]
pub struct GmpGeocast {
    seen: HashSet<NodeId>,
}

impl GmpGeocast {
    /// Creates the router.
    pub fn new() -> Self {
        GmpGeocast::default()
    }

    fn flood(&mut self, ctx: &NodeContext<'_>, packet: &GeocastPacket) -> Vec<GeocastForward> {
        let targets: Vec<NodeId> = ctx
            .neighbors()
            .iter()
            .copied()
            .filter(|n| packet.region.contains(ctx.pos_of(*n)))
            .filter(|n| !self.seen.contains(n))
            .collect();
        targets
            .into_iter()
            .map(|n| {
                // Mark at send time so parallel branches do not double-send
                // to the same member (emulates members overhearing).
                self.seen.insert(n);
                GeocastForward {
                    next_hop: n,
                    packet: GeocastPacket {
                        phase: GeocastPhase::Flood,
                        ..packet.clone()
                    },
                }
            })
            .collect()
    }
}

impl GeocastProtocol for GmpGeocast {
    fn name(&self) -> String {
        "GMP-geocast".into()
    }

    fn reset(&mut self) {
        self.seen.clear();
    }

    fn on_packet(&mut self, ctx: &NodeContext<'_>, packet: GeocastPacket) -> Vec<GeocastForward> {
        self.seen.insert(ctx.node);
        // Inside the region: flood to uncovered member neighbors.
        if packet.region.contains(ctx.pos()) {
            return self.flood(ctx, &packet);
        }
        // Outside: aim for the region's anchor.
        let anchor = packet.region.anchor();
        let mut perimeter = match &packet.phase {
            GeocastPhase::Perimeter(p) if !p.closer_than_entry(ctx.pos()) => Some(*p),
            _ => None,
        };
        let next_hop = if perimeter.is_none() {
            let own = ctx.pos().dist_sq(anchor);
            let greedy = ctx
                .neighbors()
                .iter()
                .copied()
                .filter(|&n| ctx.pos_of(n).dist_sq(anchor) < own)
                .min_by(|&a, &b| {
                    ctx.pos_of(a)
                        .dist_sq(anchor)
                        .total_cmp(&ctx.pos_of(b).dist_sq(anchor))
                });
            match greedy {
                Some(n) => {
                    return vec![GeocastForward {
                        next_hop: n,
                        packet: GeocastPacket {
                            phase: GeocastPhase::Approach,
                            ..packet
                        },
                    }]
                }
                None => {
                    let mut state = PerimeterState::enter(ctx.pos(), anchor);
                    match perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, &mut state) {
                        Ok(n) => {
                            perimeter = Some(state);
                            n
                        }
                        Err(_) => return Vec::new(),
                    }
                }
            }
        } else {
            match perimeter
                .as_mut()
                .map(|state| perimeter_next_hop(ctx.topo, ctx.planar_kind(), ctx.node, state))
            {
                Some(Ok(n)) => n,
                _ => return Vec::new(),
            }
        };
        vec![GeocastForward {
            next_hop,
            packet: GeocastPacket {
                phase: GeocastPhase::Perimeter(perimeter.expect("perimeter state")),
                ..packet
            },
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::{Point, Region};
    use gmp_net::topology::{Hole, Topology, TopologyConfig};
    use gmp_sim::geocast::{GeocastRunner, GeocastTask};
    use gmp_sim::SimConfig;

    #[test]
    fn covers_a_compact_region_on_dense_networks() {
        let config = SimConfig::paper().with_node_count(600);
        let topo = Topology::random(&config.topology_config(), 21);
        let runner = GeocastRunner::new(&topo, &config);
        let task = GeocastTask {
            source: NodeId(0),
            region: Region::Circle {
                center: Point::new(800.0, 800.0),
                radius: 160.0,
            },
        };
        let report = runner.run(&mut GmpGeocast::new(), &task);
        assert!(!report.members.is_empty());
        assert!(
            report.coverage() >= 0.95,
            "coverage {:.2} over {} members",
            report.coverage(),
            report.members.len()
        );
    }

    #[test]
    fn cheaper_than_global_flooding() {
        // The whole point of geographic geocast: transmissions scale with
        // the path + region size, not the network size.
        let config = SimConfig::paper().with_node_count(600);
        let topo = Topology::random(&config.topology_config(), 22);
        let runner = GeocastRunner::new(&topo, &config);
        let task = GeocastTask {
            source: NodeId(0),
            region: Region::Rect(gmp_geom::Aabb::new(
                Point::new(700.0, 700.0),
                Point::new(950.0, 950.0),
            )),
        };
        let report = runner.run(&mut GmpGeocast::new(), &task);
        assert!(report.coverage() > 0.9);
        // Global flooding would cost ≥ one transmission per node (600);
        // restricted geocast stays near members + approach path.
        assert!(
            report.transmissions < report.members.len() + 40,
            "{} transmissions for {} members",
            report.transmissions,
            report.members.len()
        );
    }

    #[test]
    fn reaches_region_across_a_void() {
        let tconfig = TopologyConfig::new(800.0, 500, 150.0).with_hole(Hole::Circle {
            center: Point::new(400.0, 400.0),
            radius: 200.0,
        });
        let topo = Topology::random(&tconfig, 23);
        let config = SimConfig::paper()
            .with_area_side(800.0)
            .with_node_count(500);
        let runner = GeocastRunner::new(&topo, &config);
        // Source on the west, region on the east: the anchor line crosses
        // the hole, forcing perimeter-mode approach.
        let near = |p: Point| {
            topo.nodes()
                .min_by(|a, b| a.pos.dist_sq(p).total_cmp(&b.pos.dist_sq(p)))
                .unwrap()
                .id
        };
        let task = GeocastTask {
            source: near(Point::new(40.0, 400.0)),
            region: Region::Circle {
                center: Point::new(720.0, 400.0),
                radius: 80.0,
            },
        };
        let report = runner.run(&mut GmpGeocast::new(), &task);
        assert!(
            report.coverage() > 0.9,
            "coverage {:.2} across the void",
            report.coverage()
        );
    }

    #[test]
    fn resets_between_tasks() {
        let config = SimConfig::paper()
            .with_node_count(300)
            .with_area_side(600.0);
        let topo = Topology::random(&config.topology_config(), 24);
        let runner = GeocastRunner::new(&topo, &config);
        let task = GeocastTask {
            source: NodeId(0),
            region: Region::Circle {
                center: Point::new(400.0, 400.0),
                radius: 120.0,
            },
        };
        let mut router = GmpGeocast::new();
        let a = runner.run(&mut router, &task);
        let b = runner.run(&mut router, &task);
        assert_eq!(a, b, "runs must be independent after reset");
    }
}
