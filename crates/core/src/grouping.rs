//! Destination grouping and next-hop selection (Figure 7, steps 1–4, plus
//! the Section 4.1 splitting rules).

use std::collections::VecDeque;

use gmp_geom::Point;
use gmp_net::{NodeId, Topology};
use gmp_steiner::rrstr::{rrstr_into, RadioRange, RrstrScratch};
use gmp_steiner::tree::{SteinerTree, VertexId, VertexKind};

/// One destination group that found a valid next hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoveredGroup {
    /// The actual destinations in the group, sorted.
    pub dests: Vec<NodeId>,
    /// The neighbor the packet copy for this group is forwarded to.
    pub next_hop: NodeId,
}

/// The outcome of running GMP's grouping at one node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Grouping {
    /// Groups with valid next hops — one packet copy each.
    pub covered: Vec<CoveredGroup>,
    /// Destinations for which even singleton groups found no neighbor with
    /// strictly smaller distance: the *void* destinations that will travel
    /// in one perimeter-mode packet.
    pub voids: Vec<NodeId>,
}

/// Reusable working state for the per-packet forwarding decision: the
/// Steiner tree, the rrSTR scratch, every traversal buffer of the
/// Figure 7 grouping loop, and a pool of recycled destination vectors.
///
/// A router owns one of these and threads it through
/// [`DecisionScratch::group_destinations_into`]; after a warm-up decision
/// of comparable size, subsequent decisions allocate nothing.
#[derive(Debug, Clone)]
pub struct DecisionScratch {
    tree: SteinerTree,
    rrstr: RrstrScratch,
    dest_points: Vec<Point>,
    queue: VecDeque<VertexId>,
    terminal_idx: Vec<usize>,
    walk: Vec<VertexId>,
    candidate: Vec<NodeId>,
    /// Emptied destination vectors recycled between decisions so covered
    /// groups never reallocate in steady state.
    group_pool: Vec<Vec<NodeId>>,
    /// The previous decision's output, recycled on the next call.
    grouping: Grouping,
}

impl Default for DecisionScratch {
    fn default() -> Self {
        DecisionScratch {
            tree: SteinerTree::new(Point::ORIGIN),
            rrstr: RrstrScratch::new(),
            dest_points: Vec::new(),
            queue: VecDeque::new(),
            terminal_idx: Vec::new(),
            walk: Vec::new(),
            candidate: Vec::new(),
            group_pool: Vec::new(),
            grouping: Grouping::default(),
        }
    }
}

impl DecisionScratch {
    /// Fresh, empty working state.
    pub fn new() -> Self {
        DecisionScratch::default()
    }

    /// Runs [`group_destinations`] through this scratch, returning the
    /// grouping by reference. Output is bit-identical to the allocating
    /// function; in steady state the call performs zero allocations.
    /// `alive` is the optional per-node liveness view under an active
    /// fault plan (see `gmp_sim::NodeContext::alive`): dead neighbors are
    /// skipped as next-hop candidates, exactly as a beacon-timeout
    /// neighbor table would drop them. `None` (or an all-`true` slice)
    /// leaves every decision bit-identical to the fault-free path.
    pub fn group_destinations_into(
        &mut self,
        topo: &Topology,
        node: NodeId,
        dests: &[NodeId],
        radio_range_aware: bool,
        perimeter_entry: Option<Point>,
        alive: Option<&[bool]>,
    ) -> &Grouping {
        // Recycle the previous decision's group vectors before clearing.
        for mut g in self.grouping.covered.drain(..) {
            g.dests.clear();
            self.group_pool.push(g.dests);
        }
        self.grouping.voids.clear();

        debug_assert!(!dests.contains(&node), "self must be stripped first");
        let here = topo.pos(node);
        let rr = topo.radio_range();
        let mode = if radio_range_aware {
            RadioRange::Aware(rr)
        } else {
            RadioRange::Ignored
        };
        self.dest_points.clear();
        self.dest_points.extend(dests.iter().map(|&d| topo.pos(d)));
        rrstr_into(
            here,
            &self.dest_points,
            mode,
            &mut self.tree,
            &mut self.rrstr,
        );
        let tree = &mut self.tree;

        self.queue.clear();
        self.queue
            .extend(tree.children(tree.root()).iter().copied());

        while let Some(pivot) = self.queue.pop_front() {
            // The Section 4.1 inner loop: keep splitting this pivot until a
            // next hop is found or it degenerates to a single void terminal.
            loop {
                tree.terminals_in_subtree_into(pivot, &mut self.terminal_idx, &mut self.walk);
                if self.terminal_idx.is_empty() {
                    // A virtual vertex stripped of all terminals carries no
                    // routing obligation.
                    break;
                }
                self.candidate.clear();
                self.candidate
                    .extend(self.terminal_idx.iter().map(|&i| dests[i]));
                let pivot_pos = tree.pos(pivot);
                if let Some(n) = find_next_hop(
                    topo,
                    node,
                    pivot_pos,
                    &self.candidate,
                    perimeter_entry,
                    alive,
                ) {
                    let mut group = self.group_pool.pop().unwrap_or_default();
                    group.extend_from_slice(&self.candidate);
                    self.grouping.covered.push(CoveredGroup {
                        dests: group,
                        next_hop: n,
                    });
                    break;
                }
                // No valid next hop. If the pivot is a bare terminal, it is
                // a void destination.
                if tree.children(pivot).is_empty() {
                    if let VertexKind::Terminal(i) = tree.kind(pivot) {
                        self.grouping.voids.push(dests[i])
                    }
                    break;
                }
                // Split: detach the last child and promote it to a pivot.
                let last = tree
                    .detach_last_child(pivot)
                    .expect("children checked non-empty");
                tree.reattach_to_root(last);
                self.queue.push_back(last);
                // If a *virtual* pivot is left with a single child, bypass it.
                if tree.children(pivot).len() == 1 && tree.is_virtual(pivot) {
                    let only = tree.detach_last_child(pivot).expect("one child");
                    tree.reattach_to_root(only);
                    self.queue.push_back(only);
                    break; // the virtual pivot is dropped
                }
                // Otherwise continue with the same (smaller) pivot.
            }
        }
        self.grouping.voids.sort();
        &self.grouping
    }

    /// Mutable access to the last decision, for the emit step (which
    /// merges groups in place and moves the void list into the perimeter
    /// packet).
    pub(crate) fn grouping_mut(&mut self) -> &mut Grouping {
        &mut self.grouping
    }

    /// Read access to the last decision, for the cache's store path.
    pub(crate) fn grouping_ref(&self) -> &Grouping {
        &self.grouping
    }

    /// Replaces the last decision with a copy of `src`, recycling the
    /// current groups' vectors through the pool — the cache-hit path,
    /// allocation-free once the pool is warm.
    pub(crate) fn load_grouping(&mut self, src: &Grouping) {
        copy_grouping_into(src, &mut self.grouping, &mut self.group_pool);
    }
}

/// Copies `src` over `dst`, recycling `dst`'s group vectors through
/// `pool` so a warmed destination never reallocates.
pub(crate) fn copy_grouping_into(src: &Grouping, dst: &mut Grouping, pool: &mut Vec<Vec<NodeId>>) {
    for mut g in dst.covered.drain(..) {
        g.dests.clear();
        pool.push(g.dests);
    }
    dst.voids.clear();
    dst.voids.extend_from_slice(&src.voids);
    for g in &src.covered {
        let mut dests = pool.pop().unwrap_or_default();
        dests.extend_from_slice(&g.dests);
        dst.covered.push(CoveredGroup {
            dests,
            next_hop: g.next_hop,
        });
    }
}

/// Splits `dests` into groups at node `node` and selects a next hop per
/// group, following Figure 7 and the Section 4.1 splitting procedure.
///
/// `radio_range_aware` toggles the Section 3.3 pruning in the underlying
/// rrSTR (GMP vs GMPnr).
///
/// The next-hop rule: among the node's unit-disk neighbors, choose the one
/// closest to the pivot among those whose total distance to the group's
/// destinations is *strictly* smaller than the current node's (the paper's
/// loop-prevention constraint).
///
/// `perimeter_entry` must be the perimeter-mode entry location when the
/// packet is in perimeter mode. While recovering, a group may leave
/// perimeter mode only through a neighbor whose total distance to the
/// group also beats the *entry point's* — the group generalization of
/// GPSR's closer-than-entry rule. Without it, the first perimeter hop
/// (which moves away from the destinations) would immediately see a
/// "valid" next hop pointing straight back, and the packet would
/// ping-pong against the void until the hop cap kills it.
/// # Example
///
/// ```
/// use gmp_core::group_destinations;
/// use gmp_net::{NodeId, Topology, TopologyConfig};
/// let topo = Topology::random(&TopologyConfig::paper(), 1);
/// let g = group_destinations(&topo, NodeId(0), &[NodeId(5), NodeId(9)], true, None);
/// let routed: usize = g.covered.iter().map(|c| c.dests.len()).sum();
/// assert_eq!(routed + g.voids.len(), 2);
/// ```
pub fn group_destinations(
    topo: &Topology,
    node: NodeId,
    dests: &[NodeId],
    radio_range_aware: bool,
    perimeter_entry: Option<Point>,
) -> Grouping {
    let mut scratch = DecisionScratch::new();
    scratch.group_destinations_into(topo, node, dests, radio_range_aware, perimeter_entry, None);
    std::mem::take(&mut scratch.grouping)
}

/// The Figure 7 next-hop rule for one group.
///
/// Returns the neighbor of `node` closest to `pivot_pos` among those whose
/// total distance to `group` strictly improves on `node`'s own (and, while
/// recovering from perimeter mode, on the entry point's — see
/// [`group_destinations`]), or `None` when the group is void from here.
/// Neighbors marked dead in the optional `alive` view are never
/// candidates (a beacon-timeout neighbor table would have dropped them).
pub fn find_next_hop(
    topo: &Topology,
    node: NodeId,
    pivot_pos: Point,
    group: &[NodeId],
    perimeter_entry: Option<Point>,
    alive: Option<&[bool]>,
) -> Option<NodeId> {
    let here = topo.pos(node);
    let total_from = |p: Point| -> f64 { group.iter().map(|&v| p.dist(topo.pos(v))).sum() };
    let mut bound = total_from(here);
    if let Some(entry) = perimeter_entry {
        bound = bound.min(total_from(entry));
    }
    // Equivalent to `neighbors.filter(total < bound − EPS).min_by(dist²
    // to pivot)` but with two exact short-circuits. A neighbor at least as
    // far from the pivot as the current best passer can never be selected
    // (`min_by` keeps the first of equals, and dist² is never NaN or
    // −0.0), so its improvement test is skipped entirely. The test itself
    // bails at the first running partial ≥ the cutoff: the partials of a
    // nonnegative left-to-right sum are nondecreasing even after rounding,
    // so the full total — the same fl sum the filter would compare — is
    // too. Both cuts leave the selected neighbor bit-identical.
    let cutoff = bound - gmp_geom::EPS;
    let mut best: Option<(f64, NodeId)> = None;
    'neighbors: for &n in topo.neighbors(node) {
        // Liveness filter first — before any float work, so an all-true
        // view is bit-identical to `None` (the zero-fault parity
        // contract).
        if let Some(a) = alive {
            if !a[n.index()] {
                continue;
            }
        }
        let p = topo.pos(n);
        let d2 = p.dist_sq(pivot_pos);
        if let Some((best_d2, _)) = best {
            if d2 >= best_d2 {
                continue;
            }
        }
        let mut sum = 0.0;
        for &v in group {
            sum += p.dist(topo.pos(v));
            if sum >= cutoff {
                continue 'neighbors;
            }
        }
        best = Some((d2, n));
    }
    best.map(|(_, n)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmp_geom::Aabb;
    use gmp_net::TopologyConfig;

    fn topo_from(positions: Vec<Point>, rr: f64) -> Topology {
        Topology::from_positions(positions, Aabb::square(2000.0), rr)
    }

    #[test]
    fn next_hop_requires_strict_improvement() {
        // Node 0 at origin, neighbor 1 behind it: no progress possible.
        let topo = topo_from(
            vec![
                Point::new(100.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(500.0, 0.0),
            ],
            150.0,
        );
        let hop = find_next_hop(
            &topo,
            NodeId(0),
            Point::new(500.0, 0.0),
            &[NodeId(2)],
            None,
            None,
        );
        assert_eq!(hop, None);
    }

    #[test]
    fn next_hop_picks_closest_to_pivot() {
        // Two improving neighbors; the one closer to the pivot wins.
        let topo = topo_from(
            vec![
                Point::new(0.0, 0.0),    // node
                Point::new(100.0, 40.0), // neighbor a
                Point::new(100.0, 0.0),  // neighbor b — closer to pivot
                Point::new(600.0, 0.0),  // destination
            ],
            150.0,
        );
        let hop = find_next_hop(
            &topo,
            NodeId(0),
            Point::new(300.0, 0.0),
            &[NodeId(3)],
            None,
            None,
        );
        assert_eq!(hop, Some(NodeId(2)));
    }

    #[test]
    fn grouping_splits_by_steiner_pivots() {
        // Two tight clusters in opposite directions: two groups, each
        // forwarded toward its own side.
        let mut positions = vec![Point::new(500.0, 500.0)]; // source 0
        positions.push(Point::new(400.0, 500.0)); // neighbor left (1)
        positions.push(Point::new(600.0, 500.0)); // neighbor right (2)
        positions.push(Point::new(100.0, 480.0)); // dest 3 (left)
        positions.push(Point::new(100.0, 520.0)); // dest 4 (left)
        positions.push(Point::new(900.0, 480.0)); // dest 5 (right)
        positions.push(Point::new(900.0, 520.0)); // dest 6 (right)
        let topo = topo_from(positions, 150.0);
        let g = group_destinations(
            &topo,
            NodeId(0),
            &[NodeId(3), NodeId(4), NodeId(5), NodeId(6)],
            true,
            None,
        );
        assert!(g.voids.is_empty());
        assert_eq!(g.covered.len(), 2);
        let mut by_hop: Vec<_> = g
            .covered
            .iter()
            .map(|c| (c.next_hop, c.dests.clone()))
            .collect();
        by_hop.sort();
        assert_eq!(by_hop[0], (NodeId(1), vec![NodeId(3), NodeId(4)]));
        assert_eq!(by_hop[1], (NodeId(2), vec![NodeId(5), NodeId(6)]));
    }

    #[test]
    fn figure_9_splitting() {
        // Figure 9: the combined pivot has no valid next hop, but after
        // splitting, each side finds one.
        let positions = vec![
            Point::new(0.0, 0.0),      // s
            Point::new(-50.0, -20.0),  // n1 (slightly behind, left)
            Point::new(50.0, -20.0),   // n2 (slightly behind, right)
            Point::new(-200.0, 300.0), // u
            Point::new(200.0, 300.0),  // v
        ];
        let topo = topo_from(positions, 150.0);
        // Sanity: neither neighbor improves the combined total.
        assert_eq!(
            find_next_hop(
                &topo,
                NodeId(0),
                Point::new(0.0, 250.0),
                &[NodeId(3), NodeId(4)],
                None,
                None
            ),
            None
        );
        let g = group_destinations(&topo, NodeId(0), &[NodeId(3), NodeId(4)], true, None);
        assert!(g.voids.is_empty(), "split should rescue both: {g:?}");
        assert_eq!(g.covered.len(), 2);
        let mut by_hop: Vec<_> = g
            .covered
            .iter()
            .map(|c| (c.next_hop, c.dests.clone()))
            .collect();
        by_hop.sort();
        assert_eq!(by_hop[0], (NodeId(1), vec![NodeId(3)]));
        assert_eq!(by_hop[1], (NodeId(2), vec![NodeId(4)]));
    }

    #[test]
    fn dead_neighbors_are_never_next_hops() {
        // Node 0 with two forward neighbors toward dest 3; the closer one
        // is preferred, a dead one is skipped, and with both dead the
        // group is void — while an all-true view changes nothing.
        let positions = vec![
            Point::new(0.0, 0.0),   // node 0
            Point::new(100.0, 0.0), // neighbor 1 (closest to pivot)
            Point::new(50.0, 80.0), // neighbor 2 (still improves)
            Point::new(500.0, 0.0), // dest 3
        ];
        let topo = topo_from(positions, 150.0);
        let pivot = Point::new(500.0, 0.0);
        let group = [NodeId(3)];
        let pick =
            |alive: Option<&[bool]>| find_next_hop(&topo, NodeId(0), pivot, &group, None, alive);
        assert_eq!(pick(None), Some(NodeId(1)));
        assert_eq!(pick(Some(&[true, true, true, true])), Some(NodeId(1)));
        assert_eq!(pick(Some(&[true, false, true, true])), Some(NodeId(2)));
        assert_eq!(pick(Some(&[true, false, false, true])), None);

        let mut scratch = DecisionScratch::new();
        let g = scratch
            .group_destinations_into(
                &topo,
                NodeId(0),
                &group,
                true,
                None,
                Some(&[true, false, false, true]),
            )
            .clone();
        assert!(g.covered.is_empty());
        assert_eq!(g.voids, vec![NodeId(3)]);
    }

    #[test]
    fn void_destination_is_reported() {
        // The only neighbor is behind the node: the destination is void.
        let positions = vec![
            Point::new(100.0, 0.0), // node 0
            Point::new(0.0, 0.0),   // neighbor 1 (backwards)
            Point::new(800.0, 0.0), // dest 2 (far forward)
        ];
        let topo = topo_from(positions, 150.0);
        let g = group_destinations(&topo, NodeId(0), &[NodeId(2)], true, None);
        assert!(g.covered.is_empty());
        assert_eq!(g.voids, vec![NodeId(2)]);
    }

    #[test]
    fn figure_10_void_joins_another_group() {
        // Figure 10: v alone is void (no neighbor is closer to v), but the
        // group {u, v} has a valid next hop, so no perimeter mode needed.
        let positions = vec![
            Point::new(0.0, 0.0),     // s
            Point::new(100.0, 60.0),  // n — improves u a lot, v slightly less
            Point::new(260.0, 120.0), // u (within n's reach after a hop)
            Point::new(120.0, 260.0), // v — n barely improves it, s's other
                                      // neighbors don't
        ];
        let topo = topo_from(positions, 150.0);
        // v alone: is any neighbor of s closer to v? n=(100,60):
        // d(n,v)=√(20²+200²)≈201 < d(s,v)=√(120²+260²)≈286 — n improves v
        // too, so to make v void alone we check the combined behaviour
        // instead: the group forwards through n either way.
        let g = group_destinations(&topo, NodeId(0), &[NodeId(2), NodeId(3)], true, None);
        assert!(g.voids.is_empty());
        let all: Vec<NodeId> = g.covered.iter().flat_map(|c| c.dests.clone()).collect();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn dense_random_networks_rarely_void() {
        let topo = Topology::random(&TopologyConfig::new(1000.0, 800, 150.0), 5);
        for seed in 0..10u64 {
            let node = NodeId((seed * 71 % 800) as u32);
            let dests: Vec<NodeId> = (0..8)
                .map(|i| NodeId(((seed * 131 + i * 97) % 800) as u32))
                .filter(|&d| d != node)
                .collect();
            let mut unique = dests.clone();
            unique.sort();
            unique.dedup();
            let g = group_destinations(&topo, node, &unique, true, None);
            let covered: usize = g.covered.iter().map(|c| c.dests.len()).sum();
            assert_eq!(
                covered + g.voids.len(),
                unique.len(),
                "partition lost a dest"
            );
            assert!(
                g.voids.is_empty(),
                "seed {seed}: unexpected voids {:?} at density ~56",
                g.voids
            );
        }
    }

    #[test]
    fn groups_partition_the_destination_set() {
        let topo = Topology::random(&TopologyConfig::new(600.0, 300, 120.0), 8);
        let dests: Vec<NodeId> = vec![NodeId(10), NodeId(50), NodeId(90), NodeId(130), NodeId(170)];
        for aware in [true, false] {
            let g = group_destinations(&topo, NodeId(0), &dests, aware, None);
            let mut all: Vec<NodeId> = g
                .covered
                .iter()
                .flat_map(|c| c.dests.clone())
                .chain(g.voids.iter().copied())
                .collect();
            all.sort();
            let mut want = dests.clone();
            want.sort();
            assert_eq!(all, want);
            // Every next hop is an actual neighbor.
            for c in &g.covered {
                assert!(topo.neighbors(NodeId(0)).contains(&c.next_hop));
            }
        }
    }
}
