//! Behavior pin for the packed-key rrSTR queues.
//!
//! `seed_ref` is a faithful replica of the previous implementation: 16-byte
//! struct entries with a three-way `total_cmp` comparator, a side heap of
//! the same entries, and a Fermat re-derivation when a re-queued exact
//! entry finally wins. The optimized implementation packs entries into one
//! `u128` compared as an integer and caches the Steiner point of re-queued
//! entries; neither change may alter a single merge decision, so the trees
//! must be bit-identical on every input.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gmp_geom::Point;
use gmp_steiner::reduction_ratio;
use gmp_steiner::rrstr::{rrstr, RadioRange};
use gmp_steiner::tree::{SteinerTree, VertexId, VertexKind};

mod seed_ref {
    use super::*;

    #[derive(Debug, Clone, Copy)]
    pub struct PairEntry {
        ratio: f64,
        u: u16,
        v: u16,
        exact: bool,
    }

    impl PartialEq for PairEntry {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for PairEntry {}
    impl PartialOrd for PairEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for PairEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.ratio
                .total_cmp(&other.ratio)
                .then_with(|| other.u.cmp(&self.u))
                .then_with(|| other.v.cmp(&self.v))
        }
    }

    #[derive(Default)]
    struct Scratch {
        sorted: Vec<PairEntry>,
        cursor: usize,
        side: BinaryHeap<PairEntry>,
        active: Vec<bool>,
        dist_s: Vec<f64>,
        active_count: usize,
    }

    impl Scratch {
        fn deactivate(&mut self, v: VertexId) {
            self.active[v] = false;
            self.active_count -= 1;
        }
        fn add_vertex(&mut self, is_active: bool, dist_to_source: f64) {
            self.active.push(is_active);
            self.active_count += usize::from(is_active);
            self.dist_s.push(dist_to_source);
        }
    }

    fn pair_entry(scratch: &Scratch, tree: &SteinerTree, u: VertexId, v: VertexId) -> PairEntry {
        let (a, b) = (u.min(v), u.max(v));
        let (pa, pb) = (tree.pos(a), tree.pos(b));
        let spokes = scratch.dist_s[a] + scratch.dist_s[b];
        let bound = if spokes <= gmp_geom::EPS {
            0.5
        } else {
            0.5 - pa.dist(pb) / (2.0 * spokes)
        };
        PairEntry {
            ratio: bound + 1e-9,
            u: a as u16,
            v: b as u16,
            exact: false,
        }
    }

    pub fn rrstr(source: Point, dests: &[Point], mode: RadioRange) -> SteinerTree {
        let mut tree = SteinerTree::new(source);
        let mut scratch = Scratch::default();
        scratch.add_vertex(false, 0.0);
        let n = dests.len();
        for (i, &d) in dests.iter().enumerate() {
            tree.add_vertex(VertexKind::Terminal(i), d);
            scratch.add_vertex(true, source.dist(d));
        }
        let mut pairs = Vec::new();
        for u in 1..=n {
            for v in (u + 1)..=n {
                pairs.push(pair_entry(&scratch, &tree, u, v));
            }
        }
        pairs.sort_unstable_by(|a, b| b.cmp(a));
        scratch.sorted = pairs;

        loop {
            let entry = if scratch.active_count < 2 {
                None
            } else {
                loop {
                    let take_sorted =
                        match (scratch.sorted.get(scratch.cursor), scratch.side.peek()) {
                            (None, None) => break None,
                            (Some(_), None) => true,
                            (None, Some(_)) => false,
                            (Some(s), Some(h)) => s.cmp(h) == Ordering::Greater,
                        };
                    let e = if take_sorted {
                        let e = scratch.sorted[scratch.cursor];
                        scratch.cursor += 1;
                        e
                    } else {
                        scratch.side.pop().unwrap()
                    };
                    let (eu, ev) = (e.u as usize, e.v as usize);
                    if !scratch.active[eu] || !scratch.active[ev] {
                        continue;
                    }
                    if e.exact {
                        break Some((e, None));
                    }
                    let exact = reduction_ratio(source, tree.pos(eu), tree.pos(ev));
                    let beats_rest = [scratch.sorted.get(scratch.cursor), scratch.side.peek()]
                        .into_iter()
                        .flatten()
                        .all(|top| exact.ratio > top.ratio);
                    let e = PairEntry {
                        ratio: exact.ratio,
                        exact: true,
                        ..e
                    };
                    if beats_rest {
                        break Some((e, Some(exact.steiner.location)));
                    }
                    scratch.side.push(e);
                }
            };
            let Some((e, steiner)) = entry else {
                for v in 1..tree.len() {
                    if scratch.active[v] {
                        tree.add_edge(tree.root(), v);
                        scratch.deactivate(v);
                    }
                }
                break;
            };

            let (u, v) = (e.u as usize, e.v as usize);
            let (pu, pv) = (tree.pos(u), tree.pos(v));
            // Re-queued entries re-derive their Steiner point.
            let t = steiner.unwrap_or_else(|| reduction_ratio(source, pu, pv).steiner.location);

            if t.almost_eq(source) {
                tree.add_edge(tree.root(), u);
                tree.add_edge(tree.root(), v);
                scratch.deactivate(u);
                scratch.deactivate(v);
            } else if t.almost_eq(pu) {
                tree.add_edge(u, v);
                scratch.deactivate(v);
            } else if t.almost_eq(pv) {
                tree.add_edge(v, u);
                scratch.deactivate(u);
            } else if let RadioRange::Aware(rr) = mode {
                let du = scratch.dist_s[u];
                let dv = scratch.dist_s[v];
                let spokes = du + dv;
                let via_t = t.dist(pu) + t.dist(pv);
                if du < rr && dv < rr {
                    // Junction suppressed; pair dropped.
                } else if du < rr {
                    if rr + via_t > spokes {
                        // Dropped.
                    } else {
                        tree.add_edge(u, v);
                        scratch.deactivate(v);
                    }
                } else if dv < rr {
                    if rr + via_t > spokes {
                        // Dropped.
                    } else {
                        tree.add_edge(v, u);
                        scratch.deactivate(u);
                    }
                } else if source.dist(t) < rr && rr + via_t > spokes {
                    tree.add_edge(tree.root(), u);
                    tree.add_edge(tree.root(), v);
                    scratch.deactivate(u);
                    scratch.deactivate(v);
                } else {
                    create_virtual(&mut tree, &mut scratch, source, t, u, v);
                }
            } else {
                create_virtual(&mut tree, &mut scratch, source, t, u, v);
            }
        }
        tree
    }

    fn create_virtual(
        tree: &mut SteinerTree,
        scratch: &mut Scratch,
        source: Point,
        t: Point,
        u: VertexId,
        v: VertexId,
    ) {
        let w = tree.add_vertex(VertexKind::Virtual, t);
        tree.add_edge(w, u);
        tree.add_edge(w, v);
        scratch.deactivate(u);
        scratch.deactivate(v);
        scratch.add_vertex(true, source.dist(t));
        for i in 1..w {
            if scratch.active[i] {
                let e = pair_entry(scratch, tree, w, i);
                scratch.side.push(e);
            }
        }
    }
}

fn assert_identical(source: Point, dests: &[Point], mode: RadioRange) {
    let reference = seed_ref::rrstr(source, dests, mode);
    let optimized = rrstr(source, dests, mode);
    assert_eq!(
        optimized, reference,
        "trees diverged for source {source} dests {dests:?} mode {mode:?}"
    );
    assert_eq!(optimized.edges(), reference.edges());
    assert_eq!(
        optimized.total_length().to_bits(),
        reference.total_length().to_bits(),
        "lengths diverged bitwise"
    );
}

#[test]
fn handcrafted_cases_are_bit_identical() {
    let cases: &[&[Point]] = &[
        &[],
        &[Point::new(500.0, 0.0)],
        &[Point::new(600.0, 40.0), Point::new(600.0, -40.0)],
        &[Point::new(400.0, 0.0), Point::new(-400.0, 0.0)],
        &[Point::new(100.0, 20.0), Point::new(100.0, -20.0)],
        &[Point::new(300.0, 100.0), Point::new(300.0, 100.0)],
        &[Point::ORIGIN, Point::new(200.0, 0.0)],
        &[
            Point::new(350.0, -60.0),
            Point::new(900.0, 80.0),
            Point::new(900.0, -80.0),
            Point::new(700.0, -200.0),
        ],
    ];
    for dests in cases {
        for mode in [
            RadioRange::Aware(150.0),
            RadioRange::Aware(1e-9),
            RadioRange::Ignored,
        ] {
            assert_identical(Point::ORIGIN, dests, mode);
        }
    }
}

#[test]
fn random_cases_are_bit_identical() {
    // Deterministic LCG so the pin is reproducible without rand.
    let mut seed = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for case in 0..300 {
        let n = 1 + case % 26;
        let dests: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
            .collect();
        let s = Point::new(next() * 1000.0, next() * 1000.0);
        let mode = match case % 3 {
            0 => RadioRange::Aware(150.0),
            1 => RadioRange::Aware(40.0),
            _ => RadioRange::Ignored,
        };
        assert_identical(s, &dests, mode);
    }
}

#[test]
fn clustered_cases_stress_the_requeue_path() {
    // Tight clusters far from the source maximize near-tie ratios, the
    // regime where exact re-queues (and the Fermat cache) actually fire.
    let mut seed = 42u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (seed >> 11) as f64 / (1u64 << 53) as f64
    };
    for case in 0..60 {
        let clusters = 2 + case % 3;
        let mut dests = Vec::new();
        for c in 0..clusters {
            let cx = 600.0 + 300.0 * next();
            let cy = 600.0 * (c as f64 / clusters as f64) + 100.0 * next();
            for _ in 0..(3 + case % 5) {
                dests.push(Point::new(cx + 40.0 * next(), cy + 40.0 * next()));
            }
        }
        for mode in [RadioRange::Aware(150.0), RadioRange::Ignored] {
            assert_identical(Point::new(10.0, 10.0), &dests, mode);
        }
    }
}
