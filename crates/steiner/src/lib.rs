//! Steiner-tree algorithms for the GMP reproduction.
//!
//! The heart of the paper is **rrSTR** (Section 3): a polynomial-time
//! heuristic for Euclidean Steiner trees driven by the *reduction ratio*
//! measure, which identifies destination pairs likely to share sub-paths.
//! This crate implements:
//!
//! * [`ratio`] — the reduction ratio `RR(s, u, v)` and its cached
//!   3-point Steiner evaluation;
//! * [`rrstr`](mod@rrstr) — the rrSTR heuristic itself, in radio-range-aware (GMP)
//!   and unaware (GMPnr) variants, producing a rooted [`tree::SteinerTree`]
//!   whose interior vertices may be *virtual* (pure Euclidean points);
//! * [`mst`] — Euclidean minimum spanning trees (Prim), the partitioning
//!   engine of the LGS baseline \[5\];
//! * [`kmb`] — the Kou–Markowsky–Berman graph Steiner heuristic \[16\] used
//!   by the centralized SMT baseline.
//!
//! # Example
//!
//! ```
//! use gmp_geom::Point;
//! use gmp_steiner::rrstr::{rrstr, RadioRange};
//!
//! let s = Point::new(0.0, 0.0);
//! let dests = vec![Point::new(300.0, 40.0), Point::new(300.0, -40.0)];
//! let tree = rrstr(s, &dests, RadioRange::Aware(150.0));
//! // Both destinations are covered by the tree.
//! assert_eq!(tree.terminal_count(), 2);
//! // Far-apart, close-together destinations share a virtual junction, so
//! // the Steiner tree is shorter than the two direct spokes.
//! assert!(tree.total_length() < 2.0 * 300.0 + 80.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kmb;
pub mod mst;
pub mod ratio;
pub mod reference;
pub mod rrstr;
pub mod tree;

pub use ratio::{pair_bound_batch, reduction_ratio, reduction_ratio_with_spokes, PairEval};
pub use rrstr::{rrstr, RadioRange};
pub use tree::{SteinerTree, VertexKind};
