//! A deliberately naive reference implementation of rrSTR.
//!
//! [`rrstr_reference`] transcribes Figure 3 of the paper with linear
//! scans and no caching — `O(n³)` per tree but simple enough to audit
//! line-by-line against the pseudocode. The production
//! [`rrstr`](crate::rrstr::rrstr) (lazy priority queue, `O(n² log n)`)
//! is property-tested to produce *identical* trees, so any future
//! optimization of the fast path is pinned to this executable
//! specification.

use gmp_geom::Point;

use crate::ratio::reduction_ratio;
use crate::rrstr::RadioRange;
use crate::tree::{SteinerTree, VertexId, VertexKind};

/// Builds the rrSTR tree by scanning all active pairs at every iteration.
///
/// Produces exactly the same tree as [`rrstr`](crate::rrstr::rrstr); use
/// that in protocol code and this only as a test oracle.
#[allow(clippy::needless_range_loop)] // `active` is a parallel activity vector
pub fn rrstr_reference(source: Point, dests: &[Point], mode: RadioRange) -> SteinerTree {
    let mut tree = SteinerTree::new(source);
    let mut active: Vec<bool> = vec![false];
    for (i, &d) in dests.iter().enumerate() {
        tree.add_vertex(VertexKind::Terminal(i), d);
        active.push(true);
    }
    let mut dead_pairs: Vec<(VertexId, VertexId)> = Vec::new();

    loop {
        // Scan every active, non-dead pair for the largest reduction
        // ratio; ties broken toward smaller vertex ids, matching the fast
        // implementation's deterministic ordering.
        let mut best: Option<(f64, VertexId, VertexId)> = None;
        for u in 1..tree.len() {
            if !active[u] {
                continue;
            }
            for v in (u + 1)..tree.len() {
                if !active[v] || dead_pairs.contains(&(u, v)) {
                    continue;
                }
                let e = reduction_ratio(source, tree.pos(u), tree.pos(v));
                let better = match best {
                    None => true,
                    Some((br, bu, bv)) => e.ratio > br || (e.ratio == br && (u, v) < (bu, bv)),
                };
                if better {
                    best = Some((e.ratio, u, v));
                }
            }
        }
        let Some((_, u, v)) = best else {
            for v in 1..tree.len() {
                if active[v] {
                    tree.add_edge(tree.root(), v);
                    active[v] = false;
                }
            }
            break;
        };

        let (pu, pv) = (tree.pos(u), tree.pos(v));
        let t = reduction_ratio(source, pu, pv).steiner.location;
        if t.almost_eq(source) {
            tree.add_edge(tree.root(), u);
            tree.add_edge(tree.root(), v);
            active[u] = false;
            active[v] = false;
        } else if t.almost_eq(pu) {
            tree.add_edge(u, v);
            active[v] = false;
        } else if t.almost_eq(pv) {
            tree.add_edge(v, u);
            active[u] = false;
        } else if let RadioRange::Aware(rr) = mode {
            let du = source.dist(pu);
            let dv = source.dist(pv);
            let spokes = du + dv;
            let via_t = t.dist(pu) + t.dist(pv);
            if du < rr && dv < rr {
                dead_pairs.push((u, v));
            } else if du < rr {
                if rr + via_t > spokes {
                    dead_pairs.push((u, v));
                } else {
                    tree.add_edge(u, v);
                    active[v] = false;
                }
            } else if dv < rr {
                if rr + via_t > spokes {
                    dead_pairs.push((u, v));
                } else {
                    tree.add_edge(v, u);
                    active[u] = false;
                }
            } else if source.dist(t) < rr && rr + via_t > spokes {
                tree.add_edge(tree.root(), u);
                tree.add_edge(tree.root(), v);
                active[u] = false;
                active[v] = false;
            } else {
                make_virtual(&mut tree, &mut active, t, u, v);
            }
        } else {
            make_virtual(&mut tree, &mut active, t, u, v);
        }
    }
    tree
}

fn make_virtual(
    tree: &mut SteinerTree,
    active: &mut Vec<bool>,
    t: Point,
    u: VertexId,
    v: VertexId,
) {
    let w = tree.add_vertex(VertexKind::Virtual, t);
    tree.add_edge(w, u);
    tree.add_edge(w, v);
    active[u] = false;
    active[v] = false;
    active.push(true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rrstr::rrstr;

    #[test]
    fn matches_fast_implementation_on_fixed_cases() {
        let s = Point::new(100.0, 100.0);
        let cases: Vec<Vec<Point>> = vec![
            vec![Point::new(500.0, 120.0)],
            vec![Point::new(500.0, 140.0), Point::new(500.0, 60.0)],
            vec![
                Point::new(420.0, 240.0),
                Point::new(900.0, 380.0),
                Point::new(900.0, 220.0),
                Point::new(720.0, 100.0),
            ],
            vec![
                Point::new(150.0, 110.0), // within radio range
                Point::new(160.0, 80.0),  // within radio range
                Point::new(800.0, 800.0),
            ],
        ];
        for dests in cases {
            for mode in [RadioRange::Aware(150.0), RadioRange::Ignored] {
                assert_eq!(
                    rrstr(s, &dests, mode),
                    rrstr_reference(s, &dests, mode),
                    "mismatch on {dests:?} / {mode:?}"
                );
            }
        }
    }

    #[test]
    fn matches_fast_implementation_on_pseudorandom_inputs() {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..60 {
            let n = 1 + case % 10;
            let s = Point::new(next() * 1000.0, next() * 1000.0);
            let dests: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
                .collect();
            for mode in [RadioRange::Aware(150.0), RadioRange::Ignored] {
                let fast = rrstr(s, &dests, mode);
                let slow = rrstr_reference(s, &dests, mode);
                assert_eq!(fast, slow, "case {case} ({n} dests, {mode:?})");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::rrstr::rrstr;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn fast_and_reference_trees_are_identical(
            dests in proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..10),
            sx in 0.0..1000.0f64,
            sy in 0.0..1000.0f64,
            aware in proptest::bool::ANY,
        ) {
            let s = Point::new(sx, sy);
            let dests: Vec<Point> = dests.into_iter().map(|(x, y)| Point::new(x, y)).collect();
            let mode = if aware { RadioRange::Aware(150.0) } else { RadioRange::Ignored };
            prop_assert_eq!(rrstr(s, &dests, mode), rrstr_reference(s, &dests, mode));
        }
    }
}
