//! The rooted Steiner tree produced by rrSTR and consumed by GMP routing.
//!
//! Vertices are either the **root** (the transmitting node), **terminals**
//! (actual destinations, identified by their index in the caller's
//! destination list), or **virtual** junctions (Euclidean Steiner points
//! that need not correspond to any sensor node — the paper's key
//! flexibility over LGS).
//!
//! Children are stored in edge-insertion order: GMP's void handling
//! (Section 4.1) removes the *last* child of a pivot, which "can easily be
//! found if the order in which edges are included to the Steiner tree is
//! saved" — so we save it.

use gmp_geom::Point;

/// What a tree vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// The transmitting node the tree is rooted at.
    Root,
    /// An actual destination; the payload is its index in the destination
    /// list the tree was built from.
    Terminal(usize),
    /// A virtual Euclidean junction created by rrSTR.
    Virtual,
}

/// Handle of a vertex within a [`SteinerTree`].
pub type VertexId = usize;

/// A rooted tree over Euclidean points, with terminals and virtual
/// junctions.
///
/// Designed for reuse on the forwarding hot path: [`SteinerTree::reset`]
/// rewinds to a bare root without freeing the per-vertex child lists, so a
/// warmed-up tree rebuilds with zero allocations. Only `children[v]` for
/// `v < len()` are live; entries beyond the live length are cleared spares
/// kept for their capacity.
#[derive(Debug, Clone)]
pub struct SteinerTree {
    kinds: Vec<VertexKind>,
    positions: Vec<Point>,
    parent: Vec<Option<VertexId>>,
    /// Children in edge-insertion order. May be longer than `kinds`; the
    /// excess entries are empty spares retained across [`SteinerTree::reset`].
    children: Vec<Vec<VertexId>>,
}

impl PartialEq for SteinerTree {
    fn eq(&self, other: &Self) -> bool {
        // Compare only the live region: spare child lists kept by `reset`
        // must not distinguish a reused tree from a freshly built one.
        self.kinds == other.kinds
            && self.positions == other.positions
            && self.parent == other.parent
            && self.children[..self.kinds.len()] == other.children[..other.kinds.len()]
    }
}

impl SteinerTree {
    /// Creates a tree containing only the root at `root_pos`.
    pub fn new(root_pos: Point) -> Self {
        SteinerTree {
            kinds: vec![VertexKind::Root],
            positions: vec![root_pos],
            parent: vec![None],
            children: vec![Vec::new()],
        }
    }

    /// Rewinds to a bare root at `root_pos`, retaining every allocation:
    /// the vertex vectors keep their capacity and each child list is
    /// cleared in place rather than freed, so rebuilding a tree of
    /// comparable size allocates nothing.
    pub fn reset(&mut self, root_pos: Point) {
        self.kinds.clear();
        self.positions.clear();
        self.parent.clear();
        for c in &mut self.children {
            c.clear();
        }
        self.kinds.push(VertexKind::Root);
        self.positions.push(root_pos);
        self.parent.push(None);
        if self.children.is_empty() {
            self.children.push(Vec::new());
        }
    }

    /// The root vertex id (always `0`).
    #[inline]
    pub fn root(&self) -> VertexId {
        0
    }

    /// Number of vertices (root + terminals + virtuals).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` iff the tree contains only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Adds a detached vertex (no parent yet) and returns its id.
    pub fn add_vertex(&mut self, kind: VertexKind, pos: Point) -> VertexId {
        debug_assert!(kind != VertexKind::Root, "only one root");
        self.kinds.push(kind);
        self.positions.push(pos);
        self.parent.push(None);
        // Reuse a spare child list left behind by `reset` if one exists.
        if self.children.len() < self.kinds.len() {
            self.children.push(Vec::new());
        }
        debug_assert!(self.children[self.kinds.len() - 1].is_empty());
        self.kinds.len() - 1
    }

    /// Adds the edge `parent → child` (append order is preserved).
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent or the edge would self-loop.
    pub fn add_edge(&mut self, parent: VertexId, child: VertexId) {
        assert_ne!(parent, child, "self loop");
        assert!(
            self.parent[child].is_none(),
            "vertex {child} already attached"
        );
        self.parent[child] = Some(parent);
        self.children[parent].push(child);
    }

    /// The vertex's kind.
    #[inline]
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v]
    }

    /// The vertex's location.
    #[inline]
    pub fn pos(&self, v: VertexId) -> Point {
        self.positions[v]
    }

    /// The vertex's parent (`None` for the root and detached vertices).
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v]
    }

    /// The vertex's children in edge-insertion order.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v]
    }

    /// `true` if the vertex is a virtual junction.
    #[inline]
    pub fn is_virtual(&self, v: VertexId) -> bool {
        self.kinds[v] == VertexKind::Virtual
    }

    /// Iterates over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        0..self.kinds.len()
    }

    /// Number of terminal vertices.
    pub fn terminal_count(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| matches!(k, VertexKind::Terminal(_)))
            .count()
    }

    /// The destination-list indices of all terminals in the subtree rooted
    /// at `v` (including `v` itself if it is a terminal) — the *group* of a
    /// pivot in GMP terminology (Section 4).
    pub fn terminals_in_subtree(&self, v: VertexId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.terminals_in_subtree_into(v, &mut out, &mut stack);
        out
    }

    /// Allocation-free variant of [`SteinerTree::terminals_in_subtree`]:
    /// writes the sorted terminal indices into `out` (cleared first) using
    /// `stack` as traversal scratch.
    pub fn terminals_in_subtree_into(
        &self,
        v: VertexId,
        out: &mut Vec<usize>,
        stack: &mut Vec<VertexId>,
    ) {
        out.clear();
        stack.clear();
        stack.push(v);
        while let Some(x) = stack.pop() {
            if let VertexKind::Terminal(i) = self.kinds[x] {
                out.push(i);
            }
            stack.extend_from_slice(&self.children[x]);
        }
        out.sort_unstable();
    }

    /// The sum of all edge lengths.
    pub fn total_length(&self) -> f64 {
        self.vertex_ids()
            .filter_map(|v| self.parent[v].map(|p| self.positions[v].dist(self.positions[p])))
            .sum()
    }

    /// Detaches and returns the most recently attached child of `v`, or
    /// `None` if `v` has no children — the "last child" rule of GMP's
    /// group splitting.
    pub fn detach_last_child(&mut self, v: VertexId) -> Option<VertexId> {
        let child = self.children[v].pop()?;
        self.parent[child] = None;
        Some(child)
    }

    /// Detaches `child` from its current parent (if any) and re-attaches it
    /// under the root — used when GMP promotes a subtree to a new pivot.
    pub fn reattach_to_root(&mut self, child: VertexId) {
        if let Some(p) = self.parent[child] {
            self.children[p].retain(|&c| c != child);
        }
        let root = self.root();
        self.parent[child] = Some(root);
        self.children[root].push(child);
    }

    /// Verifies structural invariants (acyclicity via parent pointers,
    /// parent/child consistency). Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for v in self.vertex_ids() {
            for &c in &self.children[v] {
                if self.parent[c] != Some(v) {
                    return Err(format!("child {c} of {v} disagrees about its parent"));
                }
            }
            if let Some(p) = self.parent[v] {
                if !self.children[p].contains(&v) {
                    return Err(format!("vertex {v} not in parent {p}'s child list"));
                }
                // Walk to the root; must terminate within len() steps.
                let mut cur = v;
                let mut steps = 0;
                while let Some(p) = self.parent[cur] {
                    cur = p;
                    steps += 1;
                    if steps > self.len() {
                        return Err(format!("cycle through vertex {v}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// True when the root is parentless and every other vertex has a
    /// parent. Combined with a passing [`SteinerTree::check_invariants`]
    /// (consistency + acyclicity), this implies every vertex is reachable
    /// from the root — equivalent to
    /// `reachable_from_root().len() == len()` but allocation-free, so it
    /// can guard the hot path in debug builds.
    pub fn all_attached(&self) -> bool {
        self.parent[self.root()].is_none()
            && self
                .vertex_ids()
                .all(|v| v == self.root() || self.parent[v].is_some())
    }

    /// All vertices reachable from the root — equals the whole tree when
    /// every vertex has been attached.
    pub fn reachable_from_root(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend_from_slice(&self.children[v]);
        }
        out.sort_unstable();
        out
    }

    /// Edges as `(parent, child)` pairs, for rendering and tests.
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        self.vertex_ids()
            .filter_map(|v| self.parent[v].map(|p| (p, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> SteinerTree {
        // root ── w (virtual) ── t0, t1 ; root ── t2
        let mut t = SteinerTree::new(Point::new(0.0, 0.0));
        let w = t.add_vertex(VertexKind::Virtual, Point::new(10.0, 0.0));
        let t0 = t.add_vertex(VertexKind::Terminal(0), Point::new(20.0, 5.0));
        let t1 = t.add_vertex(VertexKind::Terminal(1), Point::new(20.0, -5.0));
        let t2 = t.add_vertex(VertexKind::Terminal(2), Point::new(-5.0, 0.0));
        t.add_edge(w, t0);
        t.add_edge(w, t1);
        t.add_edge(t.root(), w);
        t.add_edge(t.root(), t2);
        t
    }

    #[test]
    fn structure_accessors() {
        let t = sample_tree();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.terminal_count(), 3);
        assert_eq!(t.children(t.root()), &[1, 4]);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.kind(1), VertexKind::Virtual);
        assert!(t.is_virtual(1));
        assert!(!t.is_virtual(2));
        t.check_invariants().unwrap();
    }

    #[test]
    fn groups_are_subtree_terminals() {
        let t = sample_tree();
        assert_eq!(t.terminals_in_subtree(1), vec![0, 1]);
        assert_eq!(t.terminals_in_subtree(4), vec![2]);
        assert_eq!(t.terminals_in_subtree(t.root()), vec![0, 1, 2]);
    }

    #[test]
    fn total_length_sums_edges() {
        let t = sample_tree();
        let expected = 10.0 // root→w
            + Point::new(10.0,0.0).dist(Point::new(20.0,5.0))
            + Point::new(10.0,0.0).dist(Point::new(20.0,-5.0))
            + 5.0; // root→t2
        assert!((t.total_length() - expected).abs() < 1e-9);
    }

    #[test]
    fn detach_last_child_pops_in_insertion_order() {
        let mut t = sample_tree();
        // w's children were inserted t0 then t1 ⇒ last child is t1.
        assert_eq!(t.detach_last_child(1), Some(3));
        assert_eq!(t.parent(3), None);
        assert_eq!(t.children(1), &[2]);
        assert_eq!(t.detach_last_child(1), Some(2));
        assert_eq!(t.detach_last_child(1), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn reattach_to_root_moves_subtree() {
        let mut t = sample_tree();
        t.reattach_to_root(3); // move t1 directly under the root
        assert_eq!(t.parent(3), Some(0));
        assert_eq!(t.children(0), &[1, 4, 3]);
        assert_eq!(t.terminals_in_subtree(1), vec![0]);
        t.check_invariants().unwrap();
        assert_eq!(t.reachable_from_root(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edges_lists_parent_child_pairs() {
        let t = sample_tree();
        let mut e = t.edges();
        e.sort();
        assert_eq!(e, vec![(0, 1), (0, 4), (1, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attachment_panics() {
        let mut t = sample_tree();
        t.add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_panics() {
        let mut t = sample_tree();
        t.add_edge(2, 2);
    }

    #[test]
    fn reset_tree_rebuilds_equal_to_fresh() {
        let mut reused = sample_tree();
        reused.reset(Point::new(0.0, 0.0));
        assert!(reused.is_empty());
        assert_eq!(reused.len(), 1);
        assert_eq!(reused.children(reused.root()), &[] as &[VertexId]);
        // Rebuild the sample structure in the reused tree: it must compare
        // equal to a fresh build despite the spare child lists it retains.
        let w = reused.add_vertex(VertexKind::Virtual, Point::new(10.0, 0.0));
        let t0 = reused.add_vertex(VertexKind::Terminal(0), Point::new(20.0, 5.0));
        let t1 = reused.add_vertex(VertexKind::Terminal(1), Point::new(20.0, -5.0));
        let t2 = reused.add_vertex(VertexKind::Terminal(2), Point::new(-5.0, 0.0));
        reused.add_edge(w, t0);
        reused.add_edge(w, t1);
        reused.add_edge(reused.root(), w);
        reused.add_edge(reused.root(), t2);
        assert_eq!(reused, sample_tree());
        assert_eq!(sample_tree(), reused);
        reused.check_invariants().unwrap();
    }

    #[test]
    fn terminals_in_subtree_into_matches_allocating_version() {
        let t = sample_tree();
        let mut out = vec![99, 98]; // pre-dirtied buffers must be cleared
        let mut stack = vec![7];
        for v in t.vertex_ids() {
            t.terminals_in_subtree_into(v, &mut out, &mut stack);
            assert_eq!(out, t.terminals_in_subtree(v));
        }
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut t = sample_tree();
        // Corrupt: make vertex 2's parent pointer dangle.
        t.parent[2] = Some(4);
        assert!(t.check_invariants().is_err());
    }
}
