//! The rooted Steiner tree produced by rrSTR and consumed by GMP routing.
//!
//! Vertices are either the **root** (the transmitting node), **terminals**
//! (actual destinations, identified by their index in the caller's
//! destination list), or **virtual** junctions (Euclidean Steiner points
//! that need not correspond to any sensor node — the paper's key
//! flexibility over LGS).
//!
//! Children are stored in edge-insertion order: GMP's void handling
//! (Section 4.1) removes the *last* child of a pivot, which "can easily be
//! found if the order in which edges are included to the Steiner tree is
//! saved" — so we save it.

use gmp_geom::Point;

/// What a tree vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// The transmitting node the tree is rooted at.
    Root,
    /// An actual destination; the payload is its index in the destination
    /// list the tree was built from.
    Terminal(usize),
    /// A virtual Euclidean junction created by rrSTR.
    Virtual,
}

/// Handle of a vertex within a [`SteinerTree`].
pub type VertexId = usize;

/// A rooted tree over Euclidean points, with terminals and virtual
/// junctions.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    kinds: Vec<VertexKind>,
    positions: Vec<Point>,
    parent: Vec<Option<VertexId>>,
    /// Children in edge-insertion order.
    children: Vec<Vec<VertexId>>,
}

impl SteinerTree {
    /// Creates a tree containing only the root at `root_pos`.
    pub fn new(root_pos: Point) -> Self {
        SteinerTree {
            kinds: vec![VertexKind::Root],
            positions: vec![root_pos],
            parent: vec![None],
            children: vec![Vec::new()],
        }
    }

    /// The root vertex id (always `0`).
    #[inline]
    pub fn root(&self) -> VertexId {
        0
    }

    /// Number of vertices (root + terminals + virtuals).
    #[inline]
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// `true` iff the tree contains only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Adds a detached vertex (no parent yet) and returns its id.
    pub fn add_vertex(&mut self, kind: VertexKind, pos: Point) -> VertexId {
        debug_assert!(kind != VertexKind::Root, "only one root");
        self.kinds.push(kind);
        self.positions.push(pos);
        self.parent.push(None);
        self.children.push(Vec::new());
        self.kinds.len() - 1
    }

    /// Adds the edge `parent → child` (append order is preserved).
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent or the edge would self-loop.
    pub fn add_edge(&mut self, parent: VertexId, child: VertexId) {
        assert_ne!(parent, child, "self loop");
        assert!(
            self.parent[child].is_none(),
            "vertex {child} already attached"
        );
        self.parent[child] = Some(parent);
        self.children[parent].push(child);
    }

    /// The vertex's kind.
    #[inline]
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v]
    }

    /// The vertex's location.
    #[inline]
    pub fn pos(&self, v: VertexId) -> Point {
        self.positions[v]
    }

    /// The vertex's parent (`None` for the root and detached vertices).
    #[inline]
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v]
    }

    /// The vertex's children in edge-insertion order.
    #[inline]
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v]
    }

    /// `true` if the vertex is a virtual junction.
    #[inline]
    pub fn is_virtual(&self, v: VertexId) -> bool {
        self.kinds[v] == VertexKind::Virtual
    }

    /// Iterates over all vertex ids.
    pub fn vertex_ids(&self) -> impl Iterator<Item = VertexId> {
        0..self.kinds.len()
    }

    /// Number of terminal vertices.
    pub fn terminal_count(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| matches!(k, VertexKind::Terminal(_)))
            .count()
    }

    /// The destination-list indices of all terminals in the subtree rooted
    /// at `v` (including `v` itself if it is a terminal) — the *group* of a
    /// pivot in GMP terminology (Section 4).
    pub fn terminals_in_subtree(&self, v: VertexId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            if let VertexKind::Terminal(i) = self.kinds[x] {
                out.push(i);
            }
            stack.extend_from_slice(&self.children[x]);
        }
        out.sort_unstable();
        out
    }

    /// The sum of all edge lengths.
    pub fn total_length(&self) -> f64 {
        self.vertex_ids()
            .filter_map(|v| self.parent[v].map(|p| self.positions[v].dist(self.positions[p])))
            .sum()
    }

    /// Detaches and returns the most recently attached child of `v`, or
    /// `None` if `v` has no children — the "last child" rule of GMP's
    /// group splitting.
    pub fn detach_last_child(&mut self, v: VertexId) -> Option<VertexId> {
        let child = self.children[v].pop()?;
        self.parent[child] = None;
        Some(child)
    }

    /// Detaches `child` from its current parent (if any) and re-attaches it
    /// under the root — used when GMP promotes a subtree to a new pivot.
    pub fn reattach_to_root(&mut self, child: VertexId) {
        if let Some(p) = self.parent[child] {
            self.children[p].retain(|&c| c != child);
        }
        let root = self.root();
        self.parent[child] = Some(root);
        self.children[root].push(child);
    }

    /// Verifies structural invariants (acyclicity via parent pointers,
    /// parent/child consistency). Intended for tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        for v in self.vertex_ids() {
            for &c in &self.children[v] {
                if self.parent[c] != Some(v) {
                    return Err(format!("child {c} of {v} disagrees about its parent"));
                }
            }
            if let Some(p) = self.parent[v] {
                if !self.children[p].contains(&v) {
                    return Err(format!("vertex {v} not in parent {p}'s child list"));
                }
                // Walk to the root; must terminate within len() steps.
                let mut cur = v;
                let mut steps = 0;
                while let Some(p) = self.parent[cur] {
                    cur = p;
                    steps += 1;
                    if steps > self.len() {
                        return Err(format!("cycle through vertex {v}"));
                    }
                }
            }
        }
        Ok(())
    }

    /// All vertices reachable from the root — equals the whole tree when
    /// every vertex has been attached.
    pub fn reachable_from_root(&self) -> Vec<VertexId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(v) = stack.pop() {
            out.push(v);
            stack.extend_from_slice(&self.children[v]);
        }
        out.sort_unstable();
        out
    }

    /// Edges as `(parent, child)` pairs, for rendering and tests.
    pub fn edges(&self) -> Vec<(VertexId, VertexId)> {
        self.vertex_ids()
            .filter_map(|v| self.parent[v].map(|p| (p, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> SteinerTree {
        // root ── w (virtual) ── t0, t1 ; root ── t2
        let mut t = SteinerTree::new(Point::new(0.0, 0.0));
        let w = t.add_vertex(VertexKind::Virtual, Point::new(10.0, 0.0));
        let t0 = t.add_vertex(VertexKind::Terminal(0), Point::new(20.0, 5.0));
        let t1 = t.add_vertex(VertexKind::Terminal(1), Point::new(20.0, -5.0));
        let t2 = t.add_vertex(VertexKind::Terminal(2), Point::new(-5.0, 0.0));
        t.add_edge(w, t0);
        t.add_edge(w, t1);
        t.add_edge(t.root(), w);
        t.add_edge(t.root(), t2);
        t
    }

    #[test]
    fn structure_accessors() {
        let t = sample_tree();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.terminal_count(), 3);
        assert_eq!(t.children(t.root()), &[1, 4]);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.kind(1), VertexKind::Virtual);
        assert!(t.is_virtual(1));
        assert!(!t.is_virtual(2));
        t.check_invariants().unwrap();
    }

    #[test]
    fn groups_are_subtree_terminals() {
        let t = sample_tree();
        assert_eq!(t.terminals_in_subtree(1), vec![0, 1]);
        assert_eq!(t.terminals_in_subtree(4), vec![2]);
        assert_eq!(t.terminals_in_subtree(t.root()), vec![0, 1, 2]);
    }

    #[test]
    fn total_length_sums_edges() {
        let t = sample_tree();
        let expected = 10.0 // root→w
            + Point::new(10.0,0.0).dist(Point::new(20.0,5.0))
            + Point::new(10.0,0.0).dist(Point::new(20.0,-5.0))
            + 5.0; // root→t2
        assert!((t.total_length() - expected).abs() < 1e-9);
    }

    #[test]
    fn detach_last_child_pops_in_insertion_order() {
        let mut t = sample_tree();
        // w's children were inserted t0 then t1 ⇒ last child is t1.
        assert_eq!(t.detach_last_child(1), Some(3));
        assert_eq!(t.parent(3), None);
        assert_eq!(t.children(1), &[2]);
        assert_eq!(t.detach_last_child(1), Some(2));
        assert_eq!(t.detach_last_child(1), None);
        t.check_invariants().unwrap();
    }

    #[test]
    fn reattach_to_root_moves_subtree() {
        let mut t = sample_tree();
        t.reattach_to_root(3); // move t1 directly under the root
        assert_eq!(t.parent(3), Some(0));
        assert_eq!(t.children(0), &[1, 4, 3]);
        assert_eq!(t.terminals_in_subtree(1), vec![0]);
        t.check_invariants().unwrap();
        assert_eq!(t.reachable_from_root(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn edges_lists_parent_child_pairs() {
        let t = sample_tree();
        let mut e = t.edges();
        e.sort();
        assert_eq!(e, vec![(0, 1), (0, 4), (1, 2), (1, 3)]);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attachment_panics() {
        let mut t = sample_tree();
        t.add_edge(0, 2);
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn self_loop_panics() {
        let mut t = sample_tree();
        t.add_edge(2, 2);
    }

    #[test]
    fn invariant_checker_catches_corruption() {
        let mut t = sample_tree();
        // Corrupt: make vertex 2's parent pointer dangle.
        t.parent[2] = Some(4);
        assert!(t.check_invariants().is_err());
    }
}
