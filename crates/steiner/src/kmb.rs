//! The Kou–Markowsky–Berman (KMB) Steiner-tree heuristic on graphs \[16\].
//!
//! The paper's centralized SMT baseline assumes the source knows the whole
//! network topology and computes a near-optimal Steiner tree over the
//! unit-disk graph (2-approximation). The classical five steps:
//!
//! 1. build the *terminal distance graph* — the complete graph on the
//!    terminals weighted by shortest-path distance;
//! 2. take its MST;
//! 3. expand each MST edge into an actual shortest path, yielding a
//!    subgraph of the original;
//! 4. take the MST of that subgraph;
//! 5. repeatedly prune non-terminal leaves.
//!
//! The module is deliberately independent of `gmp-net`: the graph is an
//! adjacency list `&[Vec<(u32, f64)>]` so it works for any substrate.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A Steiner tree over graph vertices.
#[derive(Debug, Clone, PartialEq)]
pub struct KmbTree {
    /// Undirected tree edges `(u, v)` with `u < v`.
    pub edges: Vec<(u32, u32)>,
    /// Sum of edge weights.
    pub total_weight: f64,
}

impl KmbTree {
    /// Orients the tree away from `root`, returning `children[v]` lists
    /// keyed by vertex. Vertices not in the tree are absent.
    ///
    /// The SMT baseline embeds exactly this structure in its packets.
    pub fn rooted_at(&self, root: u32) -> HashMap<u32, Vec<u32>> {
        let n = self.vertex_id_bound(root);
        let children = self.rooted_children(root, n);
        let mut out = HashMap::new();
        out.insert(root, children[root as usize].clone());
        for ch in &children {
            for &v in ch {
                out.insert(v, children[v as usize].clone());
            }
        }
        out
    }

    /// [`KmbTree::rooted_at`] with vertex-indexed storage: `children[v]`
    /// for every `v < n`, where `n` bounds the graph's vertex ids.
    /// Vertices not reached from `root` simply have empty lists (and never
    /// appear as anyone's child). This is the hot-path form — one `Vec`
    /// per vertex, no hashing.
    pub fn rooted_children(&self, root: u32, n: usize) -> Vec<Vec<u32>> {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut seen = vec![false; n];
        seen[root as usize] = true;
        let mut stack = vec![root];
        while let Some(u) = stack.pop() {
            for &v in &adj[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    children[u as usize].push(v);
                    stack.push(v);
                }
            }
        }
        children
    }

    /// An exclusive upper bound on the vertex ids used by the tree (and
    /// `root`).
    fn vertex_id_bound(&self, root: u32) -> usize {
        self.edges
            .iter()
            .map(|&(u, v)| u.max(v))
            .fold(root, u32::max) as usize
            + 1
    }

    /// Number of vertices spanned by the tree.
    pub fn vertex_count(&self) -> usize {
        let mut s: Vec<u32> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            s.push(u);
            s.push(v);
        }
        s.sort_unstable();
        s.dedup();
        s.len()
    }
}

/// Dijkstra over the adjacency list; returns `(dist, prev)`.
fn dijkstra(graph: &[Vec<(u32, f64)>], source: u32) -> (Vec<f64>, Vec<Option<u32>>) {
    let n = graph.len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<u32>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source as usize] = 0.0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((kd, u))) = heap.pop() {
        let du = dist[u as usize];
        if du.to_bits() != kd {
            continue;
        }
        for &(v, w) in &graph[u as usize] {
            let alt = du + w;
            if alt < dist[v as usize] {
                dist[v as usize] = alt;
                prev[v as usize] = Some(u);
                heap.push(Reverse((alt.to_bits(), v)));
            }
        }
    }
    (dist, prev)
}

/// Disjoint-set union with path compression.
#[derive(Debug)]
struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, x: u32) -> u32 {
        if self.0[x as usize] != x {
            let r = self.find(self.0[x as usize]);
            self.0[x as usize] = r;
        }
        self.0[x as usize]
    }
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.0[ra as usize] = rb;
            true
        }
    }
}

/// Kruskal MST over an explicit edge list; returns the chosen edges.
fn kruskal(n_hint: usize, mut edges: Vec<(f64, u32, u32)>) -> Vec<(f64, u32, u32)> {
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut dsu = Dsu::new(n_hint);
    edges
        .into_iter()
        .filter(|&(_, u, v)| dsu.union(u, v))
        .collect()
}

/// Computes a KMB Steiner tree spanning `terminals` over `graph`.
///
/// Returns `None` when the terminals are not mutually connected.
///
/// # Example
///
/// ```
/// // Path graph 0—1—2—3 with unit weights; terminals {0, 3}.
/// let graph = vec![
///     vec![(1, 1.0)],
///     vec![(0, 1.0), (2, 1.0)],
///     vec![(1, 1.0), (3, 1.0)],
///     vec![(2, 1.0)],
/// ];
/// let tree = gmp_steiner::kmb::kmb(&graph, &[0, 3]).unwrap();
/// assert_eq!(tree.total_weight, 3.0);
/// assert_eq!(tree.edges.len(), 3);
/// ```
pub fn kmb(graph: &[Vec<(u32, f64)>], terminals: &[u32]) -> Option<KmbTree> {
    if terminals.is_empty() {
        return Some(KmbTree {
            edges: Vec::new(),
            total_weight: 0.0,
        });
    }
    let terminals: Vec<u32> = {
        let mut t = terminals.to_vec();
        t.sort_unstable();
        t.dedup();
        t
    };
    if terminals.len() == 1 {
        return Some(KmbTree {
            edges: Vec::new(),
            total_weight: 0.0,
        });
    }

    // Step 1: shortest paths from every terminal.
    let mut sp = Vec::with_capacity(terminals.len());
    for &t in &terminals {
        sp.push(dijkstra(graph, t));
    }
    // Terminal distance graph edges (indices into `terminals`).
    let mut tedges = Vec::new();
    for (i, (dist_i, _)) in sp.iter().enumerate() {
        for (j, &tj) in terminals.iter().enumerate().skip(i + 1) {
            let d = dist_i[tj as usize];
            if d.is_infinite() {
                return None; // disconnected terminals
            }
            tedges.push((d, i as u32, j as u32));
        }
    }
    // Step 2: MST of the terminal distance graph.
    let tmst = kruskal(terminals.len(), tedges);

    // Step 3: expand MST edges into real shortest paths.
    let mut sub_edges: Vec<(u32, u32)> = Vec::new();
    for &(_, ti, tj) in &tmst {
        // Walk predecessors from terminal j back to terminal i using the
        // Dijkstra run rooted at terminal i.
        let (_, prev) = &sp[ti as usize];
        let mut cur = terminals[tj as usize];
        while let Some(p) = prev[cur as usize] {
            sub_edges.push((p.min(cur), p.max(cur)));
            cur = p;
        }
    }
    sub_edges.sort_unstable();
    sub_edges.dedup();

    // Step 4: MST of the expanded subgraph.
    let weight_of = |u: u32, v: u32| -> f64 {
        graph[u as usize]
            .iter()
            .find(|&&(x, _)| x == v)
            .map(|&(_, w)| w)
            .expect("subgraph edge must exist in graph")
    };
    let sub_list: Vec<(f64, u32, u32)> = sub_edges
        .iter()
        .map(|&(u, v)| (weight_of(u, v), u, v))
        .collect();
    let smst = kruskal(graph.len(), sub_list);

    // Step 5: prune non-terminal leaves. Vertex-indexed adjacency plus an
    // `in_tree` membership mask replace the HashMap/HashSet pair; pruning is
    // confluent, so the worklist order does not affect the fixpoint. The
    // deterministic final iteration also makes the float summation order (and
    // thus `total_weight`) reproducible across runs.
    let mut is_terminal = vec![false; graph.len()];
    for &t in &terminals {
        is_terminal[t as usize] = true;
    }
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); graph.len()];
    let mut in_tree = vec![false; graph.len()];
    for &(w, u, v) in &smst {
        adj[u as usize].push((v, w));
        adj[v as usize].push((u, w));
        in_tree[u as usize] = true;
        in_tree[v as usize] = true;
    }
    let mut work: Vec<u32> = (0..graph.len() as u32)
        .filter(|&v| in_tree[v as usize])
        .collect();
    while let Some(v) = work.pop() {
        let v = v as usize;
        if !in_tree[v] || is_terminal[v] || adj[v].len() > 1 {
            continue;
        }
        in_tree[v] = false;
        for (n, _) in std::mem::take(&mut adj[v]) {
            adj[n as usize].retain(|&(x, _)| x != v as u32);
            work.push(n);
        }
    }
    let mut edges = Vec::new();
    let mut total = 0.0;
    for (u, ns) in adj.iter().enumerate() {
        let u = u as u32;
        for &(v, w) in ns {
            if u < v {
                edges.push((u, v));
                total += w;
            }
        }
    }
    edges.sort_unstable();
    Some(KmbTree {
        edges,
        total_weight: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Unweighted grid graph helper: `cols × rows`, unit edge weights.
    fn grid_graph(cols: usize, rows: usize) -> Vec<Vec<(u32, f64)>> {
        let id = |x: usize, y: usize| (y * cols + x) as u32;
        let mut g = vec![Vec::new(); cols * rows];
        for y in 0..rows {
            for x in 0..cols {
                if x + 1 < cols {
                    g[id(x, y) as usize].push((id(x + 1, y), 1.0));
                    g[id(x + 1, y) as usize].push((id(x, y), 1.0));
                }
                if y + 1 < rows {
                    g[id(x, y) as usize].push((id(x, y + 1), 1.0));
                    g[id(x, y + 1) as usize].push((id(x, y), 1.0));
                }
            }
        }
        g
    }

    #[test]
    fn two_terminals_get_shortest_path() {
        let g = grid_graph(5, 5);
        let tree = kmb(&g, &[0, 24]).unwrap();
        // Manhattan distance from (0,0) to (4,4) is 8.
        assert_eq!(tree.total_weight, 8.0);
        assert_eq!(tree.edges.len(), 8);
    }

    #[test]
    fn star_terminals_share_trunk() {
        // Terminals at three corners of a grid: KMB must do better than
        // three disjoint shortest paths from one of them.
        let g = grid_graph(5, 5);
        let tree = kmb(&g, &[0, 4, 20]).unwrap();
        // Independent paths from 0: 4 + 4 = ... Steiner optimum is 8 + 4?
        // Corners (0,0),(4,0),(0,4): optimal tree weight is 8 + 4 = ... at
        // most sum of pairwise SP MST = 8 + 8; KMB ≤ 2·OPT and here the MST
        // of distances picks two edges of weight 4+4... pin the exact value:
        assert!(tree.total_weight <= 8.0 + 1e-9, "got {}", tree.total_weight);
        // All terminals spanned and connected.
        let rooted = tree.rooted_at(0);
        assert!(rooted.contains_key(&4));
        assert!(rooted.contains_key(&20));
    }

    #[test]
    fn rooted_children_matches_rooted_at() {
        let g = grid_graph(5, 5);
        let tree = kmb(&g, &[0, 4, 20, 24]).unwrap();
        let map = tree.rooted_at(0);
        let vecs = tree.rooted_children(0, g.len());
        for v in 0..g.len() as u32 {
            match map.get(&v) {
                Some(cs) => assert_eq!(cs, &vecs[v as usize], "children of {v}"),
                None => assert!(vecs[v as usize].is_empty(), "unreached {v} has children"),
            }
        }
    }

    #[test]
    fn single_and_empty_terminal_sets() {
        let g = grid_graph(3, 3);
        assert_eq!(kmb(&g, &[]).unwrap().edges.len(), 0);
        assert_eq!(kmb(&g, &[5]).unwrap().edges.len(), 0);
        assert_eq!(kmb(&g, &[5, 5, 5]).unwrap().edges.len(), 0);
    }

    #[test]
    fn disconnected_terminals_return_none() {
        // Two disconnected components.
        let g = vec![
            vec![(1, 1.0)],
            vec![(0, 1.0)],
            vec![(3, 1.0)],
            vec![(2, 1.0)],
        ];
        assert_eq!(kmb(&g, &[0, 2]), None);
    }

    #[test]
    fn tree_spans_terminals_and_has_no_cycles() {
        let g = grid_graph(6, 6);
        let terminals = [0u32, 5, 30, 35, 14];
        let tree = kmb(&g, &terminals).unwrap();
        // |E| = |V| - 1 for a tree.
        assert_eq!(tree.edges.len(), tree.vertex_count() - 1);
        let rooted = tree.rooted_at(0);
        for t in terminals {
            assert!(rooted.contains_key(&t), "terminal {t} not spanned");
        }
        // Every child has exactly one parent: count appearances.
        let mut seen = HashSet::new();
        for children in rooted.values() {
            for &c in children {
                assert!(seen.insert(c), "vertex {c} has two parents");
            }
        }
    }

    #[test]
    fn no_nonterminal_leaves_remain() {
        let g = grid_graph(7, 7);
        let terminals = [0u32, 48, 6];
        let tree = kmb(&g, &terminals).unwrap();
        let mut degree: HashMap<u32, usize> = HashMap::new();
        for &(u, v) in &tree.edges {
            *degree.entry(u).or_default() += 1;
            *degree.entry(v).or_default() += 1;
        }
        for (&v, &d) in &degree {
            if d == 1 {
                assert!(terminals.contains(&v), "non-terminal leaf {v}");
            }
        }
    }

    #[test]
    fn kmb_is_within_twice_shortest_path_lower_bound() {
        // 2-approximation sanity: for terminals on a path the optimum is
        // the path itself and KMB must equal it.
        let mut g = vec![Vec::new(); 10];
        for i in 0..9u32 {
            g[i as usize].push((i + 1, 2.0));
            g[(i + 1) as usize].push((i, 2.0));
        }
        let tree = kmb(&g, &[0, 5, 9]).unwrap();
        assert_eq!(tree.total_weight, 18.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random connected graph: a spanning chain plus random extra edges.
    fn arb_graph() -> impl Strategy<Value = Vec<Vec<(u32, f64)>>> {
        (
            5usize..40,
            proptest::collection::vec((0usize..40, 0usize..40, 0.5..10.0f64), 0..80),
        )
            .prop_map(|(n, extra)| {
                let mut g = vec![Vec::new(); n];
                let add = |g: &mut Vec<Vec<(u32, f64)>>, a: usize, b: usize, w: f64| {
                    if a != b && !g[a].iter().any(|&(x, _)| x == b as u32) {
                        g[a].push((b as u32, w));
                        g[b].push((a as u32, w));
                    }
                };
                for i in 1..n {
                    add(&mut g, i - 1, i, 1.0);
                }
                for (a, b, w) in extra {
                    add(&mut g, a % n, b % n, w);
                }
                g
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn kmb_tree_spans_terminals_acyclically(
            graph in arb_graph(),
            picks in proptest::collection::vec(0usize..40, 2..8),
        ) {
            let n = graph.len();
            let terminals: Vec<u32> = picks.iter().map(|&p| (p % n) as u32).collect();
            let tree = kmb(&graph, &terminals).expect("graph is connected");
            // Tree shape: |E| = |V| − 1 (or empty for ≤1 distinct terminal).
            let mut distinct = terminals.clone();
            distinct.sort_unstable();
            distinct.dedup();
            if distinct.len() <= 1 {
                prop_assert!(tree.edges.is_empty());
                return Ok(());
            }
            prop_assert_eq!(tree.edges.len(), tree.vertex_count() - 1);
            // Every edge exists in the graph.
            for &(u, v) in &tree.edges {
                prop_assert!(graph[u as usize].iter().any(|&(x, _)| x == v));
            }
            // Spans all terminals.
            let rooted = tree.rooted_at(distinct[0]);
            for &t in &distinct {
                prop_assert!(rooted.contains_key(&t), "terminal {t} missing");
            }
            // 2-approximation bound versus the terminal-MST upper bound:
            // KMB's output never exceeds the MST of shortest-path
            // distances, which is what steps 1–2 compute. Instead of
            // re-deriving it, check the weaker sanity bound: the tree is
            // no heavier than connecting terminals sequentially.
            let mut seq_bound = 0.0;
            for w in distinct.windows(2) {
                let (dist, _) = super::dijkstra(&graph, w[0]);
                seq_bound += dist[w[1] as usize];
            }
            prop_assert!(tree.total_weight <= seq_bound + 1e-9);
        }
    }
}
