//! rrSTR: the reduction-ratio heuristic for Euclidean Steiner trees
//! (Figure 3 of the paper).
//!
//! Starting from the source and the destination set, rrSTR repeatedly
//! merges the *active* destination pair with the largest reduction ratio,
//! replacing it with a virtual destination at the pair's exact 3-point
//! Steiner point. Radio-range awareness (Section 3.3) suppresses virtual
//! junctions that would only add hops: a junction one hop away is worth a
//! transmission only if
//!
//! ```text
//! 1 + (d(t,u) + d(t,v)) / rr  <  (d(s,u) + d(s,v)) / rr
//! ```
//!
//! Where the Figure 3 pseudocode and the Section 3.3 prose disagree, this
//! implementation follows the pseudocode (see DESIGN.md).
//!
//! Complexity: `O(n² log n)` for `n` destinations, matching Section 4.2 —
//! pairs live in a lazily-invalidated priority queue keyed by reduction
//! ratio; each of the ≤ `n − 1` virtual destinations inserts `O(n)` new
//! pairs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use gmp_geom::Point;

use crate::ratio::reduction_ratio;
use crate::tree::{SteinerTree, VertexId, VertexKind};

/// Whether rrSTR applies the radio-range-aware pruning of Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RadioRange {
    /// Radio-range aware with the given range in meters — the GMP variant.
    Aware(f64),
    /// Range-oblivious — the GMPnr variant the paper ablates in Figures
    /// 11–14.
    Ignored,
}

/// A candidate pair in the priority queue. Ordered by reduction ratio with
/// vertex ids as a deterministic tiebreak.
#[derive(Debug, Clone, Copy)]
struct PairEntry {
    ratio: f64,
    steiner: Point,
    u: VertexId,
    v: VertexId,
}

impl PartialEq for PairEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PairEntry {}
impl PartialOrd for PairEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PairEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.ratio
            .total_cmp(&other.ratio)
            .then_with(|| other.u.cmp(&self.u))
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// Builds a heuristic Euclidean Steiner tree rooted at `source` spanning
/// all of `dests` (Figure 3 of the paper).
///
/// The returned tree contains one [`VertexKind::Terminal`] per destination
/// (carrying its index in `dests`) plus zero or more
/// [`VertexKind::Virtual`] junctions. Every vertex is reachable from the
/// root.
///
/// # Example
///
/// ```
/// use gmp_geom::Point;
/// use gmp_steiner::rrstr::{rrstr, RadioRange};
///
/// let tree = rrstr(
///     Point::new(0.0, 0.0),
///     &[Point::new(400.0, 30.0), Point::new(400.0, -30.0)],
///     RadioRange::Aware(150.0),
/// );
/// // The two destinations merge through one virtual junction.
/// assert_eq!(tree.len(), 4);
/// tree.check_invariants().unwrap();
/// ```
#[allow(clippy::needless_range_loop)] // `active` is a parallel activity vector
pub fn rrstr(source: Point, dests: &[Point], mode: RadioRange) -> SteinerTree {
    let mut tree = SteinerTree::new(source);
    let n = dests.len();
    let mut active: Vec<bool> = vec![false]; // root inactive
    for (i, &d) in dests.iter().enumerate() {
        let v = tree.add_vertex(VertexKind::Terminal(i), d);
        debug_assert_eq!(v, i + 1);
        active.push(true);
    }

    let mut heap: BinaryHeap<PairEntry> = BinaryHeap::new();
    let mut dead_pairs: HashSet<(VertexId, VertexId)> = HashSet::new();
    let push_pair =
        |heap: &mut BinaryHeap<PairEntry>, tree: &SteinerTree, u: VertexId, v: VertexId| {
            // Evaluate in normalized (min, max) order so the Fermat-point
            // computation is bit-identical no matter which way the pair was
            // discovered (pins the tree to the reference implementation).
            let (a, b) = (u.min(v), u.max(v));
            let e = reduction_ratio(source, tree.pos(a), tree.pos(b));
            heap.push(PairEntry {
                ratio: e.ratio,
                steiner: e.steiner.location,
                u: a,
                v: b,
            });
        };
    for u in 1..=n {
        for v in (u + 1)..=n {
            push_pair(&mut heap, &tree, u, v);
        }
    }

    loop {
        // Find the active pair with the largest reduction ratio, skipping
        // stale entries (lazy deletion).
        let entry = loop {
            match heap.pop() {
                None => break None,
                Some(e) => {
                    if active[e.u] && active[e.v] && !dead_pairs.contains(&(e.u, e.v)) {
                        break Some(e);
                    }
                }
            }
        };
        let Some(e) = entry else {
            // No distinct active pair remains: the pseudocode's terminal
            // `(u, u)` case — connect each remaining active vertex
            // directly to the source.
            for v in 1..tree.len() {
                if active[v] {
                    tree.add_edge(tree.root(), v);
                    active[v] = false;
                }
            }
            break;
        };

        let (u, v) = (e.u, e.v);
        let (pu, pv) = (tree.pos(u), tree.pos(v));
        let t = e.steiner;

        if t.almost_eq(source) {
            // Steiner point collocated with the source: direct spokes.
            tree.add_edge(tree.root(), u);
            tree.add_edge(tree.root(), v);
            active[u] = false;
            active[v] = false;
        } else if t.almost_eq(pu) {
            // Steiner point collocated with u: u covers v and stays active.
            tree.add_edge(u, v);
            active[v] = false;
        } else if t.almost_eq(pv) {
            tree.add_edge(v, u);
            active[u] = false;
        } else if let RadioRange::Aware(rr) = mode {
            let du = source.dist(pu);
            let dv = source.dist(pv);
            let spokes = du + dv;
            let via_t = t.dist(pu) + t.dist(pv);
            if du < rr && dv < rr {
                // Both already one hop away; a junction only adds hops.
                dead_pairs.insert((u, v));
            } else if du < rr {
                if rr + via_t > spokes {
                    dead_pairs.insert((u, v));
                } else {
                    // Use u itself as the junction.
                    tree.add_edge(u, v);
                    active[v] = false;
                }
            } else if dv < rr {
                if rr + via_t > spokes {
                    dead_pairs.insert((u, v));
                } else {
                    tree.add_edge(v, u);
                    active[u] = false;
                }
            } else if source.dist(t) < rr && rr + via_t > spokes {
                // Junction in range but not worth a transmission.
                tree.add_edge(tree.root(), u);
                tree.add_edge(tree.root(), v);
                active[u] = false;
                active[v] = false;
            } else {
                create_virtual(
                    &mut tree,
                    &mut active,
                    &mut heap,
                    source,
                    t,
                    u,
                    v,
                    push_pair,
                );
            }
        } else {
            create_virtual(
                &mut tree,
                &mut active,
                &mut heap,
                source,
                t,
                u,
                v,
                push_pair,
            );
        }
    }

    debug_assert!(tree.check_invariants().is_ok());
    debug_assert_eq!(tree.reachable_from_root().len(), tree.len());
    tree
}

/// Creates a virtual destination at `t` covering `u` and `v`, and enqueues
/// its pairs against every still-active vertex.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::needless_range_loop)]
fn create_virtual(
    tree: &mut SteinerTree,
    active: &mut Vec<bool>,
    heap: &mut BinaryHeap<PairEntry>,
    _source: Point,
    t: Point,
    u: VertexId,
    v: VertexId,
    push_pair: impl Fn(&mut BinaryHeap<PairEntry>, &SteinerTree, VertexId, VertexId),
) {
    let w = tree.add_vertex(VertexKind::Virtual, t);
    tree.add_edge(w, u);
    tree.add_edge(w, v);
    active[u] = false;
    active[v] = false;
    active.push(true);
    debug_assert_eq!(active.len(), tree.len());
    for i in 1..w {
        if active[i] {
            push_pair(heap, tree, w, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RR: f64 = 150.0;

    fn spokes_total(source: Point, dests: &[Point]) -> f64 {
        dests.iter().map(|&d| source.dist(d)).sum()
    }

    fn assert_spans(tree: &SteinerTree, dests: &[Point]) {
        tree.check_invariants().unwrap();
        assert_eq!(tree.reachable_from_root().len(), tree.len());
        let covered = tree.terminals_in_subtree(tree.root());
        assert_eq!(covered, (0..dests.len()).collect::<Vec<_>>());
        for v in tree.vertex_ids() {
            if let VertexKind::Terminal(i) = tree.kind(v) {
                assert_eq!(tree.pos(v), dests[i]);
            }
        }
    }

    #[test]
    fn empty_destination_set_gives_bare_root() {
        let tree = rrstr(Point::ORIGIN, &[], RadioRange::Aware(RR));
        assert!(tree.is_empty());
        assert_eq!(tree.total_length(), 0.0);
    }

    #[test]
    fn single_destination_gets_direct_edge() {
        let d = Point::new(500.0, 0.0);
        let tree = rrstr(Point::ORIGIN, &[d], RadioRange::Aware(RR));
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.children(tree.root()), &[1]);
        assert!((tree.total_length() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn far_close_pair_merges_through_virtual_junction() {
        // Observation 1: far from the source, close to each other.
        let dests = [Point::new(600.0, 40.0), Point::new(600.0, -40.0)];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        let virtuals: Vec<_> = tree.vertex_ids().filter(|&v| tree.is_virtual(v)).collect();
        assert_eq!(virtuals.len(), 1, "expected exactly one virtual junction");
        // Tree length strictly better than two direct spokes.
        assert!(tree.total_length() < spokes_total(Point::ORIGIN, &dests) - 1.0);
    }

    #[test]
    fn opposite_destinations_get_direct_spokes() {
        // Angle at source is 180° ⇒ Steiner point is the source itself.
        let dests = [Point::new(400.0, 0.0), Point::new(-400.0, 0.0)];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        assert_eq!(tree.children(tree.root()).len(), 2);
        assert!(tree.vertex_ids().all(|v| !tree.is_virtual(v)));
        assert!((tree.total_length() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn both_in_radio_range_suppresses_junction() {
        // Both destinations one hop away: range-aware rrSTR must not
        // create a virtual junction (first case of Section 3.3).
        let dests = [Point::new(100.0, 20.0), Point::new(100.0, -20.0)];
        let aware = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&aware, &dests);
        assert!(aware.vertex_ids().all(|v| !aware.is_virtual(v)));
        // Both hang directly off the root.
        assert_eq!(aware.children(aware.root()).len(), 2);

        // The range-oblivious variant happily creates the junction.
        let nr = rrstr(Point::ORIGIN, &dests, RadioRange::Ignored);
        assert_spans(&nr, &dests);
        assert!(nr.vertex_ids().any(|v| nr.is_virtual(v)));
    }

    #[test]
    fn collocated_destination_pair_chains() {
        // Two destinations at the same point: the Steiner point collapses
        // onto them, so one covers the other with a zero-length edge.
        let p = Point::new(300.0, 100.0);
        let dests = [p, p];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        assert!(tree.vertex_ids().all(|v| !tree.is_virtual(v)));
        assert!((tree.total_length() - Point::ORIGIN.dist(p)).abs() < 1e-6);
    }

    #[test]
    fn destination_at_source_is_handled() {
        let dests = [Point::ORIGIN, Point::new(200.0, 0.0)];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
    }

    #[test]
    fn figure_4_like_scenario_builds_nested_junctions() {
        // Mimics Figure 4: u,v far and close together; d a bit closer;
        // c on the way. rrSTR should merge (u,v) first, then chain.
        let s = Point::ORIGIN;
        let u = Point::new(900.0, 80.0);
        let v = Point::new(900.0, -80.0);
        let d = Point::new(700.0, -200.0);
        let c = Point::new(350.0, -60.0);
        let dests = [c, u, v, d];
        let tree = rrstr(s, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        // At least two virtual junctions (w1 for (u,v), w2 joining d).
        let virtuals = tree.vertex_ids().filter(|&x| tree.is_virtual(x)).count();
        assert!(virtuals >= 2, "expected nested junctions, got {virtuals}");
        // The root should have a single pivot (everything funnels through c's
        // direction), matching the paper's narrative.
        assert_eq!(tree.children(tree.root()).len(), 1);
    }

    #[test]
    fn tree_never_longer_than_direct_spokes() {
        // Every rrSTR merge replaces two spokes by a cheaper-or-equal
        // through-path, so the total can never exceed the star.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..20 {
            let n = 2 + case % 12;
            let dests: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
                .collect();
            let s = Point::new(next() * 1000.0, next() * 1000.0);
            for mode in [RadioRange::Aware(RR), RadioRange::Ignored] {
                let tree = rrstr(s, &dests, mode);
                assert_spans(&tree, &dests);
                assert!(
                    tree.total_length() <= spokes_total(s, &dests) + 1e-6,
                    "case {case}: tree {} > spokes {}",
                    tree.total_length(),
                    spokes_total(s, &dests)
                );
            }
        }
    }

    #[test]
    fn aware_and_unaware_agree_when_radio_range_is_tiny() {
        // With a vanishing radio range none of the Section 3.3 cases can
        // trigger, so both variants build the same tree.
        let dests = [
            Point::new(400.0, 100.0),
            Point::new(500.0, -50.0),
            Point::new(300.0, 300.0),
        ];
        let aware = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(1e-9));
        let nr = rrstr(Point::ORIGIN, &dests, RadioRange::Ignored);
        assert_eq!(aware, nr);
    }

    #[test]
    fn deterministic_across_runs() {
        let dests = [
            Point::new(123.0, 456.0),
            Point::new(789.0, 12.0),
            Point::new(345.0, 678.0),
            Point::new(901.0, 234.0),
        ];
        let a = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        let b = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_eq!(a, b);
    }

    #[test]
    fn virtual_count_bounded_by_terminals() {
        let dests: Vec<Point> = (0..15)
            .map(|i| Point::new(800.0 + (i % 5) as f64 * 30.0, (i / 5) as f64 * 40.0))
            .collect();
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Ignored);
        let virtuals = tree.vertex_ids().filter(|&v| tree.is_virtual(v)).count();
        assert!(virtuals < dests.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..max)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn rrstr_spans_all_destinations(
            dests in points(14),
            sx in 0.0..1000.0f64,
            sy in 0.0..1000.0f64,
            aware in proptest::bool::ANY,
        ) {
            let s = Point::new(sx, sy);
            let mode = if aware { RadioRange::Aware(150.0) } else { RadioRange::Ignored };
            let tree = rrstr(s, &dests, mode);
            tree.check_invariants().unwrap();
            prop_assert_eq!(tree.reachable_from_root().len(), tree.len());
            prop_assert_eq!(
                tree.terminals_in_subtree(tree.root()),
                (0..dests.len()).collect::<Vec<_>>()
            );
            let spokes: f64 = dests.iter().map(|&d| s.dist(d)).sum();
            prop_assert!(tree.total_length() <= spokes + 1e-6);
        }
    }
}
