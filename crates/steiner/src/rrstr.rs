//! rrSTR: the reduction-ratio heuristic for Euclidean Steiner trees
//! (Figure 3 of the paper).
//!
//! Starting from the source and the destination set, rrSTR repeatedly
//! merges the *active* destination pair with the largest reduction ratio,
//! replacing it with a virtual destination at the pair's exact 3-point
//! Steiner point. Radio-range awareness (Section 3.3) suppresses virtual
//! junctions that would only add hops: a junction one hop away is worth a
//! transmission only if
//!
//! ```text
//! 1 + (d(t,u) + d(t,v)) / rr  <  (d(s,u) + d(s,v)) / rr
//! ```
//!
//! Where the Figure 3 pseudocode and the Section 3.3 prose disagree, this
//! implementation follows the pseudocode (see DESIGN.md).
//!
//! Complexity: `O(n² log n)` for `n` destinations, matching Section 4.2 —
//! pairs live in a lazily-invalidated priority queue keyed by reduction
//! ratio; each of the ≤ `n − 1` virtual destinations inserts `O(n)` new
//! pairs.

use std::collections::BinaryHeap;

use gmp_geom::Point;

use crate::ratio::{pair_bound_batch, reduction_ratio_with_spokes};
use crate::tree::{SteinerTree, VertexId, VertexKind};

/// Whether rrSTR applies the radio-range-aware pruning of Section 3.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RadioRange {
    /// Radio-range aware with the given range in meters — the GMP variant.
    Aware(f64),
    /// Range-oblivious — the GMPnr variant the paper ablates in Figures
    /// 11–14.
    Ignored,
}

/// A candidate pair, packed into one integer so the sort and both queues
/// compare machine words instead of running a three-branch struct
/// comparator. Layout, most significant first:
///
/// ```text
/// [ mapped ratio : 64 ][ !u : 16 ][ !v : 16 ][ payload : 32 ]
/// ```
///
/// The ratio occupies the high bits through the order-preserving bijection
/// between `f64`s under `total_cmp` and `u64`s (flip all bits of
/// negatives, flip the sign bit of positives), so `u128 >` reproduces
/// "higher ratio first". The complemented vertex ids reproduce the
/// "smaller id first" tiebreak. The payload (exact flag + Fermat-cache
/// index, see [`RrstrScratch::fermat`]) takes no part in the ordering
/// semantics: two live entries can never agree on `(ratio, u, v)` — every
/// unordered pair enters the queue at most once as a bound and once,
/// *after* that bound was consumed, as an exact re-queue — so the payload
/// bits never decide a comparison between live entries.
///
/// Invalidation needs no per-pair bookkeeping at all: within a run a
/// vertex is deactivated at most once and never reactivated — so a popped
/// entry is valid iff both endpoints are still active, and a dropped entry
/// is retired for good simply by not re-queuing it.
///
/// Pairs enter the queue with a cheap *upper bound* on their ratio
/// (payload 0); the exact ratio is only computed when the entry surfaces
/// while both endpoints are still active, at which point it is either
/// taken immediately (if it still beats the queue) or re-queued with the
/// exact flag set and its Steiner point parked in the Fermat cache. Most
/// pairs go stale before ever surfacing, so they never pay for a Fermat
/// evaluation.
type PairKey = u128;

const EXACT_FLAG: u32 = 1 << 31;

/// Packs `(ratio, u, v, payload)` into a [`PairKey`].
#[inline]
fn pair_key(ratio: f64, u: u16, v: u16, payload: u32) -> PairKey {
    let b = ratio.to_bits();
    let mapped = b ^ (((b as i64 >> 63) as u64) | (1 << 63));
    ((mapped as u128) << 64) | (((!u) as u128) << 48) | (((!v) as u128) << 32) | payload as u128
}

/// The ratio a key was packed with, exactly (the mapping is a bijection).
#[inline]
fn key_ratio(key: PairKey) -> f64 {
    let mapped = (key >> 64) as u64;
    f64::from_bits(if mapped >> 63 == 1 {
        mapped ^ (1 << 63)
    } else {
        !mapped
    })
}

/// The `(u, v)` endpoints a key was packed with.
#[inline]
fn key_uv(key: PairKey) -> (VertexId, VertexId) {
    (
        (!(key >> 48) as u16) as VertexId,
        (!(key >> 32) as u16) as VertexId,
    )
}

/// The payload a key was packed with (exact flag + Fermat-cache index).
#[inline]
fn key_payload(key: PairKey) -> u32 {
    key as u32
}

/// Reusable working state for [`rrstr_into`].
///
/// The pair priority queue is split in two. The O(k²) initial pairs are
/// known up front, so they live in a vector sorted once in descending
/// priority order and consumed through a cursor: taking the next one is a
/// cursor bump, and — crucially — skipping a stale one costs a flag read
/// instead of a full heap sift (the overwhelming majority of entries go
/// stale before surfacing). Only entries discovered *during* the merge
/// loop (pairs against new virtual vertices, exact re-queues) go into a
/// small side heap; the front of the combined queue is the larger of
/// `sorted[cursor]` and the side heap's top, so the pop order — and with
/// it every routing decision — is identical to a single global heap.
///
/// After a warm-up run of comparable size, rebuilding a tree through the
/// same scratch performs no allocations: every buffer is cleared in place.
#[derive(Debug, Clone, Default)]
pub struct RrstrScratch {
    /// Initial pairs, descending; `sorted[cursor..]` are unconsumed.
    sorted: Vec<PairKey>,
    cursor: usize,
    /// Entries born during the merge loop — O(k) of them, so the sifts
    /// the initial pairs avoid stay cheap for the few that need them.
    side: BinaryHeap<PairKey>,
    /// Steiner points of exact re-queued entries, indexed by the key
    /// payload: when such an entry finally wins the queue its Fermat
    /// point is read back instead of re-derived (positions never change,
    /// so the cached point is the same value the seed recomputed).
    fermat: Vec<Point>,
    active: Vec<bool>,
    /// Per-vertex distance to the source, computed once at registration —
    /// the bound in [`pair_entry`] reads two of these instead of taking
    /// two square roots per candidate pair, and the Section 3.3 branches
    /// reuse them for the spoke lengths.
    dist_s: Vec<f64>,
    /// Number of `true` entries in `active`. Lets the merge loop stop as
    /// soon as fewer than two vertices are active — at that point no
    /// queued entry can be valid, and the O(k²) stale tail need not be
    /// drained.
    active_count: usize,
    /// SoA mirror of the destination coordinates (`xs[i], ys[i]` is
    /// vertex `i + 1`), feeding the batched geometry kernels: the
    /// registration distances and the O(k²) initial pair bounds run
    /// through [`gmp_geom::dist_batch`] / [`crate::ratio::pair_bound_batch`]
    /// row by row instead of one scalar call per pair.
    xs: Vec<f64>,
    /// SoA mirror of the destination y coordinates (see `xs`).
    ys: Vec<f64>,
    /// Batch kernel lanes: pair separations for the current row.
    batch_d: Vec<f64>,
    /// Batch kernel lanes: two-spoke costs for the current row.
    batch_s: Vec<f64>,
    /// Batch kernel lanes: ratio upper bounds for the current row.
    batch_b: Vec<f64>,
}

impl RrstrScratch {
    /// Fresh, empty working state.
    pub fn new() -> Self {
        RrstrScratch::default()
    }

    /// Marks `v` inactive; every heap entry involving it is now stale.
    #[inline]
    fn deactivate(&mut self, v: VertexId) {
        debug_assert!(self.active[v]);
        self.active[v] = false;
        self.active_count -= 1;
    }

    /// Registers vertex `v`. Ids must fit the entry's 16-bit fields; at
    /// rrSTR's O(n² log n) that bound is of no practical consequence.
    #[inline]
    fn add_vertex(&mut self, v: VertexId, is_active: bool, dist_to_source: f64) {
        debug_assert_eq!(self.active.len(), v);
        assert!(v <= u16::MAX as usize, "rrstr vertex id overflows u16");
        self.active.push(is_active);
        self.active_count += usize::from(is_active);
        self.dist_s.push(dist_to_source);
    }
}

/// Builds a heuristic Euclidean Steiner tree rooted at `source` spanning
/// all of `dests` (Figure 3 of the paper).
///
/// The returned tree contains one [`VertexKind::Terminal`] per destination
/// (carrying its index in `dests`) plus zero or more
/// [`VertexKind::Virtual`] junctions. Every vertex is reachable from the
/// root.
///
/// Allocates fresh working state per call; the forwarding hot path uses
/// [`rrstr_into`] with a reused [`RrstrScratch`] instead. Both produce
/// bit-identical trees.
///
/// # Example
///
/// ```
/// use gmp_geom::Point;
/// use gmp_steiner::rrstr::{rrstr, RadioRange};
///
/// let tree = rrstr(
///     Point::new(0.0, 0.0),
///     &[Point::new(400.0, 30.0), Point::new(400.0, -30.0)],
///     RadioRange::Aware(150.0),
/// );
/// // The two destinations merge through one virtual junction.
/// assert_eq!(tree.len(), 4);
/// tree.check_invariants().unwrap();
/// ```
pub fn rrstr(source: Point, dests: &[Point], mode: RadioRange) -> SteinerTree {
    let mut tree = SteinerTree::new(source);
    let mut scratch = RrstrScratch::new();
    rrstr_into(source, dests, mode, &mut tree, &mut scratch);
    tree
}

/// Builds the bound entry for the pair `(u, v)` in normalized (min, max)
/// order. The bound:
/// any tree connecting `{s, a, b}` has length at least half the triangle
/// perimeter (each pairwise distance is at most the path through the
/// tree, and summing the three paths counts every edge at most twice), so
///
/// ```text
/// RR = 1 − through/spokes ≤ 1 − (spokes + d(a,b))/(2·spokes)
///                          = ½ − d(a,b)/(2·spokes).
/// ```
///
/// A `1e-9` margin keeps the bound above the exact ratio under floating-
/// point rounding (the two are mathematically equal for collinear
/// triples). The exact ratio and Fermat point are computed lazily when
/// the entry surfaces still-valid in the merge loop.
#[inline]
fn pair_entry(scratch: &RrstrScratch, tree: &SteinerTree, u: VertexId, v: VertexId) -> PairKey {
    let (a, b) = (u.min(v), u.max(v));
    let (pa, pb) = (tree.pos(a), tree.pos(b));
    let spokes = scratch.dist_s[a] + scratch.dist_s[b];
    let bound = if spokes <= gmp_geom::EPS {
        0.5
    } else {
        0.5 - pa.dist(pb) / (2.0 * spokes)
    };
    pair_key(bound + 1e-9, a as u16, b as u16, 0)
}

/// [`rrstr`] writing into a caller-owned tree and scratch: the per-packet
/// hot path. `tree` is reset to `source`; `scratch` is reused as is.
/// Steady-state (after warm-up at comparable size) this performs zero
/// heap allocations.
pub fn rrstr_into(
    source: Point,
    dests: &[Point],
    mode: RadioRange,
    tree: &mut SteinerTree,
    scratch: &mut RrstrScratch,
) {
    tree.reset(source);
    scratch.sorted.clear();
    scratch.cursor = 0;
    scratch.side.clear();
    scratch.fermat.clear();
    scratch.active.clear();
    scratch.dist_s.clear();
    scratch.active_count = 0;
    scratch.add_vertex(tree.root(), false, 0.0);
    let n = dests.len();

    // Mirror the destinations into SoA lanes once; the registration
    // distances and every initial pair bound then run through the batch
    // kernels. Each lane is bit-identical to the scalar expression it
    // replaces (see `dist_batch` / `pair_bound_batch`), so the sorted
    // pair order — and with it every merge — is unchanged.
    scratch.xs.clear();
    scratch.ys.clear();
    for &d in dests {
        scratch.xs.push(d.x);
        scratch.ys.push(d.y);
    }
    scratch.batch_d.clear();
    scratch.batch_d.resize(n, 0.0);
    gmp_geom::dist_batch(source, &scratch.xs, &scratch.ys, &mut scratch.batch_d);
    for (i, &d) in dests.iter().enumerate() {
        let v = tree.add_vertex(VertexKind::Terminal(i), d);
        debug_assert_eq!(v, i + 1);
        let dist_to_source = scratch.batch_d[i];
        scratch.add_vertex(v, true, dist_to_source);
    }

    // Build the initial pair set as a flat vector and sort it descending
    // in one O(k² log k) pass: consuming it is then a cache-friendly scan
    // rather than k² heap sifts. Pairs are generated a row at a time —
    // row `u` holds the lanes `v = u+1..=n` — through the batch kernels;
    // `pair_entry`'s (min, max) normalization is the identity here since
    // `u < v` throughout, and the `+ 1e-9` rounding margin is applied at
    // pack time exactly as the scalar path does.
    let mut pairs = std::mem::take(&mut scratch.sorted);
    scratch.batch_b.clear();
    scratch.batch_b.resize(n.saturating_sub(1), 0.0);
    for u in 1..n {
        let lanes = n - u;
        let pu = tree.pos(u);
        let du = scratch.dist_s[u];
        gmp_geom::dist_batch(
            pu,
            &scratch.xs[u..],
            &scratch.ys[u..],
            &mut scratch.batch_d[..lanes],
        );
        scratch.batch_s.clear();
        scratch
            .batch_s
            .extend(scratch.dist_s[u + 1..=n].iter().map(|&dv| du + dv));
        pair_bound_batch(
            &scratch.batch_d[..lanes],
            &scratch.batch_s,
            &mut scratch.batch_b[..lanes],
        );
        for (j, &bound) in scratch.batch_b[..lanes].iter().enumerate() {
            let v = u + 1 + j;
            pairs.push(pair_key(bound + 1e-9, u as u16, v as u16, 0));
        }
    }
    pairs.sort_unstable_by(|a, b| b.cmp(a));
    scratch.sorted = pairs;

    // Whether the two-active endgame below already consumed its pair.
    let mut endgame_taken = false;
    loop {
        // Find the pair with the largest reduction ratio whose endpoints
        // are both still active, skipping stale entries (lazy deletion —
        // see [`PairKey`] for why the activity flags alone decide
        // validity). With fewer than two active vertices every remaining
        // entry is stale, so the O(k²) tail left in the queue after the
        // final merge is skipped wholesale instead of drained pop by pop.
        let entry = if scratch.active_count < 2 {
            None
        } else if scratch.active_count == 2 {
            // Endgame: exactly one live pair remains, so instead of
            // draining the queue down to it, evaluate it directly. This
            // is the identical decision the drain would reach: selection
            // only ever yields this pair (every other entry is stale),
            // the merge step below depends only on `(u, v, t)` — all
            // recomputed from positions, bit-identically — and if the
            // pair was already consumed *and dropped* by a Section 3.3
            // branch earlier, re-running that branch deterministically
            // re-drops it, after which the `endgame_taken` flag routes
            // straight to the terminal connect-to-root case exactly as
            // the drained queue would. Merges only ever shrink the
            // active count, so the flag can never mask a fresh pair.
            if endgame_taken {
                None
            } else {
                endgame_taken = true;
                let mut actives = scratch
                    .active
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &a)| a.then_some(i));
                let u = actives.next().expect("two active vertices");
                let v = actives.next().expect("two active vertices");
                let spokes = scratch.dist_s[u] + scratch.dist_s[v];
                let exact = reduction_ratio_with_spokes(source, tree.pos(u), tree.pos(v), spokes);
                Some((
                    pair_key(exact.ratio, u as u16, v as u16, 0),
                    exact.steiner.location,
                ))
            }
        } else {
            loop {
                // Front of the combined queue: the larger of the sorted
                // scan head and the side heap top (one integer compare —
                // live entries never tie, see [`PairKey`]).
                let take_sorted = match (scratch.sorted.get(scratch.cursor), scratch.side.peek()) {
                    (None, None) => break None,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (Some(s), Some(h)) => s > h,
                };
                let e = if take_sorted {
                    let e = scratch.sorted[scratch.cursor];
                    scratch.cursor += 1;
                    e
                } else {
                    scratch.side.pop().expect("side checked non-empty")
                };
                let (eu, ev) = key_uv(e);
                if !scratch.active[eu] || !scratch.active[ev] {
                    continue; // stale — never pays for an evaluation
                }
                let payload = key_payload(e);
                if payload & EXACT_FLAG != 0 {
                    // Its Steiner point was cached when it was re-queued.
                    break Some((e, scratch.fermat[(payload & !EXACT_FLAG) as usize]));
                }
                // A still-valid bound entry: evaluate the pair for real.
                // If its exact ratio still strictly beats both queue
                // fronts it beats every remaining pair (each entry's
                // exact ratio is at most its bound), so take it now —
                // carrying the just-computed Fermat point. On a tie,
                // defer to the queue so the vertex-id tiebreak stays
                // bit-identical; re-queue at the exact priority. The
                // comparisons use the decoded `f64` ratios with plain
                // `>`, exactly as the measure defines them (the packed
                // total order would split the `±0.0` tie differently).
                let spokes = scratch.dist_s[eu] + scratch.dist_s[ev];
                let exact = reduction_ratio_with_spokes(source, tree.pos(eu), tree.pos(ev), spokes);
                debug_assert!(exact.ratio <= key_ratio(e));
                let beats_rest = [scratch.sorted.get(scratch.cursor), scratch.side.peek()]
                    .into_iter()
                    .flatten()
                    .all(|&top| exact.ratio > key_ratio(top));
                if beats_rest {
                    let e = pair_key(exact.ratio, eu as u16, ev as u16, 0);
                    break Some((e, exact.steiner.location));
                }
                let idx = scratch.fermat.len() as u32;
                debug_assert!(idx & EXACT_FLAG == 0);
                scratch.fermat.push(exact.steiner.location);
                scratch.side.push(pair_key(
                    exact.ratio,
                    eu as u16,
                    ev as u16,
                    EXACT_FLAG | idx,
                ));
            }
        };
        let Some((e, t)) = entry else {
            // No distinct active pair remains: the pseudocode's terminal
            // `(u, u)` case — connect each remaining active vertex
            // directly to the source.
            for v in 1..tree.len() {
                if scratch.active[v] {
                    tree.add_edge(tree.root(), v);
                    scratch.deactivate(v);
                }
            }
            break;
        };

        let (u, v) = key_uv(e);
        let (pu, pv) = (tree.pos(u), tree.pos(v));

        if t.almost_eq(source) {
            // Steiner point collocated with the source: direct spokes.
            tree.add_edge(tree.root(), u);
            tree.add_edge(tree.root(), v);
            scratch.deactivate(u);
            scratch.deactivate(v);
        } else if t.almost_eq(pu) {
            // Steiner point collocated with u: u covers v and stays active.
            tree.add_edge(u, v);
            scratch.deactivate(v);
        } else if t.almost_eq(pv) {
            tree.add_edge(v, u);
            scratch.deactivate(u);
        } else if let RadioRange::Aware(rr) = mode {
            // The spoke lengths were computed at registration (`dist_s`)
            // from the same operands, so reading them back is bit-identical
            // to the two square roots the seed took here.
            let du = scratch.dist_s[u];
            let dv = scratch.dist_s[v];
            let spokes = du + dv;
            let via_t = t.dist(pu) + t.dist(pv);
            if du < rr && dv < rr {
                // Both already one hop away; a junction only adds hops.
                // Each unordered pair enters the heap exactly once (the
                // initial double loop, or once against a brand-new virtual
                // vertex), so simply dropping the popped entry retires the
                // pair for good — no dead-pair set needed.
            } else if du < rr {
                if rr + via_t > spokes {
                    // Junction not worth a hop; drop the pair (see above).
                } else {
                    // Use u itself as the junction.
                    tree.add_edge(u, v);
                    scratch.deactivate(v);
                }
            } else if dv < rr {
                if rr + via_t > spokes {
                    // Junction not worth a hop; drop the pair (see above).
                } else {
                    tree.add_edge(v, u);
                    scratch.deactivate(u);
                }
            } else if source.dist(t) < rr && rr + via_t > spokes {
                // Junction in range but not worth a transmission.
                tree.add_edge(tree.root(), u);
                tree.add_edge(tree.root(), v);
                scratch.deactivate(u);
                scratch.deactivate(v);
            } else {
                create_virtual(tree, scratch, source, t, u, v);
            }
        } else {
            create_virtual(tree, scratch, source, t, u, v);
        }
    }

    debug_assert!(tree.check_invariants().is_ok());
    // `check_invariants` + all-attached ⟹ fully reachable from the root;
    // unlike `reachable_from_root` this keeps debug builds allocation-free.
    debug_assert!(tree.all_attached());
}

/// Creates a virtual destination at `t` covering `u` and `v`, and enqueues
/// its pairs against every still-active vertex.
fn create_virtual(
    tree: &mut SteinerTree,
    scratch: &mut RrstrScratch,
    source: Point,
    t: Point,
    u: VertexId,
    v: VertexId,
) {
    let w = tree.add_vertex(VertexKind::Virtual, t);
    tree.add_edge(w, u);
    tree.add_edge(w, v);
    scratch.deactivate(u);
    scratch.deactivate(v);
    scratch.add_vertex(w, true, source.dist(t));
    debug_assert_eq!(scratch.active.len(), tree.len());
    for i in 1..w {
        if scratch.active[i] {
            let e = pair_entry(scratch, tree, w, i);
            scratch.side.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RR: f64 = 150.0;

    fn spokes_total(source: Point, dests: &[Point]) -> f64 {
        dests.iter().map(|&d| source.dist(d)).sum()
    }

    fn assert_spans(tree: &SteinerTree, dests: &[Point]) {
        tree.check_invariants().unwrap();
        assert_eq!(tree.reachable_from_root().len(), tree.len());
        let covered = tree.terminals_in_subtree(tree.root());
        assert_eq!(covered, (0..dests.len()).collect::<Vec<_>>());
        for v in tree.vertex_ids() {
            if let VertexKind::Terminal(i) = tree.kind(v) {
                assert_eq!(tree.pos(v), dests[i]);
            }
        }
    }

    #[test]
    fn empty_destination_set_gives_bare_root() {
        let tree = rrstr(Point::ORIGIN, &[], RadioRange::Aware(RR));
        assert!(tree.is_empty());
        assert_eq!(tree.total_length(), 0.0);
    }

    #[test]
    fn single_destination_gets_direct_edge() {
        let d = Point::new(500.0, 0.0);
        let tree = rrstr(Point::ORIGIN, &[d], RadioRange::Aware(RR));
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.children(tree.root()), &[1]);
        assert!((tree.total_length() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn far_close_pair_merges_through_virtual_junction() {
        // Observation 1: far from the source, close to each other.
        let dests = [Point::new(600.0, 40.0), Point::new(600.0, -40.0)];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        let virtuals: Vec<_> = tree.vertex_ids().filter(|&v| tree.is_virtual(v)).collect();
        assert_eq!(virtuals.len(), 1, "expected exactly one virtual junction");
        // Tree length strictly better than two direct spokes.
        assert!(tree.total_length() < spokes_total(Point::ORIGIN, &dests) - 1.0);
    }

    #[test]
    fn opposite_destinations_get_direct_spokes() {
        // Angle at source is 180° ⇒ Steiner point is the source itself.
        let dests = [Point::new(400.0, 0.0), Point::new(-400.0, 0.0)];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        assert_eq!(tree.children(tree.root()).len(), 2);
        assert!(tree.vertex_ids().all(|v| !tree.is_virtual(v)));
        assert!((tree.total_length() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn both_in_radio_range_suppresses_junction() {
        // Both destinations one hop away: range-aware rrSTR must not
        // create a virtual junction (first case of Section 3.3).
        let dests = [Point::new(100.0, 20.0), Point::new(100.0, -20.0)];
        let aware = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&aware, &dests);
        assert!(aware.vertex_ids().all(|v| !aware.is_virtual(v)));
        // Both hang directly off the root.
        assert_eq!(aware.children(aware.root()).len(), 2);

        // The range-oblivious variant happily creates the junction.
        let nr = rrstr(Point::ORIGIN, &dests, RadioRange::Ignored);
        assert_spans(&nr, &dests);
        assert!(nr.vertex_ids().any(|v| nr.is_virtual(v)));
    }

    #[test]
    fn collocated_destination_pair_chains() {
        // Two destinations at the same point: the Steiner point collapses
        // onto them, so one covers the other with a zero-length edge.
        let p = Point::new(300.0, 100.0);
        let dests = [p, p];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        assert!(tree.vertex_ids().all(|v| !tree.is_virtual(v)));
        assert!((tree.total_length() - Point::ORIGIN.dist(p)).abs() < 1e-6);
    }

    #[test]
    fn destination_at_source_is_handled() {
        let dests = [Point::ORIGIN, Point::new(200.0, 0.0)];
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
    }

    #[test]
    fn figure_4_like_scenario_builds_nested_junctions() {
        // Mimics Figure 4: u,v far and close together; d a bit closer;
        // c on the way. rrSTR should merge (u,v) first, then chain.
        let s = Point::ORIGIN;
        let u = Point::new(900.0, 80.0);
        let v = Point::new(900.0, -80.0);
        let d = Point::new(700.0, -200.0);
        let c = Point::new(350.0, -60.0);
        let dests = [c, u, v, d];
        let tree = rrstr(s, &dests, RadioRange::Aware(RR));
        assert_spans(&tree, &dests);
        // At least two virtual junctions (w1 for (u,v), w2 joining d).
        let virtuals = tree.vertex_ids().filter(|&x| tree.is_virtual(x)).count();
        assert!(virtuals >= 2, "expected nested junctions, got {virtuals}");
        // The root should have a single pivot (everything funnels through c's
        // direction), matching the paper's narrative.
        assert_eq!(tree.children(tree.root()).len(), 1);
    }

    #[test]
    fn tree_never_longer_than_direct_spokes() {
        // Every rrSTR merge replaces two spokes by a cheaper-or-equal
        // through-path, so the total can never exceed the star.
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for case in 0..20 {
            let n = 2 + case % 12;
            let dests: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * 1000.0, next() * 1000.0))
                .collect();
            let s = Point::new(next() * 1000.0, next() * 1000.0);
            for mode in [RadioRange::Aware(RR), RadioRange::Ignored] {
                let tree = rrstr(s, &dests, mode);
                assert_spans(&tree, &dests);
                assert!(
                    tree.total_length() <= spokes_total(s, &dests) + 1e-6,
                    "case {case}: tree {} > spokes {}",
                    tree.total_length(),
                    spokes_total(s, &dests)
                );
            }
        }
    }

    #[test]
    fn aware_and_unaware_agree_when_radio_range_is_tiny() {
        // With a vanishing radio range none of the Section 3.3 cases can
        // trigger, so both variants build the same tree.
        let dests = [
            Point::new(400.0, 100.0),
            Point::new(500.0, -50.0),
            Point::new(300.0, 300.0),
        ];
        let aware = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(1e-9));
        let nr = rrstr(Point::ORIGIN, &dests, RadioRange::Ignored);
        assert_eq!(aware, nr);
    }

    #[test]
    fn deterministic_across_runs() {
        let dests = [
            Point::new(123.0, 456.0),
            Point::new(789.0, 12.0),
            Point::new(345.0, 678.0),
            Point::new(901.0, 234.0),
        ];
        let a = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        let b = rrstr(Point::ORIGIN, &dests, RadioRange::Aware(RR));
        assert_eq!(a, b);
    }

    #[test]
    fn virtual_count_bounded_by_terminals() {
        let dests: Vec<Point> = (0..15)
            .map(|i| Point::new(800.0 + (i % 5) as f64 * 30.0, (i / 5) as f64 * 40.0))
            .collect();
        let tree = rrstr(Point::ORIGIN, &dests, RadioRange::Ignored);
        let virtuals = tree.vertex_ids().filter(|&v| tree.is_virtual(v)).count();
        assert!(virtuals < dests.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn points(max: usize) -> impl Strategy<Value = Vec<Point>> {
        proptest::collection::vec((0.0..1000.0f64, 0.0..1000.0f64), 1..max)
            .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn rrstr_spans_all_destinations(
            dests in points(14),
            sx in 0.0..1000.0f64,
            sy in 0.0..1000.0f64,
            aware in proptest::bool::ANY,
        ) {
            let s = Point::new(sx, sy);
            let mode = if aware { RadioRange::Aware(150.0) } else { RadioRange::Ignored };
            let tree = rrstr(s, &dests, mode);
            tree.check_invariants().unwrap();
            prop_assert_eq!(tree.reachable_from_root().len(), tree.len());
            prop_assert_eq!(
                tree.terminals_in_subtree(tree.root()),
                (0..dests.len()).collect::<Vec<_>>()
            );
            let spokes: f64 = dests.iter().map(|&d| s.dist(d)).sum();
            prop_assert!(tree.total_length() <= spokes + 1e-6);
        }

        #[test]
        fn scratch_reuse_is_bit_identical(
            runs in proptest::collection::vec(
                (points(12), (0.0..1000.0f64, 0.0..1000.0f64), proptest::bool::ANY),
                1..6,
            ),
        ) {
            // One scratch and tree carried across a whole sequence of
            // differently-sized builds: every rebuild must be bit-identical
            // to a fresh-allocation run (vertices, edges, and lengths),
            // regardless of what earlier runs left in the buffers.
            let mut tree = SteinerTree::new(Point::ORIGIN);
            let mut scratch = RrstrScratch::new();
            for (dests, (sx, sy), aware) in runs {
                let s = Point::new(sx, sy);
                let mode = if aware { RadioRange::Aware(150.0) } else { RadioRange::Ignored };
                let fresh = rrstr(s, &dests, mode);
                rrstr_into(s, &dests, mode, &mut tree, &mut scratch);
                prop_assert_eq!(&tree, &fresh);
                prop_assert_eq!(tree.edges(), fresh.edges());
                prop_assert!(tree.total_length().to_bits() == fresh.total_length().to_bits());
            }
        }
    }
}
