//! Euclidean minimum spanning trees over point sets (Prim's algorithm).
//!
//! LGS \[5\] partitions destinations with an MST over `{current node} ∪
//! destinations`; the paper's Figure 13 discussion hinges on exactly this
//! construction. Also used as the classical baseline in the rrSTR ablation
//! (an MST never beats a good Steiner tree, and the Steiner ratio bounds
//! how much it can lose).

use gmp_geom::Point;

/// A minimum spanning tree over a set of points, rooted at index 0.
#[derive(Debug, Clone, PartialEq)]
pub struct Mst {
    /// `parent[i]` is the tree parent of point `i` (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children lists, derived from `parent`.
    pub children: Vec<Vec<usize>>,
    /// Total edge length.
    pub total_length: f64,
}

/// Builds the Euclidean MST of `points`, rooted at `points\[0\]`, with
/// Prim's algorithm in `O(n²)` — the same bound the paper quotes for LGS.
///
/// Returns a trivial single-vertex tree for one point.
///
/// # Panics
///
/// Panics if `points` is empty.
/// # Example
///
/// ```
/// use gmp_geom::Point;
/// use gmp_steiner::mst::euclidean_mst;
/// let mst = euclidean_mst(&[
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(20.0, 0.0),
/// ]);
/// assert_eq!(mst.total_length, 20.0);
/// ```
pub fn euclidean_mst(points: &[Point]) -> Mst {
    assert!(!points.is_empty(), "MST needs at least one point");
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_link = vec![0usize; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut total = 0.0;
    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = points[0].dist_sq(points[i]);
        best_link[i] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_d = f64::INFINITY;
        for i in 0..n {
            if !in_tree[i] && best_dist[i] < pick_d {
                pick = i;
                pick_d = best_dist[i];
            }
        }
        debug_assert_ne!(pick, usize::MAX);
        in_tree[pick] = true;
        parent[pick] = Some(best_link[pick]);
        total += pick_d.sqrt();
        for i in 0..n {
            if !in_tree[i] {
                let d = points[pick].dist_sq(points[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_link[i] = pick;
                }
            }
        }
    }
    let mut children = vec![Vec::new(); n];
    for (i, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(i);
        }
    }
    Mst {
        parent,
        children,
        total_length: total,
    }
}

impl Mst {
    /// All indices in the subtree rooted at `v` (including `v`).
    pub fn subtree(&self, v: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            out.push(x);
            stack.extend_from_slice(&self.children[x]);
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mst_of_single_point() {
        let mst = euclidean_mst(&[Point::new(1.0, 1.0)]);
        assert_eq!(mst.parent, vec![None]);
        assert_eq!(mst.total_length, 0.0);
    }

    #[test]
    fn mst_of_a_line_chains() {
        let pts: Vec<Point> = (0..4).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        let mst = euclidean_mst(&pts);
        assert_eq!(mst.parent[1], Some(0));
        assert_eq!(mst.parent[2], Some(1));
        assert_eq!(mst.parent[3], Some(2));
        assert!((mst.total_length - 30.0).abs() < 1e-9);
        assert_eq!(mst.subtree(1), vec![1, 2, 3]);
    }

    #[test]
    fn mst_total_matches_brute_force_on_small_sets() {
        // Exhaustive check against all spanning trees via Kruskal-on-all-
        // edges equivalence: compare with a simple O(n²) Kruskal.
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 1.0),
            Point::new(4.0, 8.0),
            Point::new(9.0, 9.0),
            Point::new(2.0, 3.0),
        ];
        let mst = euclidean_mst(&pts);
        // Kruskal with union-find.
        let mut edges = Vec::new();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                edges.push((pts[i].dist(pts[j]), i, j));
            }
        }
        edges.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut dsu: Vec<usize> = (0..pts.len()).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let r = find(dsu, dsu[x]);
                dsu[x] = r;
            }
            dsu[x]
        }
        let mut kruskal_total = 0.0;
        for (w, i, j) in edges {
            let (ri, rj) = (find(&mut dsu, i), find(&mut dsu, j));
            if ri != rj {
                dsu[ri] = rj;
                kruskal_total += w;
            }
        }
        assert!((mst.total_length - kruskal_total).abs() < 1e-9);
    }

    #[test]
    fn children_are_consistent_with_parents() {
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::new((i * 37 % 100) as f64, (i * 61 % 100) as f64))
            .collect();
        let mst = euclidean_mst(&pts);
        for (i, p) in mst.parent.iter().enumerate() {
            if let Some(p) = p {
                assert!(mst.children[*p].contains(&i));
            }
        }
        // Spanning: subtree of root is everything.
        assert_eq!(mst.subtree(0), (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        euclidean_mst(&[]);
    }
}
