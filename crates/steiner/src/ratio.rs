//! The reduction ratio measure (Section 3.1 of the paper).
//!
//! Given a source `s` and a destination pair `(u, v)`, let `t` be the exact
//! Euclidean Steiner (Fermat) point of `{s, u, v}`. The reduction ratio is
//!
//! ```text
//! RR(s, u, v) = 1 − (d(s,t) + d(t,u) + d(t,v)) / (d(s,u) + d(s,v))
//! ```
//!
//! i.e. the fraction of the direct two-spoke cost saved by routing both
//! destinations through the optimal junction. The measure uniformly
//! captures the paper's two observations: pairs that are *far from the
//! source but close to each other*, and pairs *subtending a small angle at
//! the source*, both score high and are therefore merged first by rrSTR.
//!
//! Properties (paper Section 3.1, verified by this module's tests):
//!
//! * `0 ≤ RR < 1/2` for distinct destinations;
//! * for equidistant destinations a fixed distance apart, RR grows as the
//!   pair moves away from the source;
//! * for a fixed pair radius, RR shrinks as the angle at the source grows.

use gmp_geom::fermat::{fermat_point, FermatPoint};
use gmp_geom::Point;

/// The cached evaluation of one destination pair against a source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairEval {
    /// The exact Steiner point of `{s, u, v}` (possibly collapsed onto a
    /// vertex).
    pub steiner: FermatPoint,
    /// The reduction ratio; higher means merging this pair saves more.
    pub ratio: f64,
}

/// Evaluates the reduction ratio of destination pair `(u, v)` relative to
/// source `s`, returning both the ratio and the Steiner point (which rrSTR
/// reuses, avoiding a second Fermat computation).
///
/// Degenerate input where both destinations coincide with the source yields
/// a ratio of `0.0`.
/// # Example
///
/// ```
/// use gmp_geom::Point;
/// use gmp_steiner::reduction_ratio;
/// // A far-away, close-together pair saves nearly half the spoke cost.
/// let e = reduction_ratio(
///     Point::new(0.0, 0.0),
///     Point::new(500.0, 10.0),
///     Point::new(500.0, -10.0),
/// );
/// assert!(e.ratio > 0.45 && e.ratio < 0.5);
/// ```
pub fn reduction_ratio(s: Point, u: Point, v: Point) -> PairEval {
    reduction_ratio_with_spokes(s, u, v, s.dist(u) + s.dist(v))
}

/// [`reduction_ratio`] with the two-spoke cost `d(s,u) + d(s,v)` supplied
/// by the caller. rrSTR keeps every vertex's source distance in its
/// scratch, so passing the cached sum skips two square roots per
/// evaluation; with the same rounded operands the result is bit-identical.
pub fn reduction_ratio_with_spokes(s: Point, u: Point, v: Point, spokes: f64) -> PairEval {
    debug_assert_eq!(spokes.to_bits(), (s.dist(u) + s.dist(v)).to_bits());
    let steiner = fermat_point(s, u, v);
    if spokes <= gmp_geom::EPS {
        return PairEval {
            steiner,
            ratio: 0.0,
        };
    }
    let t = steiner.location;
    let through = s.dist(t) + t.dist(u) + t.dist(v);
    PairEval {
        steiner,
        ratio: 1.0 - through / spokes,
    }
}

/// Batch upper bounds on the reduction ratio, one lane per candidate
/// pair: given the pair separation `dist_uv[i]` and the two-spoke cost
/// `spokes[i]`, writes `½ − dist_uv[i] / (2·spokes[i])` into `out[i]`
/// (or `½` when the spokes vanish below [`gmp_geom::EPS`]).
///
/// This is the half-perimeter bound rrSTR seeds its pair queue with:
/// any tree connecting `{s, u, v}` is at least half the triangle
/// perimeter long, so `RR ≤ ½ − d(u,v)/(2·spokes)` — see
/// `rrstr::pair_entry` for the derivation. Each lane is bit-identical
/// to the scalar expression: the degenerate-spokes test is the same
/// `<=` comparison, and the division/multiplication sequence matches
/// operand for operand (Rust performs no FMA contraction). The loop is
/// branch-convertible over independent lanes, so LLVM turns it into
/// masked vector code.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn pair_bound_batch(dist_uv: &[f64], spokes: &[f64], out: &mut [f64]) {
    assert_eq!(
        dist_uv.len(),
        spokes.len(),
        "SoA lanes must agree in length"
    );
    assert_eq!(dist_uv.len(), out.len(), "output must match the lane count");
    for i in 0..out.len() {
        out[i] = if spokes[i] <= gmp_geom::EPS {
            0.5
        } else {
            0.5 - dist_uv[i] / (2.0 * spokes[i])
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_bounded_below_one_half() {
        let s = Point::new(0.0, 0.0);
        let cases = [
            (Point::new(10.0, 1.0), Point::new(10.0, -1.0)),
            (Point::new(5.0, 5.0), Point::new(-5.0, 5.0)),
            (Point::new(1.0, 0.0), Point::new(100.0, 0.0)),
            (Point::new(3.0, 4.0), Point::new(3.0, 4.0)), // coincident pair
        ];
        for (u, v) in cases {
            let e = reduction_ratio(s, u, v);
            assert!(e.ratio >= -1e-9, "ratio {} negative for {u},{v}", e.ratio);
            assert!(e.ratio <= 0.5 + 1e-9, "ratio {} too large", e.ratio);
        }
    }

    #[test]
    fn coincident_destinations_achieve_exactly_half() {
        // With u == v the Steiner point is u and the through-cost is
        // d(s,u), half the two-spoke cost.
        let s = Point::new(0.0, 0.0);
        let u = Point::new(7.0, 2.0);
        let e = reduction_ratio(s, u, u);
        assert!((e.ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn both_destinations_at_source_is_zero() {
        let s = Point::new(1.0, 1.0);
        assert_eq!(reduction_ratio(s, s, s).ratio, 0.0);
    }

    #[test]
    fn farther_equidistant_pairs_have_larger_ratio() {
        // Figure 2(a): pairs with the same separation score higher when
        // farther from the source.
        let s = Point::new(0.0, 0.0);
        let half_sep = 10.0;
        let mut prev = -1.0;
        for r in [30.0, 60.0, 120.0, 240.0, 480.0] {
            let u = Point::new(r, half_sep);
            let v = Point::new(r, -half_sep);
            let e = reduction_ratio(s, u, v);
            assert!(
                e.ratio > prev,
                "RR should grow with distance: {} !> {} at r={}",
                e.ratio,
                prev,
                r
            );
            prev = e.ratio;
        }
    }

    #[test]
    fn smaller_angles_have_larger_ratio() {
        // Figure 2(b): for a fixed radius, smaller angle at the source
        // means a larger reduction ratio.
        let s = Point::new(0.0, 0.0);
        let r = 100.0;
        let mut prev = 1.0;
        for deg in [10.0_f64, 30.0, 60.0, 90.0, 119.0] {
            let half = deg.to_radians() / 2.0;
            let u = Point::new(r * half.cos(), r * half.sin());
            let v = Point::new(r * half.cos(), -r * half.sin());
            let e = reduction_ratio(s, u, v);
            assert!(
                e.ratio < prev,
                "RR should shrink with angle: {} !< {} at {}°",
                e.ratio,
                prev,
                deg
            );
            prev = e.ratio;
        }
    }

    #[test]
    fn ratio_is_scale_invariant() {
        let s = Point::new(0.0, 0.0);
        let u = Point::new(10.0, 3.0);
        let v = Point::new(8.0, -5.0);
        let a = reduction_ratio(s, u, v).ratio;
        let b = reduction_ratio(
            s,
            Point::new(u.x * 7.0, u.y * 7.0),
            Point::new(v.x * 7.0, v.y * 7.0),
        )
        .ratio;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn ratio_is_symmetric_in_the_pair() {
        let s = Point::new(1.0, 2.0);
        let u = Point::new(50.0, 10.0);
        let v = Point::new(45.0, -8.0);
        let a = reduction_ratio(s, u, v).ratio;
        let b = reduction_ratio(s, v, u).ratio;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn wide_pairs_save_nothing() {
        // Destinations on opposite sides of the source (angle ≥ 120°):
        // the Steiner point is the source, so nothing is saved.
        let s = Point::new(0.0, 0.0);
        let e = reduction_ratio(s, Point::new(10.0, 0.0), Point::new(-10.0, 0.0));
        assert!(e.ratio.abs() < 1e-9);
        assert_eq!(e.steiner.location, s);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn coord() -> impl Strategy<Value = f64> {
        -1000.0..1000.0f64
    }

    proptest! {
        #[test]
        fn ratio_always_in_unit_half_interval(
            sx in coord(), sy in coord(),
            ux in coord(), uy in coord(),
            vx in coord(), vy in coord(),
        ) {
            let s = Point::new(sx, sy);
            let u = Point::new(ux, uy);
            let v = Point::new(vx, vy);
            let e = reduction_ratio(s, u, v);
            // The Fermat point is optimal, so the through-cost can never
            // exceed the two-spoke cost (RR ≥ 0), and it is at least half
            // of it (RR ≤ 1/2) by the triangle inequality.
            prop_assert!(e.ratio >= -1e-6, "ratio {}", e.ratio);
            prop_assert!(e.ratio <= 0.5 + 1e-6, "ratio {}", e.ratio);
        }

        #[test]
        fn property_2_farther_equidistant_pairs_score_higher(
            half_sep in 1.0..50.0f64,
            r1 in 60.0..400.0f64,
            growth in 1.01..4.0f64,
        ) {
            // Paper property 2: equidistant destinations with the same
            // separation have a larger reduction ratio when farther away.
            let s = Point::new(0.0, 0.0);
            let r2 = r1 * growth;
            prop_assume!(half_sep < r1); // keep the pair "in front of" s
            let rr1 = reduction_ratio(s, Point::new(r1, half_sep), Point::new(r1, -half_sep)).ratio;
            let rr2 = reduction_ratio(s, Point::new(r2, half_sep), Point::new(r2, -half_sep)).ratio;
            prop_assert!(rr2 >= rr1 - 1e-9, "RR({r2}) = {rr2} < RR({r1}) = {rr1}");
        }

        #[test]
        fn property_3_smaller_angles_score_higher(
            radius in 50.0..500.0f64,
            a1 in 0.02..1.0f64,
            widen in 1.01..2.0f64,
        ) {
            // Paper property 3: for a fixed radius, the reduction ratio
            // shrinks as the angle at the source grows.
            let s = Point::new(0.0, 0.0);
            let a2 = (a1 * widen).min(std::f64::consts::PI - 0.01);
            let at = |half: f64| {
                let u = Point::new(radius * half.cos(), radius * half.sin());
                let v = Point::new(radius * half.cos(), -radius * half.sin());
                reduction_ratio(s, u, v).ratio
            };
            let rr_narrow = at(a1 / 2.0);
            let rr_wide = at(a2 / 2.0);
            prop_assert!(rr_narrow >= rr_wide - 1e-9,
                "RR({a1} rad) = {rr_narrow} < RR({a2} rad) = {rr_wide}");
        }

        #[test]
        fn pair_bound_batch_is_bit_identical_to_scalar(
            lanes in proptest::collection::vec(
                (0.0..2000.0f64, 0.0..4000.0f64), 0..48,
            ),
            degenerate in proptest::bool::ANY,
        ) {
            // Mixed generic lanes plus, when `degenerate`, lanes pinned at
            // and just around the EPS spokes cutoff.
            let mut lanes = lanes;
            if degenerate {
                lanes.push((0.0, 0.0));
                lanes.push((1.0, gmp_geom::EPS));
                lanes.push((1.0, gmp_geom::EPS * 2.0));
            }
            let d: Vec<f64> = lanes.iter().map(|&(d, _)| d).collect();
            let s: Vec<f64> = lanes.iter().map(|&(_, s)| s).collect();
            let mut out = vec![0.0; lanes.len()];
            pair_bound_batch(&d, &s, &mut out);
            for i in 0..lanes.len() {
                // The scalar expression from rrSTR's `pair_entry`.
                let scalar = if s[i] <= gmp_geom::EPS {
                    0.5
                } else {
                    0.5 - d[i] / (2.0 * s[i])
                };
                prop_assert_eq!(
                    out[i].to_bits(), scalar.to_bits(),
                    "lane {} diverged: batch {} vs scalar {}", i, out[i], scalar
                );
            }
        }

        #[test]
        fn through_cost_beats_vertex_junctions(
            ux in coord(), uy in coord(),
            vx in coord(), vy in coord(),
        ) {
            let s = Point::new(0.0, 0.0);
            let u = Point::new(ux, uy);
            let v = Point::new(vx, vy);
            let e = reduction_ratio(s, u, v);
            let t = e.steiner.location;
            let through = s.dist(t) + t.dist(u) + t.dist(v);
            for j in [s, u, v] {
                let via = s.dist(j) + j.dist(u) + j.dist(v);
                prop_assert!(through <= via + 1e-6);
            }
        }
    }
}
