//! Plain-text table rendering and CSV output for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders rows as an aligned plain-text table. The first row is the
/// header.
///
/// # Example
///
/// ```
/// let table = gmp_bench::render_table(&[
///     vec!["k".into(), "GMP".into()],
///     vec!["3".into(), "12.5".into()],
/// ]);
/// assert!(table.contains("GMP"));
/// ```
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            let pad = widths[i] - cell.chars().count();
            let _ = write!(out, "{}{}", cell, " ".repeat(pad));
            if i + 1 < row.len() {
                out.push_str("  ");
            }
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Writes rows as CSV (comma-separated, fields quoted only when needed).
///
/// # Errors
///
/// Propagates filesystem errors from creating parent directories or
/// writing the file.
pub fn write_csv(path: &Path, rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut out = String::new();
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(&[
            vec!["proto".into(), "hops".into()],
            vec!["GMP".into(), "10".into()],
            vec!["PBM".into(), "13.25".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4); // header + rule + 2 rows
        assert!(lines[1].starts_with('-'));
        // Columns align: "hops" and "10" start at the same offset.
        let off_header = lines[0].find("hops").unwrap();
        let off_row = lines[2].find("10").unwrap();
        assert_eq!(off_header, off_row);
    }

    #[test]
    fn empty_table_is_empty() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn csv_quotes_special_fields() {
        let dir = std::env::temp_dir().join("gmp_bench_test_csv");
        let path = dir.join("out.csv");
        write_csv(
            &path,
            &[
                vec!["a".into(), "b,c".into()],
                vec!["d\"e".into(), "f".into()],
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,\"b,c\"\n\"d\"\"e\",f\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
