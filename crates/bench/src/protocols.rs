//! A uniform factory over every protocol in the evaluation.

use gmp_baselines::{
    DsmRouter, GrdRouter, GvgRouter, LgkRouter, LgsRouter, McfrRouter, PbmRouter, SmtRouter,
};
use gmp_core::GmpRouter;
use gmp_net::Topology;
use gmp_sim::{MulticastTask, Protocol, SimConfig, TaskReport, TaskRunner};

/// The λ values the paper sweeps for PBM ("we have run the same routing
/// task seven times, with the value of λ varying from 0 to 0.6").
pub const PBM_LAMBDAS: [f64; 7] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

/// Which protocol to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolKind {
    /// GMP, the paper's contribution.
    Gmp,
    /// GMP without radio-range awareness (the paper's GMPnr ablation).
    GmpNr,
    /// PBM with a fixed λ.
    Pbm(f64),
    /// PBM as reported in the paper's figures: each task is run once per
    /// λ ∈ {0, 0.1, …, 0.6} and the run with the fewest total hops wins.
    PbmBest,
    /// Location-guided Steiner (LGT's LGS).
    Lgs,
    /// Location-guided k-ary tree (LGT's LGK) — extension.
    Lgk(usize),
    /// Independent greedy unicast per destination.
    Grd,
    /// Dynamic Source Multicast (frozen source-side MST) — extension.
    Dsm,
    /// Centralized KMB Steiner tree with source routing.
    Smt,
    /// Concurrent face routing multicast (guaranteed delivery) — extension.
    Mcfr,
    /// Greedy multicast with GVG-style void traversal (guaranteed
    /// delivery) — extension.
    Gvg,
}

impl ProtocolKind {
    /// The display label used in tables and CSV headers.
    pub fn label(&self) -> String {
        match self {
            ProtocolKind::Gmp => "GMP".into(),
            ProtocolKind::GmpNr => "GMPnr".into(),
            ProtocolKind::Pbm(l) => format!("PBM(λ={l})"),
            ProtocolKind::PbmBest => "PBM".into(),
            ProtocolKind::Lgs => "LGS".into(),
            ProtocolKind::Lgk(k) => format!("LGK(k={k})"),
            ProtocolKind::Grd => "GRD".into(),
            ProtocolKind::Dsm => "DSM".into(),
            ProtocolKind::Smt => "SMT".into(),
            ProtocolKind::Mcfr => "MCFR".into(),
            ProtocolKind::Gvg => "GVG".into(),
        }
    }

    /// Parses a user-facing protocol token (the `--protocols` filter
    /// flag): the label, case-insensitively, with `LGK`/`PBM` accepting
    /// their parameterless spellings.
    pub fn from_token(token: &str) -> Option<ProtocolKind> {
        match token.trim().to_ascii_uppercase().as_str() {
            "GMP" => Some(ProtocolKind::Gmp),
            "GMPNR" => Some(ProtocolKind::GmpNr),
            "PBM" => Some(ProtocolKind::PbmBest),
            "LGS" => Some(ProtocolKind::Lgs),
            "LGK" => Some(ProtocolKind::Lgk(2)),
            "GRD" => Some(ProtocolKind::Grd),
            "DSM" => Some(ProtocolKind::Dsm),
            "SMT" => Some(ProtocolKind::Smt),
            "MCFR" => Some(ProtocolKind::Mcfr),
            "GVG" => Some(ProtocolKind::Gvg),
            _ => None,
        }
    }

    /// Instantiates a fresh router (protocols are cheap to build; SMT
    /// computes its tree lazily per task).
    pub fn build(&self) -> Box<dyn Protocol> {
        match *self {
            ProtocolKind::Gmp => Box::new(GmpRouter::new()),
            ProtocolKind::GmpNr => Box::new(GmpRouter::without_radio_range_awareness()),
            ProtocolKind::Pbm(l) => Box::new(PbmRouter::with_lambda(l)),
            // PbmBest is resolved in `run_task`; building it alone yields
            // the default λ.
            ProtocolKind::PbmBest => Box::new(PbmRouter::new()),
            ProtocolKind::Lgs => Box::new(LgsRouter::new()),
            ProtocolKind::Lgk(k) => Box::new(LgkRouter::new(k)),
            ProtocolKind::Grd => Box::new(GrdRouter::new()),
            ProtocolKind::Dsm => Box::new(DsmRouter::new()),
            ProtocolKind::Smt => Box::new(SmtRouter::new()),
            ProtocolKind::Mcfr => Box::new(McfrRouter::new()),
            ProtocolKind::Gvg => Box::new(GvgRouter::new()),
        }
    }

    /// Runs one task, resolving [`ProtocolKind::PbmBest`]'s per-task λ
    /// sweep exactly as the paper does (keep the run with the fewest
    /// total hops).
    pub fn run_task(
        &self,
        topo: &Topology,
        config: &SimConfig,
        task: &MulticastTask,
    ) -> TaskReport {
        let runner = TaskRunner::new(topo, config);
        match self {
            ProtocolKind::PbmBest => PBM_LAMBDAS
                .iter()
                .map(|&l| {
                    let mut p = PbmRouter::with_lambda(l);
                    runner.run(&mut p, task)
                })
                .min_by(|a, b| {
                    // Prefer full delivery, then fewest transmissions.
                    (a.failed_dests.len(), a.transmissions)
                        .cmp(&(b.failed_dests.len(), b.transmissions))
                })
                .expect("lambda sweep non-empty"),
            _ => {
                let mut p = self.build();
                runner.run(p.as_mut(), task)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_nonempty() {
        let kinds = [
            ProtocolKind::Gmp,
            ProtocolKind::GmpNr,
            ProtocolKind::Pbm(0.2),
            ProtocolKind::PbmBest,
            ProtocolKind::Lgs,
            ProtocolKind::Lgk(2),
            ProtocolKind::Grd,
            ProtocolKind::Dsm,
            ProtocolKind::Smt,
            ProtocolKind::Mcfr,
            ProtocolKind::Gvg,
        ];
        let labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        for l in &labels {
            assert!(!l.is_empty());
        }
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn every_kind_builds_and_runs() {
        let config = SimConfig::paper()
            .with_node_count(300)
            .with_area_side(700.0);
        let topo = Topology::random(&config.topology_config(), 2);
        let task = MulticastTask::random(&topo, 5, 3);
        for kind in [
            ProtocolKind::Gmp,
            ProtocolKind::GmpNr,
            ProtocolKind::Pbm(0.3),
            ProtocolKind::Lgs,
            ProtocolKind::Lgk(2),
            ProtocolKind::Grd,
            ProtocolKind::Dsm,
            ProtocolKind::Smt,
            ProtocolKind::Mcfr,
            ProtocolKind::Gvg,
        ] {
            let report = kind.run_task(&topo, &config, &task);
            assert!(
                report.delivered_all(),
                "{} failed {:?}",
                kind.label(),
                report.failed_dests
            );
        }
    }

    #[test]
    fn tokens_round_trip_for_every_unparameterized_kind() {
        for kind in [
            ProtocolKind::Gmp,
            ProtocolKind::GmpNr,
            ProtocolKind::PbmBest,
            ProtocolKind::Lgs,
            ProtocolKind::Grd,
            ProtocolKind::Dsm,
            ProtocolKind::Smt,
            ProtocolKind::Mcfr,
            ProtocolKind::Gvg,
        ] {
            assert_eq!(ProtocolKind::from_token(&kind.label()), Some(kind));
            assert_eq!(
                ProtocolKind::from_token(&kind.label().to_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(
            ProtocolKind::from_token(" lgk "),
            Some(ProtocolKind::Lgk(2))
        );
        assert_eq!(ProtocolKind::from_token("nope"), None);
        assert_eq!(ProtocolKind::from_token(""), None);
    }

    #[test]
    fn pbm_best_never_worse_than_any_single_lambda() {
        let config = SimConfig::paper()
            .with_node_count(300)
            .with_area_side(700.0);
        let topo = Topology::random(&config.topology_config(), 4);
        let task = MulticastTask::random(&topo, 8, 5);
        let best = ProtocolKind::PbmBest.run_task(&topo, &config, &task);
        for &l in &PBM_LAMBDAS {
            let single = ProtocolKind::Pbm(l).run_task(&topo, &config, &task);
            if single.delivered_all() {
                assert!(best.transmissions <= single.transmissions);
            }
        }
    }
}
