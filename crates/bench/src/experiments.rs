//! The paper's evaluation experiments (Figures 11, 12, 14, 15) and the
//! DESIGN.md ablations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gmp_geom::Point;
use gmp_net::Topology;
use gmp_sim::{MulticastTask, SimConfig};
use gmp_steiner::mst::euclidean_mst;
use gmp_steiner::rrstr::{rrstr, RadioRange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::protocols::ProtocolKind;

/// How much of the paper's workload to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// Independent random networks per configuration (paper: 10).
    pub networks: usize,
    /// Tasks per network (paper: 100).
    pub tasks_per_network: usize,
    /// Destination counts swept in Figures 11/12/14 (paper: 3–25).
    pub k_values: Vec<usize>,
}

impl Scale {
    /// Minimal smoke-test scale.
    pub fn quick() -> Self {
        Scale {
            networks: 2,
            tasks_per_network: 10,
            k_values: vec![3, 12, 25],
        }
    }

    /// Default scale: minutes on a laptop, enough samples for the shape.
    pub fn standard() -> Self {
        Scale {
            networks: 3,
            tasks_per_network: 30,
            k_values: vec![3, 6, 9, 12, 15, 18, 21, 25],
        }
    }

    /// The paper's full workload (10 networks × 100 tasks).
    pub fn paper() -> Self {
        Scale {
            networks: 10,
            tasks_per_network: 100,
            k_values: (3..=25).step_by(2).collect(),
        }
    }

    /// Total tasks per configuration point.
    pub fn tasks(&self) -> usize {
        self.networks * self.tasks_per_network
    }
}

/// One aggregated line of the Figure 11/12/14 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Number of destinations (`k`).
    pub k: usize,
    /// Protocol label.
    pub protocol: String,
    /// Mean transmissions per task (Fig. 11's y-axis).
    pub total_hops: f64,
    /// Mean per-destination hop count (Fig. 12's y-axis).
    pub dest_hops: f64,
    /// Mean energy per task, joules (Fig. 14's y-axis).
    pub energy_j: f64,
    /// Mean completion time of a task (last delivery), milliseconds —
    /// extension metric; the paper does not report latency.
    pub latency_ms: f64,
    /// Tasks that failed to reach every destination.
    pub failed_tasks: usize,
    /// Total tasks aggregated.
    pub tasks: usize,
}

/// One aggregated line of the Figure 15 density sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityRow {
    /// Nodes in the network.
    pub nodes: usize,
    /// Protocol label.
    pub protocol: String,
    /// Tasks with at least one unreached destination.
    pub failed_tasks: usize,
    /// Tasks run.
    pub total_tasks: usize,
    /// Failures normalized to the paper's 1000-task total.
    pub failed_per_1000: f64,
}

/// Worker-thread override for [`parallel_map`]; 0 means "use
/// `available_parallelism`". Set from the `experiments` binary's
/// `--threads` flag.
static WORKER_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Overrides the number of worker threads used by the experiment sweeps.
/// `0` restores the default (`available_parallelism`).
pub fn set_worker_threads(n: usize) {
    WORKER_THREADS.store(n, Ordering::Relaxed);
}

/// Reads the worker-thread override from the `GMP_BENCH_THREADS`
/// environment variable, handling malformed values the same way the
/// `GMP_CACHE_*` knobs do: warn on stderr and fall back to the default
/// (0 = `available_parallelism`) instead of aborting a long bench run.
pub fn threads_from_env() -> usize {
    let (threads, warnings) = threads_from_lookup(|key| std::env::var(key).ok());
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    threads
}

/// [`threads_from_env`] with the variable source injected, so both the
/// accepted and rejected paths are unit-testable without touching the
/// process environment. Returns the thread count (0 = all cores) and
/// any warnings the caller should surface.
pub fn threads_from_lookup(lookup: impl Fn(&str) -> Option<String>) -> (usize, Vec<String>) {
    let mut warnings = Vec::new();
    let threads = gmp_sim::env_knob(
        lookup,
        "GMP_BENCH_THREADS",
        0,
        "is not a non-negative integer",
        "all available cores",
        |raw| raw.trim().parse::<usize>().ok(),
        &mut warnings,
    );
    (threads, warnings)
}

/// Simple work-stealing parallel map preserving input order. Workers
/// stream `(index, result)` pairs over a channel; the caller thread
/// assembles them, so no worker ever blocks on a shared results lock.
pub fn parallel_map<J, R, F>(jobs: Vec<J>, f: F) -> Vec<R>
where
    J: Send + Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let n = jobs.len();
    let next = AtomicUsize::new(0);
    let workers = match WORKER_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
        n => n,
    }
    .min(n.max(1));
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, R)>();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            scope.spawn(|_| {
                let tx = tx;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = f(&jobs[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx.iter() {
            results[i] = Some(r);
        }
    })
    .expect("worker panicked");
    results
        .into_iter()
        .map(|r| r.expect("job completed"))
        .collect()
}

pub(crate) fn network_seed(i: usize) -> u64 {
    0xA5A5_0000 + i as u64
}

pub(crate) fn task_seed(net: usize, task: usize) -> u64 {
    net as u64 * 10_000 + task as u64 + 1
}

/// Runs the destination-count sweep shared by Figures 11, 12, and 14:
/// for each `k`, each protocol routes the *same* random tasks over the
/// *same* random networks; means are reported per protocol per `k`.
pub fn destination_sweep(
    config: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
) -> Vec<SweepRow> {
    let topologies: Vec<Arc<Topology>> = (0..scale.networks)
        .map(|i| Arc::new(Topology::random(&config.topology_config(), network_seed(i))))
        .collect();

    // One job per (k, network, protocol) triple.
    struct Job {
        k: usize,
        net: usize,
        proto: ProtocolKind,
    }
    struct Partial {
        k: usize,
        label: String,
        total_hops: f64,
        dest_hops: f64,
        dest_hops_n: usize,
        energy: f64,
        latency: f64,
        failed: usize,
    }
    let mut jobs = Vec::new();
    for &k in &scale.k_values {
        for net in 0..scale.networks {
            for &proto in protocols {
                jobs.push(Job { k, net, proto });
            }
        }
    }
    let partials = parallel_map(jobs, |job| {
        let topo = &topologies[job.net];
        let mut total_hops = 0.0;
        let mut dest_hops = 0.0;
        let mut dest_hops_n = 0usize;
        let mut energy = 0.0;
        let mut latency = 0.0;
        let mut failed = 0usize;
        for t in 0..scale.tasks_per_network {
            let task = MulticastTask::random(topo, job.k, task_seed(job.net, t));
            let report = job.proto.run_task(topo, config, &task);
            total_hops += report.transmissions as f64;
            energy += report.energy_j;
            latency += report.completion_time_s * 1e3;
            if let Some(h) = report.mean_dest_hops() {
                dest_hops += h;
                dest_hops_n += 1;
            }
            if !report.delivered_all() {
                failed += 1;
            }
        }
        Partial {
            k: job.k,
            label: job.proto.label(),
            total_hops,
            dest_hops,
            dest_hops_n,
            energy,
            latency,
            failed,
        }
    });

    // Aggregate over networks.
    let mut rows: Vec<SweepRow> = Vec::new();
    for &k in &scale.k_values {
        for proto in protocols {
            let label = proto.label();
            let mut th = 0.0;
            let mut dh = 0.0;
            let mut dh_n = 0usize;
            let mut en = 0.0;
            let mut lat = 0.0;
            let mut failed = 0usize;
            for p in &partials {
                if p.k == k && p.label == label {
                    th += p.total_hops;
                    dh += p.dest_hops;
                    dh_n += p.dest_hops_n;
                    en += p.energy;
                    lat += p.latency;
                    failed += p.failed;
                }
            }
            let tasks = scale.tasks();
            rows.push(SweepRow {
                k,
                protocol: label,
                total_hops: th / tasks as f64,
                dest_hops: if dh_n > 0 { dh / dh_n as f64 } else { f64::NAN },
                energy_j: en / tasks as f64,
                latency_ms: lat / tasks as f64,
                failed_tasks: failed,
                tasks,
            });
        }
    }
    rows
}

/// Runs the Figure 15 density sweep: node counts 400–1000, `k = 12`,
/// per-destination hop cap 100, counting failed tasks.
pub fn density_sweep(
    base: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
    node_counts: &[usize],
) -> Vec<DensityRow> {
    struct Job {
        nodes: usize,
        net: usize,
        proto: ProtocolKind,
    }
    let mut jobs = Vec::new();
    for &nodes in node_counts {
        for net in 0..scale.networks {
            for &proto in protocols {
                jobs.push(Job { nodes, net, proto });
            }
        }
    }
    let partials = parallel_map(jobs, |job| {
        let config = base
            .clone()
            .with_node_count(job.nodes)
            .with_max_path_hops(100);
        let topo = Topology::random(&config.topology_config(), network_seed(job.net));
        let mut failed = 0usize;
        for t in 0..scale.tasks_per_network {
            let task = MulticastTask::random(&topo, 12, task_seed(job.net, t));
            let report = job.proto.run_task(&topo, &config, &task);
            if !report.delivered_all() {
                failed += 1;
            }
        }
        (job.nodes, job.proto.label(), failed)
    });

    let mut rows = Vec::new();
    for &nodes in node_counts {
        for proto in protocols {
            let label = proto.label();
            let failed: usize = partials
                .iter()
                .filter(|p| p.0 == nodes && p.1 == label)
                .map(|p| p.2)
                .sum();
            let total = scale.tasks();
            rows.push(DensityRow {
                nodes,
                protocol: label,
                failed_tasks: failed,
                total_tasks: total,
                failed_per_1000: failed as f64 * 1000.0 / total as f64,
            });
        }
    }
    rows
}

/// One line of the header-overhead ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Number of destinations.
    pub k: usize,
    /// Mean bytes on air per task with the paper's fixed 128 B messages.
    pub fixed_bytes: f64,
    /// Mean bytes on air per task with real encoded packet sizes.
    pub encoded_bytes: f64,
    /// Mean energy with fixed messages, joules.
    pub fixed_energy_j: f64,
    /// Mean energy with encoded sizes, joules.
    pub encoded_energy_j: f64,
}

/// DESIGN.md ablation: how much does carrying the destination list in the
/// header actually cost, compared with the paper's fixed 128 B abstraction?
pub fn overhead_ablation(config: &SimConfig, scale: &Scale) -> Vec<OverheadRow> {
    let topologies: Vec<Arc<Topology>> = (0..scale.networks)
        .map(|i| Arc::new(Topology::random(&config.topology_config(), network_seed(i))))
        .collect();
    let jobs: Vec<usize> = scale.k_values.clone();
    parallel_map(jobs, |&k| {
        let mut fixed_bytes = 0.0;
        let mut encoded_bytes = 0.0;
        let mut fixed_energy = 0.0;
        let mut encoded_energy = 0.0;
        let fixed_cfg = config.clone().with_size_dependent_airtime(false);
        let enc_cfg = config.clone().with_size_dependent_airtime(true);
        for (net, topo) in topologies.iter().enumerate() {
            for t in 0..scale.tasks_per_network {
                let task = MulticastTask::random(topo, k, task_seed(net, t));
                let rf = ProtocolKind::Gmp.run_task(topo, &fixed_cfg, &task);
                let re = ProtocolKind::Gmp.run_task(topo, &enc_cfg, &task);
                fixed_bytes += rf.bytes_transmitted as f64;
                encoded_bytes += re.bytes_transmitted as f64;
                fixed_energy += rf.energy_j;
                encoded_energy += re.energy_j;
            }
        }
        let n = scale.tasks() as f64;
        OverheadRow {
            k,
            fixed_bytes: fixed_bytes / n,
            encoded_bytes: encoded_bytes / n,
            fixed_energy_j: fixed_energy / n,
            encoded_energy_j: encoded_energy / n,
        }
    })
}

/// One line of the rrSTR-vs-MST tree-length ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeLengthRow {
    /// Number of destinations.
    pub n: usize,
    /// Mean rrSTR tree length (range-oblivious, pure Steiner quality).
    pub rrstr_len: f64,
    /// Mean MST length over `{source} ∪ destinations`.
    pub mst_len: f64,
    /// `rrstr_len / mst_len`. The Steiner ratio bounds it below by
    /// √3/2 ≈ 0.866. It can exceed 1: rrSTR is *source-rooted* (bounded by
    /// the star of direct spokes, never contracting the source), so for
    /// destinations spread all around the source it can lose to the
    /// unrooted MST — the protocol compensates by rebuilding the tree at
    /// every hop (the "progressive refinement" of Section 1.1).
    pub ratio: f64,
    /// Mean number of virtual junctions created.
    pub virtuals: f64,
}

/// DESIGN.md ablation: how much tree length does the reduction-ratio
/// heuristic save over LGS's MST on identical inputs?
pub fn tree_length_ablation(ns: &[usize], samples: usize) -> Vec<TreeLengthRow> {
    ns.iter()
        .map(|&n| {
            let mut rr_sum = 0.0;
            let mut mst_sum = 0.0;
            let mut virt_sum = 0.0;
            let mut rng = StdRng::seed_from_u64(n as u64 * 977);
            for _ in 0..samples {
                let s = Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0));
                let dests: Vec<Point> = (0..n)
                    .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
                    .collect();
                let tree = rrstr(s, &dests, RadioRange::Ignored);
                rr_sum += tree.total_length();
                virt_sum += tree.vertex_ids().filter(|&v| tree.is_virtual(v)).count() as f64;
                let mut points = vec![s];
                points.extend_from_slice(&dests);
                mst_sum += euclidean_mst(&points).total_length;
            }
            TreeLengthRow {
                n,
                rrstr_len: rr_sum / samples as f64,
                mst_len: mst_sum / samples as f64,
                ratio: rr_sum / mst_sum,
                virtuals: virt_sum / samples as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> SimConfig {
        SimConfig::paper()
            .with_area_side(600.0)
            .with_node_count(250)
    }

    fn tiny_scale() -> Scale {
        Scale {
            networks: 1,
            tasks_per_network: 5,
            k_values: vec![4, 8],
        }
    }

    #[test]
    fn bench_threads_env_accepts_valid_values() {
        let (threads, warnings) = threads_from_lookup(|_| Some("8".into()));
        assert_eq!(threads, 8);
        assert!(warnings.is_empty());

        // 0 is the explicit "all cores" spelling, not an error.
        let (threads, warnings) = threads_from_lookup(|_| Some("0".into()));
        assert_eq!(threads, 0);
        assert!(warnings.is_empty());

        let (threads, warnings) = threads_from_lookup(|_| None);
        assert_eq!(threads, 0);
        assert!(warnings.is_empty());
    }

    #[test]
    fn bench_threads_env_warns_and_defaults_on_malformed_values() {
        for bad in ["four", "-2", "2.5", ""] {
            let (threads, warnings) = threads_from_lookup(|key| {
                assert_eq!(key, "GMP_BENCH_THREADS");
                Some(bad.into())
            });
            assert_eq!(threads, 0, "malformed {bad:?} must fall back to default");
            assert_eq!(warnings.len(), 1, "malformed {bad:?} must warn");
            assert!(
                warnings[0].contains("GMP_BENCH_THREADS"),
                "warning names the knob: {}",
                warnings[0]
            );
        }
    }

    #[test]
    fn destination_sweep_produces_full_grid() {
        let rows = destination_sweep(
            &tiny_config(),
            &tiny_scale(),
            &[ProtocolKind::Gmp, ProtocolKind::Lgs],
        );
        assert_eq!(rows.len(), 4); // 2 k-values × 2 protocols
        for r in &rows {
            assert!(r.total_hops > 0.0, "{r:?}");
            assert!(r.energy_j > 0.0);
            assert!(r.dest_hops > 0.0);
            assert_eq!(r.tasks, 5);
        }
    }

    #[test]
    fn sweep_total_hops_grow_with_k() {
        let rows = destination_sweep(&tiny_config(), &tiny_scale(), &[ProtocolKind::Gmp]);
        assert!(rows[1].total_hops > rows[0].total_hops);
    }

    #[test]
    fn density_sweep_reports_normalized_failures() {
        let rows = density_sweep(
            &tiny_config(),
            &tiny_scale(),
            &[ProtocolKind::Gmp],
            &[150, 250],
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.total_tasks, 5);
            assert!(r.failed_per_1000 >= 0.0);
            assert!(r.failed_tasks <= r.total_tasks);
        }
        // Sparser networks can only fail at least as often (statistically;
        // with one network this is not guaranteed, so only sanity-check the
        // monotone normalization here).
        assert!(rows[0].failed_per_1000 >= rows[0].failed_tasks as f64);
    }

    #[test]
    fn overhead_ablation_shows_encoded_sizes() {
        let rows = overhead_ablation(&tiny_config(), &tiny_scale());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.fixed_bytes > 0.0);
            assert!(r.encoded_bytes > 0.0);
            assert!(r.fixed_energy_j > 0.0);
        }
    }

    #[test]
    fn tree_length_ablation_stays_in_sane_bounds() {
        let rows = tree_length_ablation(&[5, 10], 40);
        for r in &rows {
            // Lower bound: no Euclidean Steiner tree beats the Steiner
            // ratio against the MST. Upper bound: rrSTR never exceeds the
            // star of direct spokes, which stays within a small factor of
            // the MST for uniform points.
            assert!(
                r.ratio >= 0.866 - 1e-6,
                "no Steiner tree beats the Steiner ratio: {r:?}"
            );
            assert!(r.ratio <= 1.6, "rrSTR should stay near the MST: {r:?}");
            assert!(r.virtuals >= 0.0 && r.virtuals < r.n as f64);
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect::<Vec<i32>>(), |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i32>>());
    }
}

/// One line of the planar-subgraph ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanarRow {
    /// Nodes in the network.
    pub nodes: usize,
    /// Planar graph label ("Gabriel" / "RNG").
    pub planar: String,
    /// Failed tasks.
    pub failed_tasks: usize,
    /// Total tasks.
    pub total_tasks: usize,
    /// Mean total hops per task.
    pub total_hops: f64,
}

/// DESIGN.md ablation: does GMP's perimeter mode behave differently on
/// the Gabriel graph versus the sparser Relative Neighborhood Graph?
/// Run at sparse densities where perimeter mode actually fires.
pub fn planar_ablation(base: &SimConfig, scale: &Scale, node_counts: &[usize]) -> Vec<PlanarRow> {
    use crate::protocols::ProtocolKind;
    let kinds = [
        (crate::experiments_planar::GABRIEL, "Gabriel"),
        (crate::experiments_planar::RNG, "RNG"),
    ];
    let mut jobs = Vec::new();
    for &nodes in node_counts {
        for (kind, label) in kinds {
            for net in 0..scale.networks {
                jobs.push((nodes, kind, label, net));
            }
        }
    }
    let partials = parallel_map(jobs, |&(nodes, kind, label, net)| {
        let mut config = base.clone().with_node_count(nodes).with_max_path_hops(100);
        config.planar = kind;
        let topo = Topology::random(&config.topology_config(), network_seed(net));
        let mut failed = 0usize;
        let mut hops = 0.0;
        for t in 0..scale.tasks_per_network {
            let task = MulticastTask::random(&topo, 12, task_seed(net, t));
            let report = ProtocolKind::Gmp.run_task(&topo, &config, &task);
            hops += report.transmissions as f64;
            if !report.delivered_all() {
                failed += 1;
            }
        }
        (nodes, label, failed, hops)
    });
    let mut rows = Vec::new();
    for &nodes in node_counts {
        for (_, label) in kinds {
            let mut failed = 0usize;
            let mut hops = 0.0;
            for p in &partials {
                if p.0 == nodes && p.1 == label {
                    failed += p.2;
                    hops += p.3;
                }
            }
            rows.push(PlanarRow {
                nodes,
                planar: label.to_string(),
                failed_tasks: failed,
                total_tasks: scale.tasks(),
                total_hops: hops / scale.tasks() as f64,
            });
        }
    }
    rows
}

/// One line of the PBM search-bound sensitivity ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PbmSensitivityRow {
    /// Subset-size cap.
    pub max_subset_size: usize,
    /// Candidate neighbors admitted per destination.
    pub candidates_per_dest: usize,
    /// Mean total hops per task.
    pub total_hops: f64,
    /// Mean per-destination hops.
    pub dest_hops: f64,
    /// Wall-clock seconds spent routing (decision-cost proxy).
    pub routing_seconds: f64,
}

/// DESIGN.md ablation: how sensitive is the bounded PBM search to its
/// caps? Justifies the default bounds used everywhere else.
pub fn pbm_sensitivity(config: &SimConfig, scale: &Scale, k: usize) -> Vec<PbmSensitivityRow> {
    use gmp_baselines::{PbmConfig, PbmRouter};
    use gmp_sim::TaskRunner;
    let topologies: Vec<Arc<Topology>> = (0..scale.networks)
        .map(|i| Arc::new(Topology::random(&config.topology_config(), network_seed(i))))
        .collect();
    let grid: Vec<(usize, usize)> = vec![(1, 2), (2, 2), (3, 3), (4, 3), (5, 4)];
    parallel_map(grid, |&(cap, cands)| {
        let pbm_config = PbmConfig {
            lambda: 0.3,
            max_subset_size: cap,
            candidates_per_dest: cands,
            max_candidates: 12,
        };
        let mut hops = 0.0;
        let mut dest_hops = 0.0;
        let start = std::time::Instant::now();
        for (net, topo) in topologies.iter().enumerate() {
            let runner = TaskRunner::new(topo, config);
            for t in 0..scale.tasks_per_network {
                let task = MulticastTask::random(topo, k, task_seed(net, t));
                let mut pbm = PbmRouter::with_config(pbm_config);
                let report = runner.run(&mut pbm, &task);
                hops += report.transmissions as f64;
                dest_hops += report.mean_dest_hops().unwrap_or(0.0);
            }
        }
        let n = scale.tasks() as f64;
        PbmSensitivityRow {
            max_subset_size: cap,
            candidates_per_dest: cands,
            total_hops: hops / n,
            dest_hops: dest_hops / n,
            routing_seconds: start.elapsed().as_secs_f64(),
        }
    })
}

/// One line of the position-staleness ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityRow {
    /// How old the routing information is, seconds.
    pub staleness_s: f64,
    /// Fraction of directed unit-disk links that no longer exist.
    pub broken_links: f64,
    /// Fraction of GMP transmissions that used a now-broken link (the
    /// forwarding decisions that would be lost in flight).
    pub stale_tx_fraction: f64,
}

/// Extension ablation: the paper assumes static sensors, but PBM/LGS come
/// from the MANET world. How quickly does random-waypoint movement
/// invalidate the geographic forwarding decisions GMP makes on a stale
/// snapshot?
pub fn mobility_ablation(
    node_count: usize,
    speed_ms: (f64, f64),
    staleness: &[f64],
    tasks: usize,
    seed: u64,
) -> Vec<MobilityRow> {
    use gmp_core::GmpRouter;
    use gmp_net::mobility::{broken_link_fraction, RandomWaypoint};
    use gmp_sim::TaskRunner;

    let config = SimConfig::paper().with_node_count(node_count);
    let mut model = RandomWaypoint::new(
        gmp_geom::Aabb::square(config.area_side),
        node_count,
        config.radio_range,
        speed_ms,
        (0.0, 2.0),
        seed,
    );
    let stale = Arc::new(model.snapshot());

    // GMP routes computed once on the stale snapshot.
    let mut all_links: Vec<(gmp_net::NodeId, gmp_net::NodeId)> = Vec::new();
    {
        let runner = TaskRunner::new(&stale, &config);
        for t in 0..tasks {
            let task = MulticastTask::random(&stale, 12, task_seed(0, t));
            let report = runner.run(&mut GmpRouter::new(), &task);
            all_links.extend(report.links);
        }
    }

    let mut rows = Vec::new();
    let mut elapsed = 0.0f64;
    for &delta in staleness {
        assert!(delta >= elapsed, "staleness values must be non-decreasing");
        model.advance(delta - elapsed);
        elapsed = delta;
        let fresh = model.snapshot();
        let broken = broken_link_fraction(&stale, &fresh);
        let stale_tx = if all_links.is_empty() {
            0.0
        } else {
            all_links
                .iter()
                .filter(|&&(from, to)| !fresh.neighbors(from).contains(&to))
                .count() as f64
                / all_links.len() as f64
        };
        rows.push(MobilityRow {
            staleness_s: delta,
            broken_links: broken,
            stale_tx_fraction: stale_tx,
        });
    }
    rows
}

/// One line of the power-control ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// Number of destinations.
    pub k: usize,
    /// Protocol label.
    pub protocol: String,
    /// Mean energy per task under the paper's fixed 1.3 W model, joules.
    pub fixed_energy_j: f64,
    /// Mean energy per task with distance-scaled transmit power, joules.
    pub controlled_energy_j: f64,
}

/// Extension ablation: does GMP's energy advantage survive when short
/// hops are genuinely cheap (distance-scaled transmit power, path-loss
/// exponent α = 2, 0.1 W electronics overhead)?
pub fn power_ablation(
    base: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
) -> Vec<PowerRow> {
    let fixed_cfg = base.clone();
    let pc_cfg = base
        .clone()
        .with_power_control(gmp_sim::config::PowerControl {
            alpha: 2.0,
            overhead_w: 0.1,
        });
    let topologies: Vec<Arc<Topology>> = (0..scale.networks)
        .map(|i| Arc::new(Topology::random(&base.topology_config(), network_seed(i))))
        .collect();
    let mut jobs = Vec::new();
    for &k in &scale.k_values {
        for &proto in protocols {
            jobs.push((k, proto));
        }
    }
    parallel_map(jobs, |&(k, proto)| {
        let mut fixed = 0.0;
        let mut controlled = 0.0;
        for (net, topo) in topologies.iter().enumerate() {
            for t in 0..scale.tasks_per_network {
                let task = MulticastTask::random(topo, k, task_seed(net, t));
                fixed += proto.run_task(topo, &fixed_cfg, &task).energy_j;
                controlled += proto.run_task(topo, &pc_cfg, &task).energy_j;
            }
        }
        let n = scale.tasks() as f64;
        PowerRow {
            k,
            protocol: proto.label(),
            fixed_energy_j: fixed / n,
            controlled_energy_j: controlled / n,
        }
    })
}

/// One line of the radio-range sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeRow {
    /// Radio range in meters.
    pub radio_range: f64,
    /// Protocol label.
    pub protocol: String,
    /// Mean total hops per task.
    pub total_hops: f64,
    /// Mean energy per task, joules.
    pub energy_j: f64,
    /// Failed tasks out of the scale's total.
    pub failed_tasks: usize,
}

/// Extension sweep: the paper fixes the radio range at 150 m; this sweep
/// varies it at fixed node count, trading per-hop reach (fewer hops)
/// against listener cost (denser neighborhoods overhear every
/// transmission) and void frequency (short ranges fragment the network).
pub fn range_sweep(
    base: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
    ranges: &[f64],
) -> Vec<RangeRow> {
    struct Job {
        rr: f64,
        net: usize,
        proto: ProtocolKind,
    }
    let mut jobs = Vec::new();
    for &rr in ranges {
        for net in 0..scale.networks {
            for &proto in protocols {
                jobs.push(Job { rr, net, proto });
            }
        }
    }
    let partials = parallel_map(jobs, |job| {
        let config = base.clone().with_radio_range(job.rr);
        let topo = Topology::random(&config.topology_config(), network_seed(job.net));
        let mut hops = 0.0;
        let mut energy = 0.0;
        let mut failed = 0usize;
        for t in 0..scale.tasks_per_network {
            let task = MulticastTask::random(&topo, 12, task_seed(job.net, t));
            let report = job.proto.run_task(&topo, &config, &task);
            hops += report.transmissions as f64;
            energy += report.energy_j;
            if !report.delivered_all() {
                failed += 1;
            }
        }
        (job.rr, job.proto.label(), hops, energy, failed)
    });
    let mut rows = Vec::new();
    for &rr in ranges {
        for proto in protocols {
            let label = proto.label();
            let mut hops = 0.0;
            let mut energy = 0.0;
            let mut failed = 0usize;
            for p in &partials {
                if p.0 == rr && p.1 == label {
                    hops += p.2;
                    energy += p.3;
                    failed += p.4;
                }
            }
            rows.push(RangeRow {
                radio_range: rr,
                protocol: label,
                total_hops: hops / scale.tasks() as f64,
                energy_j: energy / scale.tasks() as f64,
                failed_tasks: failed,
            });
        }
    }
    rows
}

/// One line of the lossy-channel Figure 15 variant.
#[derive(Debug, Clone, PartialEq)]
pub struct LossRow {
    /// Nodes in the network.
    pub nodes: usize,
    /// Per-transmission loss probability.
    pub loss: f64,
    /// Protocol label.
    pub protocol: String,
    /// Failed tasks normalized to 1000.
    pub failed_per_1000: f64,
}

/// Fidelity ablation: re-run the Figure 15 density sweep over a lossy
/// channel. The paper's ns-2 substrate loses packets to 802.11
/// contention, which is what produced its non-zero failure counts at
/// 400–1000 nodes; injecting a per-transmission loss probability
/// recovers that regime on our otherwise ideal channel.
pub fn loss_sweep(
    base: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
    node_counts: &[usize],
    losses: &[f64],
) -> Vec<LossRow> {
    struct Job {
        nodes: usize,
        loss: f64,
        net: usize,
        proto: ProtocolKind,
    }
    let mut jobs = Vec::new();
    for &nodes in node_counts {
        for &loss in losses {
            for net in 0..scale.networks {
                for &proto in protocols {
                    jobs.push(Job {
                        nodes,
                        loss,
                        net,
                        proto,
                    });
                }
            }
        }
    }
    let partials = parallel_map(jobs, |job| {
        let config = base
            .clone()
            .with_node_count(job.nodes)
            .with_max_path_hops(100)
            .with_link_loss_prob(job.loss);
        let topo = Topology::random(&config.topology_config(), network_seed(job.net));
        let runner = gmp_sim::TaskRunner::new(&topo, &config);
        let mut failed = 0usize;
        for t in 0..scale.tasks_per_network {
            let task = MulticastTask::random(&topo, 12, task_seed(job.net, t));
            // Loss must differ per task: seed the loss stream by task.
            let report = match job.proto {
                ProtocolKind::PbmBest => job.proto.run_task(&topo, &config, &task),
                _ => {
                    let mut p = job.proto.build();
                    runner.run_seeded(p.as_mut(), &task, task_seed(job.net, t))
                }
            };
            if !report.delivered_all() {
                failed += 1;
            }
        }
        (job.nodes, job.loss, job.proto.label(), failed)
    });
    let mut rows = Vec::new();
    for &nodes in node_counts {
        for &loss in losses {
            for proto in protocols {
                let label = proto.label();
                let failed: usize = partials
                    .iter()
                    .filter(|p| p.0 == nodes && p.1 == loss && p.2 == label)
                    .map(|p| p.3)
                    .sum();
                rows.push(LossRow {
                    nodes,
                    loss,
                    protocol: label,
                    failed_per_1000: failed as f64 * 1000.0 / scale.tasks() as f64,
                });
            }
        }
    }
    rows
}

/// One line of the MAC retransmission-tax ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct MacTaxRow {
    /// Protocol label.
    pub protocol: String,
    /// Mean transmissions per task on the ideal MAC.
    pub ideal_tx: f64,
    /// Mean transmissions per task with collisions + jitter + ARQ.
    pub mac_tx: f64,
    /// Relative retransmission overhead (`mac/ideal − 1`).
    pub tax: f64,
    /// Tasks that still failed under the MAC model.
    pub failed_tasks: usize,
}

/// Fidelity ablation: the extra transmissions each protocol pays when the
/// channel has collisions and 802.11-style retransmissions. Parallel-
/// branch protocols (PBM, GRD) collide with themselves and pay heavily;
/// tree protocols barely notice.
pub fn mac_tax(
    base: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
    k: usize,
) -> Vec<MacTaxRow> {
    let ideal = base.clone();
    let mac = base
        .clone()
        .with_collisions(true)
        .with_tx_jitter(0.005)
        .with_retransmissions(7);
    let topologies: Vec<Arc<Topology>> = (0..scale.networks)
        .map(|i| Arc::new(Topology::random(&base.topology_config(), network_seed(i))))
        .collect();
    parallel_map(protocols.to_vec(), |&proto| {
        let mut ideal_tx = 0.0;
        let mut mac_tx = 0.0;
        let mut failed = 0usize;
        for (net, topo) in topologies.iter().enumerate() {
            for t in 0..scale.tasks_per_network {
                let task = MulticastTask::random(topo, k, task_seed(net, t));
                ideal_tx += proto.run_task(topo, &ideal, &task).transmissions as f64;
                let r = proto.run_task(topo, &mac, &task);
                mac_tx += r.transmissions as f64;
                if !r.delivered_all() {
                    failed += 1;
                }
            }
        }
        let n = scale.tasks() as f64;
        MacTaxRow {
            protocol: proto.label(),
            ideal_tx: ideal_tx / n,
            mac_tx: mac_tx / n,
            tax: mac_tx / ideal_tx - 1.0,
            failed_tasks: failed,
        }
    })
}
