//! The concurrent-service workload behind `BENCH_5.json`: sustained
//! multicast session throughput under churn, swept over a worker-thread
//! axis.
//!
//! A deployed GMP network does not run one multicast task at a time — it
//! carries thousands of overlapping sessions whose groups churn as nodes
//! join, leave, and fail. This module measures exactly that, through
//! [`gmp_service::SessionEngine`]:
//!
//! * the **sequential baseline** runs the identical session set
//!   back-to-back, each session as its own self-contained simulation
//!   (fresh protocol, fresh scratch — the repo's per-task idiom used by
//!   every figure sweep);
//! * the **concurrent engine** interleaves all sessions over one shared
//!   topology on a single thread, sharing the decision cache and pooled
//!   scratch state; the `reports_match` flag certifies each session's
//!   report is bit-identical to its sequential twin;
//! * the **parallel engine** shards the event wheel across 1/2/4/8
//!   worker threads ([`SessionEngine::run_parallel`]), every worker's
//!   router backed by ONE shared [`ConcurrentTreeCache`] — so misses are
//!   paid once fleet-wide instead of once per worker, and outcomes stay
//!   bit-identical at every thread count (that is the per-point
//!   `reports_match` certificate);
//! * fault wiring follows the cache-sharing determinism rule: crashes are
//!   *timed* events (identical alive vectors for every session, so cache
//!   keys stay shared) surfaced to the membership service as crash-derived
//!   leaves after a detection delay.
//!
//! Session latency is wall-clock admission → completion of the engine's
//! as-fast-as-possible loop, not simulated service time; the parallel
//! percentiles expose the latency cost of sharing a core budget across
//! workers.

use std::sync::Arc;
use std::time::Instant;

use gmp_core::{CacheConfig, CacheStats, ConcurrentTreeCache, GmpRouter};
use gmp_net::{NodeId, ShardConfig, ShardedTopology, Topology};
use gmp_service::{
    EngineProtocol, ParallelProtocol, ServiceWorkload, SessionEngine, SessionOutcome,
    WorkloadParams,
};
use gmp_sim::{FaultPlan, Protocol, RegionSim, SimConfig, TaskReport, TaskRunner};

use crate::scale::{window_at, MARGIN, RADIO_RANGE};

/// Fraction of candidate nodes crashed at session-local t = 0 (one in
/// `CRASH_STRIDE` nodes).
const CRASH_STRIDE: usize = 100;

/// Measurements at one (topology, session count, worker count) point.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicePoint {
    /// Topology label (`paper-1000` or `sharded-100k`).
    pub topology: String,
    /// Total nodes in the deployment.
    pub nodes: usize,
    /// Sessions that ran (skipped-empty excluded).
    pub sessions: usize,
    /// Multicast groups in the workload.
    pub groups: usize,
    /// Membership updates streamed (joins, churn, crash-derived leaves).
    pub membership_updates: usize,
    /// Crash events in the fault plan.
    pub fault_crashes: usize,
    /// Sessions skipped because their group was empty at snapshot time.
    pub skipped_empty: usize,
    /// Wall seconds for the back-to-back sequential baseline.
    pub sequential_wall_s: f64,
    /// Sequential sessions per second.
    pub sequential_sessions_per_sec: f64,
    /// Wall seconds for the single-threaded concurrent engine.
    pub concurrent_wall_s: f64,
    /// Concurrent sessions per second.
    pub concurrent_sessions_per_sec: f64,
    /// Routing decisions per second through the concurrent engine.
    pub decisions_per_sec: f64,
    /// Median session latency (admission → completion) of the
    /// single-thread concurrent engine, milliseconds.
    pub p50_latency_ms: f64,
    /// 99th-percentile concurrent session latency, milliseconds.
    pub p99_latency_ms: f64,
    /// Worker threads driving the sharded parallel engine at this point.
    pub threads: usize,
    /// Wall seconds for the multi-worker parallel engine.
    pub parallel_wall_s: f64,
    /// Parallel sessions per second.
    pub parallel_sessions_per_sec: f64,
    /// Median parallel session latency, milliseconds.
    pub parallel_p50_latency_ms: f64,
    /// 99th-percentile parallel session latency, milliseconds.
    pub parallel_p99_latency_ms: f64,
    /// Concurrent vs sequential throughput ratio (the ≥2x headline gate).
    pub speedup: f64,
    /// Parallel vs single-thread concurrent throughput ratio — the
    /// core-scaling curve's y-axis.
    pub parallel_scaling: f64,
    /// Heap allocations per session over a warmed parallel re-run;
    /// `None` when no allocation counter hook was supplied.
    pub allocs_per_session: Option<f64>,
    /// Allocation-count difference between two identical warmed parallel
    /// re-runs (steady state ⇔ exactly 0); `None` without a counter hook.
    pub steady_alloc_drift: Option<i64>,
    /// Statistics of the [`ConcurrentTreeCache`] shared by this point's
    /// workers, summed across windows on the sharded substrate.
    pub cache: CacheStats,
    /// Whether every concurrent and parallel report was bit-identical to
    /// its sequential twin.
    pub reports_match: bool,
}

/// Latency percentile (nearest-rank on a sorted copy), in milliseconds.
fn percentile_ms(latencies_s: &mut [f64], q: f64) -> f64 {
    if latencies_s.is_empty() {
        return 0.0;
    }
    latencies_s.sort_by(f64::total_cmp);
    let idx = ((latencies_s.len() - 1) as f64 * q).round() as usize;
    latencies_s[idx] * 1e3
}

/// Timed-crash fault plan over every `CRASH_STRIDE`-th candidate, at
/// session-local t = 0. Timed events consume no task RNG and give every
/// session the same alive vector, so the shared decision cache keeps
/// serving across sessions.
fn crash_plan(candidates: &[NodeId]) -> FaultPlan {
    let mut plan = FaultPlan::none();
    for &node in candidates.iter().step_by(CRASH_STRIDE).skip(1) {
        plan = plan.with_crash(node, 0.0);
    }
    plan
}

fn crash_count(plan: &FaultPlan) -> usize {
    plan.events
        .iter()
        .filter(|e| matches!(e, gmp_sim::FaultEvent::Crash { .. }))
        .count()
}

/// Back-to-back sequential baseline: each session as a self-contained
/// simulation (fresh router, fresh scratch — `ProtocolKind::run_task`'s
/// idiom). Returns `(reports by session id, completed count, wall seconds)`.
fn sequential_baseline(
    topo: &Topology,
    config: &SimConfig,
    workload: &ServiceWorkload,
) -> (Vec<Option<TaskReport>>, usize, f64) {
    let tasks = workload.resolve_tasks();
    let runner = TaskRunner::new(topo, config);
    let t0 = Instant::now();
    let mut completed = 0usize;
    let reports: Vec<Option<TaskReport>> = workload
        .sessions
        .iter()
        .zip(&tasks)
        .map(|(spec, task)| {
            task.as_ref().map(|task| {
                completed += 1;
                let mut router = GmpRouter::new();
                runner.run_seeded(&mut router, task, spec.seed)
            })
        })
        .collect();
    (reports, completed, t0.elapsed().as_secs_f64())
}

/// Verifies every engine outcome against its sequential twin.
fn outcomes_match(outcomes: &[SessionOutcome], sequential: &[Option<TaskReport>]) -> bool {
    outcomes.iter().all(|o| {
        sequential
            .get(o.id as usize)
            .and_then(|r| r.as_ref())
            .is_some_and(|r| *r == o.report)
    })
}

/// A `Sync` router factory whose products all share `cache` — what every
/// parallel worker constructs its protocol from.
fn shared_router_factory(cache: Arc<ConcurrentTreeCache>) -> impl Fn() -> Box<dyn Protocol> + Sync {
    move || Box::new(GmpRouter::with_shared_cache(Arc::clone(&cache))) as Box<dyn Protocol>
}

/// Runs the service benchmark on the paper-scale topology (1000 nodes,
/// topology seed 1), producing one [`ServicePoint`] per entry of
/// `threads_axis`. The sequential and single-thread concurrent legs run
/// once and are replicated into every point; the parallel leg (and its
/// shared cache, latency percentiles, and steady-state allocation
/// certificate) is measured per worker count, from cold.
pub fn paper_scaling_curve(
    sessions: usize,
    seed: u64,
    alloc_counter: Option<&dyn Fn() -> usize>,
    threads_axis: &[usize],
) -> Vec<ServicePoint> {
    let base = SimConfig::paper();
    let topo = Topology::random(&base.topology_config(), 1);
    let candidates: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
    let plan = crash_plan(&candidates);
    // The crashes are live in-simulation too: every session runs under the
    // same timed plan (identical alive vectors keep the decision cache
    // shared), while the membership stream drops the same nodes after the
    // detection delay.
    let config = base.with_faults(plan.clone());
    let params = WorkloadParams {
        groups: 16,
        members_per_group: 24,
        churn_updates: (sessions / 5).max(200),
        sessions,
        duration_s: 60.0,
        min_members: 2,
        max_members: 40,
        crash_detect_s: 30.0,
    };
    let workload = ServiceWorkload::random(&candidates, &params, &plan, seed);

    // Sequential baseline.
    let (seq_reports, seq_completed, seq_wall) = sequential_baseline(&topo, &config, &workload);

    // Concurrent engine, single-threaded, from cold.
    let mut router = GmpRouter::new();
    let mut engine = SessionEngine::new(&topo, &config);
    let t0 = Instant::now();
    let run = engine.run(EngineProtocol::Shared(&mut router), &workload);
    let conc_wall = t0.elapsed().as_secs_f64();
    let base_match = outcomes_match(&run.outcomes, &seq_reports);
    let mut conc_latencies: Vec<f64> = run.outcomes.iter().map(|o| o.latency_s).collect();
    let completed = run.outcomes.len();
    assert_eq!(
        completed, seq_completed,
        "engine and baseline disagree on session count"
    );
    let p50_latency_ms = percentile_ms(&mut conc_latencies, 0.50);
    let p99_latency_ms = percentile_ms(&mut conc_latencies, 0.99);

    threads_axis
        .iter()
        .map(|&threads| {
            // Parallel leg, from cold at every point: a fresh shared
            // cache so each point's hit rate is self-contained, a fresh
            // engine so no pool warmth leaks between thread counts.
            let cache = Arc::new(ConcurrentTreeCache::with_config(CacheConfig::default()));
            let factory = shared_router_factory(Arc::clone(&cache));
            let mut engine = SessionEngine::new(&topo, &config);
            let t0 = Instant::now();
            let par =
                engine.run_parallel(ParallelProtocol::PerWorker(&factory), &workload, threads);
            let par_wall = t0.elapsed().as_secs_f64();
            let reports_match = base_match && outcomes_match(&par.outcomes, &seq_reports);
            assert_eq!(par.outcomes.len(), completed, "parallel leg lost sessions");
            let mut par_latencies: Vec<f64> = par.outcomes.iter().map(|o| o.latency_s).collect();

            // Steady-state allocation profile of the *parallel* engine.
            // Warm-up runs until two consecutive passes allocate the same
            // amount: the scratch pool is returned in worker order and
            // re-dealt round-robin, so a scratch can land on a
            // higher-demand session a few runs in and still grow a buffer
            // — capacities only ever grow, so this converges, but at
            // higher worker counts it can take more than one pass. Two
            // measured re-runs then replay the identical strided schedule
            // against the now-frozen shared cache. Any drift between them
            // means the multi-worker path is still allocating; steady
            // state is exactly 0.
            let (allocs_per_session, steady_alloc_drift) = match alloc_counter {
                Some(count) => {
                    let mut rerun = || {
                        let before = count();
                        let _ = engine.run_parallel(
                            ParallelProtocol::PerWorker(&factory),
                            &workload,
                            threads,
                        );
                        count() - before
                    };
                    let mut prev = rerun();
                    for _ in 0..8 {
                        let next = rerun();
                        let settled = next == prev;
                        prev = next;
                        if settled {
                            break;
                        }
                    }
                    let run2 = prev;
                    let run3 = rerun();
                    (
                        Some(run2 as f64 / completed.max(1) as f64),
                        Some(run3 as i64 - run2 as i64),
                    )
                }
                None => (None, None),
            };

            ServicePoint {
                topology: "paper-1000".into(),
                nodes: topo.len(),
                sessions: completed,
                groups: params.groups,
                membership_updates: workload.updates.len(),
                fault_crashes: crash_count(&plan),
                skipped_empty: run.skipped_empty,
                sequential_wall_s: seq_wall,
                sequential_sessions_per_sec: completed as f64 / seq_wall,
                concurrent_wall_s: conc_wall,
                concurrent_sessions_per_sec: completed as f64 / conc_wall,
                decisions_per_sec: run.decisions as f64 / conc_wall,
                p50_latency_ms,
                p99_latency_ms,
                threads,
                parallel_wall_s: par_wall,
                parallel_sessions_per_sec: completed as f64 / par_wall,
                parallel_p50_latency_ms: percentile_ms(&mut par_latencies, 0.50),
                parallel_p99_latency_ms: percentile_ms(&mut par_latencies, 0.99),
                speedup: seq_wall / conc_wall,
                parallel_scaling: conc_wall / par_wall,
                allocs_per_session,
                steady_alloc_drift,
                cache: cache.stats(),
                reports_match,
            }
        })
        .collect()
}

/// Runs the service benchmark over the sharded lazy substrate: sessions
/// spread across paper-sized task windows of a `total_nodes` deployment
/// at paper density. Windows are processed one after another, each
/// window's engine sharded across `threads` workers over one shared
/// per-window cache — so the parallel budget no longer caps at the
/// window count the way the old per-batch fan-out did (the super-batch
/// regime), and misses inside a window are paid once, not once per
/// worker.
pub fn sharded_service_point(
    total_nodes: usize,
    windows: usize,
    sessions_total: usize,
    seed: u64,
    threads: usize,
) -> ServicePoint {
    let shard_config = ShardConfig::paper_density(total_nodes, RADIO_RANGE);
    let area_side = shard_config.area.width();
    let sharded = ShardedTopology::new(shard_config, 7);

    let sessions_per_window = (sessions_total / windows).max(1);
    let regions: Vec<RegionSim> = (0..windows)
        .map(|w| RegionSim::new(&sharded, window_at(area_side, w), MARGIN))
        .collect();
    let setups: Vec<(usize, FaultPlan, ServiceWorkload, SimConfig)> = regions
        .iter()
        .enumerate()
        .map(|(w, region)| {
            let candidates = region.window_nodes().to_vec();
            let plan = crash_plan(&candidates);
            let params = WorkloadParams {
                groups: 8,
                members_per_group: 32,
                churn_updates: (sessions_per_window / 3).max(100),
                sessions: sessions_per_window,
                duration_s: 60.0,
                min_members: 2,
                max_members: 48,
                crash_detect_s: 30.0,
            };
            let workload =
                ServiceWorkload::random(&candidates, &params, &plan, seed ^ (w as u64 + 1));
            // The window's crashes are live in-simulation for every one of
            // its sessions (see `paper_scaling_curve`).
            let config = SimConfig::paper().with_faults(plan.clone());
            (w, plan, workload, config)
        })
        .collect();

    // Sequential baseline across every window.
    let t0 = Instant::now();
    let mut seq_reports: Vec<Vec<Option<TaskReport>>> = Vec::with_capacity(windows);
    let mut seq_completed = 0usize;
    for (w, _, workload, config) in &setups {
        let (reports, completed, _) = sequential_baseline(regions[*w].topology(), config, workload);
        seq_completed += completed;
        seq_reports.push(reports);
    }
    let seq_wall = t0.elapsed().as_secs_f64();

    // Concurrent engine, window after window on one thread (the decision
    // cache is per-window: windows are distinct topologies).
    let t0 = Instant::now();
    let mut completed = 0usize;
    let mut decisions = 0usize;
    let mut skipped_empty = 0usize;
    let mut latencies: Vec<f64> = Vec::new();
    let mut reports_match = true;
    for (w, _, workload, config) in &setups {
        let mut router = GmpRouter::new();
        let mut engine = SessionEngine::new(regions[*w].topology(), config);
        let run = engine.run(EngineProtocol::Shared(&mut router), workload);
        reports_match &= outcomes_match(&run.outcomes, &seq_reports[*w]);
        completed += run.outcomes.len();
        decisions += run.decisions;
        skipped_empty += run.skipped_empty;
        latencies.extend(run.outcomes.iter().map(|o| o.latency_s));
    }
    let conc_wall = t0.elapsed().as_secs_f64();
    assert_eq!(
        completed, seq_completed,
        "engine and baseline disagree on session count"
    );

    let membership_updates: usize = setups.iter().map(|(_, _, w, _)| w.updates.len()).sum();
    let fault_crashes: usize = setups.iter().map(|(_, p, _, _)| crash_count(p)).sum();

    // Parallel leg: window after window, each window's wheel sharded
    // across `threads` workers over one shared per-window cache.
    let t0 = Instant::now();
    let mut par_completed = 0usize;
    let mut par_latencies: Vec<f64> = Vec::new();
    let mut cache = CacheStats::default();
    for (w, _, workload, config) in &setups {
        let shared = Arc::new(ConcurrentTreeCache::with_config(CacheConfig::default()));
        let factory = shared_router_factory(Arc::clone(&shared));
        let mut engine = SessionEngine::new(regions[*w].topology(), config);
        let par = engine.run_parallel(ParallelProtocol::PerWorker(&factory), workload, threads);
        reports_match &= outcomes_match(&par.outcomes, &seq_reports[*w]);
        par_completed += par.outcomes.len();
        par_latencies.extend(par.outcomes.iter().map(|o| o.latency_s));
        cache = sum_cache(cache, shared.stats());
    }
    let par_wall = t0.elapsed().as_secs_f64();
    assert_eq!(par_completed, completed, "parallel leg lost sessions");

    ServicePoint {
        topology: format!("sharded-{}k", total_nodes / 1000),
        nodes: total_nodes,
        sessions: completed,
        groups: windows * 8,
        membership_updates,
        fault_crashes,
        skipped_empty,
        sequential_wall_s: seq_wall,
        sequential_sessions_per_sec: completed as f64 / seq_wall,
        concurrent_wall_s: conc_wall,
        concurrent_sessions_per_sec: completed as f64 / conc_wall,
        decisions_per_sec: decisions as f64 / conc_wall,
        p50_latency_ms: percentile_ms(&mut latencies, 0.50),
        p99_latency_ms: percentile_ms(&mut latencies, 0.99),
        threads,
        parallel_wall_s: par_wall,
        parallel_sessions_per_sec: par_completed as f64 / par_wall,
        parallel_p50_latency_ms: percentile_ms(&mut par_latencies, 0.50),
        parallel_p99_latency_ms: percentile_ms(&mut par_latencies, 0.99),
        speedup: seq_wall / conc_wall,
        parallel_scaling: conc_wall / par_wall,
        allocs_per_session: None,
        steady_alloc_drift: None,
        cache,
        reports_match,
    }
}

/// Component-wise sum of two cache-stat snapshots (`entries_live` sums
/// the live entries of every per-window cache).
fn sum_cache(a: CacheStats, b: CacheStats) -> CacheStats {
    CacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        fallbacks: a.fallbacks + b.fallbacks,
        evictions: a.evictions + b.evictions,
        epoch_flushes: a.epoch_flushes + b.epoch_flushes,
        entries_live: a.entries_live + b.entries_live,
        pool_reused: a.pool_reused + b.pool_reused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_curve_is_bit_identical_at_every_thread_count() {
        let points = paper_scaling_curve(64, 3, None, &[1, 2]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(
                p.reports_match,
                "{} workers: engine reports diverged from solo runs",
                p.threads
            );
            assert_eq!(p.sessions + p.skipped_empty, 64);
            assert!(p.sessions > 0);
            assert!(p.membership_updates > 0);
            assert!(p.fault_crashes > 0);
            assert!(p.cache.lookups() > 0, "shared cache saw no traffic");
        }
        assert_eq!(points[0].threads, 1);
        assert_eq!(points[1].threads, 2);
        // The sequential/concurrent legs are shared across the curve.
        assert_eq!(points[0].sequential_wall_s, points[1].sequential_wall_s);
        assert_eq!(points[0].concurrent_wall_s, points[1].concurrent_wall_s);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut lat: Vec<f64> = (1..=100).map(|i| i as f64 / 1000.0).collect();
        assert!((percentile_ms(&mut lat.clone(), 0.50) - 50.0).abs() < 1.5);
        assert!((percentile_ms(&mut lat, 0.99) - 99.0).abs() < 1.5);
        assert_eq!(percentile_ms(&mut [], 0.99), 0.0);
    }

    #[test]
    fn zero_lookup_stats_yield_zero_rates() {
        // A skipped/empty point must not poison a JSON gate with NaN.
        let empty = CacheStats::default();
        assert_eq!(empty.hit_rate(), 0.0);
        let summed = sum_cache(empty, CacheStats::default());
        assert_eq!(summed.hit_rate(), 0.0);
    }
}
