//! Minimal SVG line charts, so the experiment harness can regenerate the
//! paper's *figures* and not just their tables.
//!
//! Deliberately dependency-free: fixed canvas, nice-number ticks, one
//! polyline + marker shape per series, legend in the top-left. Output is
//! a standalone SVG document.

use std::fmt::Write as _;

/// One line on a chart.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in x order.
    pub points: Vec<(f64, f64)>,
}

/// A configured line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<Series>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 24.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 52.0;
/// Okabe–Ito-ish palette: distinguishable in print and for most CVD.
const COLORS: [&str; 7] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000",
];

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series (order fixes its color/marker).
    pub fn series(&mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push(Series {
            label: label.into(),
            points,
        });
        self
    }

    /// Renders the chart as a standalone SVG document.
    ///
    /// Charts with no finite data points render an "empty" placeholder
    /// instead of panicking.
    pub fn render_svg(&self) -> String {
        let finite: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif">"#
        );
        let _ = writeln!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = writeln!(
            svg,
            r#"<text x="{:.0}" y="22" font-size="15" text-anchor="middle">{}</text>"#,
            WIDTH / 2.0,
            xml_escape(&self.title)
        );
        if finite.is_empty() {
            let _ = writeln!(
                svg,
                r#"<text x="{:.0}" y="{:.0}" font-size="13" text-anchor="middle">(no data)</text>"#,
                WIDTH / 2.0,
                HEIGHT / 2.0
            );
            svg.push_str("</svg>\n");
            return svg;
        }
        let (x_min, x_max) = extent(finite.iter().map(|p| p.0));
        // Y axis always starts at zero: every metric here is a count.
        let (_, y_raw_max) = extent(finite.iter().map(|p| p.1));
        let y_min = 0.0;
        let y_max = if y_raw_max <= 0.0 {
            1.0
        } else {
            y_raw_max * 1.05
        };
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min).max(1e-12) * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - y_min) / (y_max - y_min).max(1e-12) * plot_h;

        // Axes.
        let _ = writeln!(
            svg,
            r#"<line x1="{l:.1}" y1="{t:.1}" x2="{l:.1}" y2="{b:.1}" stroke="black"/>"#,
            l = MARGIN_L,
            t = MARGIN_T,
            b = MARGIN_T + plot_h
        );
        let _ = writeln!(
            svg,
            r#"<line x1="{l:.1}" y1="{b:.1}" x2="{r:.1}" y2="{b:.1}" stroke="black"/>"#,
            l = MARGIN_L,
            r = MARGIN_L + plot_w,
            b = MARGIN_T + plot_h
        );
        // Ticks.
        for t in ticks(x_min, x_max, 8) {
            let x = sx(t);
            let _ = writeln!(
                svg,
                r#"<line x1="{x:.1}" y1="{b:.1}" x2="{x:.1}" y2="{b2:.1}" stroke="black"/><text x="{x:.1}" y="{ty:.1}" font-size="11" text-anchor="middle">{}</text>"#,
                fmt_tick(t),
                b = MARGIN_T + plot_h,
                b2 = MARGIN_T + plot_h + 5.0,
                ty = MARGIN_T + plot_h + 18.0,
            );
        }
        for t in ticks(y_min, y_max, 6) {
            let y = sy(t);
            let _ = writeln!(
                svg,
                r##"<line x1="{l2:.1}" y1="{y:.1}" x2="{l:.1}" y2="{y:.1}" stroke="black"/><line x1="{l:.1}" y1="{y:.1}" x2="{r:.1}" y2="{y:.1}" stroke="#dddddd"/><text x="{tx:.1}" y="{ty:.1}" font-size="11" text-anchor="end">{}</text>"##,
                fmt_tick(t),
                l2 = MARGIN_L - 5.0,
                l = MARGIN_L,
                r = MARGIN_L + plot_w,
                tx = MARGIN_L - 8.0,
                ty = y + 4.0,
            );
        }
        // Axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{:.0}" y="{:.0}" font-size="12" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{:.0}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.0})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&self.y_label)
        );

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = COLORS[i % COLORS.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|&(x, y)| (sx(x), sy(y)))
                .collect();
            if pts.is_empty() {
                continue;
            }
            let path: Vec<String> = pts.iter().map(|(x, y)| format!("{x:.1},{y:.1}")).collect();
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.join(" ")
            );
            for &(x, y) in &pts {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{x:.1}" cy="{y:.1}" r="3" fill="{color}"/>"#
                );
            }
            // Legend entry.
            let ly = MARGIN_T + 8.0 + i as f64 * 16.0;
            let _ = writeln!(
                svg,
                r#"<line x1="{lx:.1}" y1="{ly:.1}" x2="{lx2:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="2"/><text x="{tx:.1}" y="{ty:.1}" font-size="11">{}</text>"#,
                xml_escape(&s.label),
                lx = MARGIN_L + 10.0,
                lx2 = MARGIN_L + 34.0,
                tx = MARGIN_L + 40.0,
                ty = ly + 4.0,
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn extent(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if min == max {
        (min - 0.5, max + 0.5)
    } else {
        (min, max)
    }
}

/// "Nice number" ticks covering `[min, max]` with roughly `n` steps.
fn ticks(min: f64, max: f64, n: usize) -> Vec<f64> {
    let span = (max - min).max(1e-12);
    let raw = span / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (min / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= max + step * 1e-9 {
        out.push(t);
        t += step;
    }
    out
}

fn fmt_tick(t: f64) -> String {
    if t.abs() >= 1000.0 || t == t.trunc() {
        format!("{t:.0}")
    } else {
        format!("{t:.2}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_renders_all_series_and_labels() {
        let mut c = LineChart::new("Total hops", "k", "hops");
        c.series("GMP", vec![(3.0, 8.8), (12.0, 23.5), (25.0, 38.8)]);
        c.series("PBM", vec![(3.0, 9.9), (12.0, 29.2), (25.0, 50.3)]);
        let svg = c.render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">GMP</text>"));
        assert!(svg.contains(">PBM</text>"));
        assert!(svg.contains(">Total hops</text>"));
        // 6 data markers.
        assert!(svg.matches(r#"r="3""#).count() == 6);
    }

    #[test]
    fn empty_chart_renders_placeholder() {
        let c = LineChart::new("Nothing", "x", "y");
        let svg = c.render_svg();
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn nan_points_are_skipped() {
        let mut c = LineChart::new("t", "x", "y");
        c.series("a", vec![(1.0, f64::NAN), (2.0, 3.0), (3.0, 4.0)]);
        let svg = c.render_svg();
        assert!(!svg.contains("NaN"));
        assert_eq!(svg.matches(r#"r="3""#).count(), 2);
    }

    #[test]
    fn ticks_are_nice_and_cover_the_range() {
        let t = ticks(0.0, 100.0, 6);
        assert_eq!(t, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let t = ticks(3.0, 25.0, 8);
        assert!(t.first().copied().unwrap() >= 3.0);
        assert!(t.last().copied().unwrap() <= 25.0);
        assert!(t.len() >= 4);
    }

    #[test]
    fn labels_are_escaped() {
        let mut c = LineChart::new("a < b & c", "x", "y");
        c.series("s<1>", vec![(0.0, 1.0)]);
        let svg = c.render_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
    }
}
