//! Experiment harness regenerating every figure of the paper's evaluation
//! (Section 5), plus the ablations called out in DESIGN.md.
//!
//! The heavy lifting lives in this library so that the `experiments`
//! binary, the integration tests, and the Criterion benches all share one
//! implementation:
//!
//! * [`protocols`] — a uniform factory over GMP and all baselines,
//!   including the per-task λ sweep that defines "PBM" in Figures 11–14;
//! * [`experiments`] — the Figure 11/12/14 sweep over the destination
//!   count, the Figure 15 density sweep, and the extension ablations;
//! * [`campaign`] — fault-injection robustness campaigns judged by the
//!   delivery-guarantee oracle (`BENCH_3.json`);
//! * [`table`] — plain-text table rendering and CSV output;
//! * [`chart`] — SVG line charts, regenerating the figures themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod chart;
pub mod experiments;
pub mod protocols;
pub mod rss;
pub mod scale;
pub mod service;
pub mod table;

pub use campaign::{robustness_campaign, CampaignRow};
pub use chart::LineChart;
pub use experiments::{
    density_sweep, destination_sweep, loss_sweep, mac_tax, mobility_ablation, overhead_ablation,
    pbm_sensitivity, planar_ablation, power_ablation, range_sweep, tree_length_ablation,
    DensityRow, Scale, SweepRow,
};
pub use protocols::ProtocolKind;
pub use rss::peak_rss_bytes;
pub use scale::{scale_curve, ScalePoint};
pub use service::{paper_scaling_curve, sharded_service_point, ServicePoint};
pub use table::{render_table, write_csv};

/// Planar-kind constants shared with the ablation (kept out of the public
/// surface of `gmp-sim`'s serde config type).
pub(crate) mod experiments_planar {
    use gmp_sim::config::PlanarKindConfig;
    /// Gabriel graph configuration value.
    pub const GABRIEL: PlanarKindConfig = PlanarKindConfig::Gabriel;
    /// Relative neighborhood graph configuration value.
    pub const RNG: PlanarKindConfig = PlanarKindConfig::RelativeNeighborhood;
}
