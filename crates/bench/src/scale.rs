//! The scale curve behind `BENCH_4.json`: per-task cost vs network size.
//!
//! GMP's forwarding cost is a function of the local neighborhood and the
//! group size, not the network size — so a routing task inside a paper-
//! sized window should cost the same whether the deployment holds 10³ or
//! 10⁶ nodes. This module measures exactly that claim over the sharded
//! substrate ([`gmp_net::ShardedTopology`]):
//!
//! * deployments at every scale point keep the paper's density
//!   ([`gmp_net::shard::PAPER_DENSITY`], ~69 expected neighbors), so the
//!   area grows as √n;
//! * the workload is a fixed number of paper-sized (1000 m) task windows,
//!   each materialized with a routing-slack margin via
//!   [`gmp_sim::RegionSim`] and run shard-parallel through the crossbeam
//!   worker pool;
//! * throughput figures are **per worker-core** (total work ÷ summed
//!   per-worker busy seconds), so they compare across machines and thread
//!   counts; the headline flatness gate compares `decisions_per_sec`
//!   between scale points;
//! * the decision-path probe reuses the `BENCH_1` methodology (warmed
//!   [`gmp_core::TreeCache`] + [`gmp_core::DecisionScratch`]) on one
//!   region, with an allocation counter hook so the binary can assert the
//!   zero-alloc steady state at every scale point.

use std::time::Instant;

use gmp_core::{DecisionScratch, GmpRouter, TreeCache};
use gmp_geom::{Aabb, Point};
use gmp_net::{ShardConfig, ShardedTopology};
use gmp_sim::{MulticastTask, RegionSim, SimConfig, SimScratch, TaskRunner};

use crate::experiments::{parallel_map, task_seed};

/// Side of one task window, meters — the paper's whole deployment.
pub const WINDOW_SIDE: f64 = 1000.0;
/// Routing-slack margin materialized around each window, meters (2 × the
/// paper's 150 m radio range).
pub const MARGIN: f64 = 300.0;
/// Radio range at every scale point, meters (paper Table 1).
pub const RADIO_RANGE: f64 = 150.0;

/// Measurements at one network size.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Total nodes in the deployment.
    pub nodes: usize,
    /// Deployment area side at paper density, meters.
    pub area_side: f64,
    /// Coarse tiles in the substrate.
    pub tile_count: usize,
    /// Seconds to construct the lazy substrate (no nodes generated).
    pub substrate_build_s: f64,
    /// Seconds to materialize the *whole* network eagerly, for the small
    /// points where that is feasible; `None` above the eager cutoff.
    pub eager_build_s: Option<f64>,
    /// Summed per-worker seconds spent materializing task regions.
    pub region_build_s: f64,
    /// Tiles actually generated across the whole point.
    pub materialized_tiles: usize,
    /// Nodes actually generated across the whole point.
    pub materialized_nodes: usize,
    /// Substrate heap bytes after the run (budgets + generated tiles).
    pub substrate_heap_bytes: usize,
    /// Task windows run.
    pub windows: usize,
    /// Multicast tasks run across all windows.
    pub tasks: usize,
    /// Tasks that failed to deliver every destination.
    pub failed_tasks: usize,
    /// End-to-end simulated tasks per worker-core second.
    pub tasks_per_sec: f64,
    /// Per-hop forwarding decisions per second through the warmed decision
    /// cache (BENCH_1 methodology, single-threaded probe).
    pub decisions_per_sec: f64,
    /// Heap allocations per decision during the probe; `None` when no
    /// allocation counter hook was supplied.
    pub allocs_per_decision: Option<f64>,
    /// Wall-clock seconds for the whole point.
    pub wall_clock_s: f64,
    /// Process peak RSS after this point, bytes (cumulative across points).
    pub peak_rss_bytes: Option<u64>,
}

/// Deterministic low-discrepancy window origin: the `w`-th window of a
/// deployment, spread over the area by a golden-ratio sequence so windows
/// neither overlap systematically nor cluster at any scale.
pub(crate) fn window_at(area_side: f64, w: usize) -> Aabb {
    const PHI: f64 = 0.618_033_988_749_894_9;
    let side = WINDOW_SIDE.min(area_side);
    let span = area_side - side;
    let fx = ((w as f64 + 0.5) * PHI).fract();
    let fy = ((w as f64 + 0.5) * PHI * PHI).fract();
    let origin = Point::new(span * fx, span * fy);
    Aabb::new(origin, Point::new(origin.x + side, origin.y + side))
}

/// Largest network the curve still materializes eagerly for the
/// build-time comparison column.
pub const EAGER_CUTOFF: usize = 10_000;

/// Runs the scale curve at the given network sizes.
///
/// `alloc_counter` is a hook returning the process-wide allocation count
/// (the `experiments` binary passes its counting global allocator); when
/// supplied, each point reports allocations per decision over the warmed
/// decision probe.
pub fn scale_curve(
    node_counts: &[usize],
    windows: usize,
    tasks_per_window: usize,
    k: usize,
    alloc_counter: Option<&(dyn Fn() -> usize + Sync)>,
) -> Vec<ScalePoint> {
    let config = SimConfig::paper();
    node_counts
        .iter()
        .map(|&n| {
            let point_start = Instant::now();
            let shard_config = ShardConfig::paper_density(n, RADIO_RANGE);
            let area_side = shard_config.area.width();

            let t0 = Instant::now();
            let st = ShardedTopology::new(shard_config.clone(), substrate_seed(n));
            let substrate_build_s = t0.elapsed().as_secs_f64();

            // Eager comparison column: same positions, whole-network
            // adjacency, on a fresh substrate so lazily materialized tiles
            // don't subsidize the timing.
            let eager_build_s = (n <= EAGER_CUTOFF).then(|| {
                let st2 = ShardedTopology::new(shard_config.clone(), substrate_seed(n));
                let t0 = Instant::now();
                let full = st2.materialize_full();
                assert_eq!(full.len(), n);
                t0.elapsed().as_secs_f64()
            });

            // Shard-parallel task execution: one job per window.
            let jobs: Vec<usize> = (0..windows).collect();
            let partials = parallel_map(jobs, |&w| {
                let t0 = Instant::now();
                let sim = RegionSim::new(&st, window_at(area_side, w), MARGIN);
                let region_build_s = t0.elapsed().as_secs_f64();
                let runner = sim.runner(&config);
                let mut router = GmpRouter::new();
                let mut scratch = SimScratch::new();
                let mut failed = 0usize;
                let t0 = Instant::now();
                for t in 0..tasks_per_window {
                    let task = sim.random_task(k, task_seed(w, t));
                    let report = runner.run_with_scratch(&mut router, &task, 0, &mut scratch);
                    failed += usize::from(!report.delivered_all());
                }
                (region_build_s, t0.elapsed().as_secs_f64(), failed)
            });
            let region_build_s: f64 = partials.iter().map(|p| p.0).sum();
            let routing_s: f64 = partials.iter().map(|p| p.1).sum();
            let failed_tasks: usize = partials.iter().map(|p| p.2).sum();
            let tasks = windows * tasks_per_window;
            let tasks_per_sec = tasks as f64 / routing_s;

            let (decisions_per_sec, allocs_per_decision) =
                decision_probe(&st, area_side, tasks_per_window, k, alloc_counter);

            ScalePoint {
                nodes: n,
                area_side,
                tile_count: st.tile_count(),
                substrate_build_s,
                eager_build_s,
                region_build_s,
                materialized_tiles: st.materialized_tiles(),
                materialized_nodes: st.materialized_nodes(),
                substrate_heap_bytes: st.heap_bytes(),
                windows,
                tasks,
                failed_tasks,
                tasks_per_sec,
                decisions_per_sec,
                allocs_per_decision,
                wall_clock_s: point_start.elapsed().as_secs_f64(),
                peak_rss_bytes: crate::rss::peak_rss_bytes(),
            }
        })
        .collect()
}

/// Seed for the scale substrate at size `n` — distinct per point so no two
/// points share node layouts, disjoint from the sweep seed families.
fn substrate_seed(n: usize) -> u64 {
    0x5CA1_E000_0000_0000 ^ n as u64
}

/// Single-threaded decision-path probe on one materialized window: the
/// BENCH_1 workload (warmed cache + scratch, then timed rounds) against a
/// region of the sharded substrate.
fn decision_probe(
    st: &ShardedTopology,
    area_side: f64,
    task_count: usize,
    k: usize,
    alloc_counter: Option<&(dyn Fn() -> usize + Sync)>,
) -> (f64, Option<f64>) {
    let sim = RegionSim::new(st, window_at(area_side, 0), MARGIN);
    let tasks: Vec<MulticastTask> = (0..task_count.max(8))
        .map(|t| sim.random_task(k, task_seed(54_321, t)))
        .collect();
    let mut scratch = DecisionScratch::new();
    let mut cache = TreeCache::new();
    let run_pass = |scratch: &mut DecisionScratch, cache: &mut TreeCache| {
        let mut covered = 0usize;
        for t in &tasks {
            let g = cache.group_destinations_cached(
                scratch,
                sim.topology(),
                t.source,
                &t.dests,
                true,
                None,
                None,
            );
            covered += g.covered.len();
        }
        covered
    };
    for _ in 0..2 {
        run_pass(&mut scratch, &mut cache);
    }
    let rounds = 200usize;
    let allocs_before = alloc_counter.map(|f| f());
    let t0 = Instant::now();
    let mut covered = 0usize;
    for _ in 0..rounds {
        covered += run_pass(&mut scratch, &mut cache);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert!(covered > 0, "decision probe routed nothing");
    let decisions = rounds * tasks.len();
    let allocs_per_decision = alloc_counter
        .zip(allocs_before)
        .map(|(f, before)| (f() - before) as f64 / decisions as f64);
    (decisions as f64 / secs, allocs_per_decision)
}

/// Paper-scale parity check used by the `scale_parity` integration test
/// and callable from debugging sessions: runs `tasks` tasks through both
/// the eager [`gmp_net::Topology`] and the sharded substrate's full
/// materialization and asserts bit-identical [`gmp_sim::TaskReport`]s.
pub fn assert_substrate_parity(n: usize, seed: u64, tasks: usize, k: usize) {
    let st = ShardedTopology::new(ShardConfig::paper_density(n, RADIO_RANGE), seed);
    let full = st.materialize_full();
    let eager = gmp_net::Topology::from_positions(full.positions(), full.area(), RADIO_RANGE);
    let config = SimConfig::paper();
    let runner_a = TaskRunner::new(&full, &config);
    let runner_b = TaskRunner::new(&eager, &config);
    let mut scratch_a = SimScratch::new();
    let mut scratch_b = SimScratch::new();
    let mut router_a = GmpRouter::new();
    let mut router_b = GmpRouter::new();
    for t in 0..tasks {
        let task = MulticastTask::random(&full, k, task_seed(9_999, t));
        let a = runner_a.run_with_scratch(&mut router_a, &task, 7, &mut scratch_a);
        let b = runner_b.run_with_scratch(&mut router_b, &task, 7, &mut scratch_b);
        assert_eq!(a, b, "TaskReport diverged on task {t}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_stay_inside_area() {
        for side in [1000.0, 3162.3, 31_622.8] {
            for w in 0..16 {
                let win = window_at(side, w);
                assert!(win.min.x >= -1e-9 && win.min.y >= -1e-9);
                assert!(win.max.x <= side + 1e-9 && win.max.y <= side + 1e-9);
                assert!((win.width() - WINDOW_SIDE.min(side)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn quick_curve_reports_sane_numbers() {
        let points = scale_curve(&[1000, 4000], 2, 4, 5, None);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.tasks_per_sec > 0.0, "{p:?}");
            assert!(p.decisions_per_sec > 0.0, "{p:?}");
            assert_eq!(p.tasks, 8);
            assert!(p.failed_tasks <= p.tasks);
            assert!(p.substrate_build_s >= 0.0);
            assert!(p.materialized_nodes <= p.nodes);
        }
        // The small point is fully covered by one window; the 4k point
        // must stay lazy (windows cover a fraction of the area).
        assert!(points[0].eager_build_s.is_some());
        assert!((points[0].area_side - 1000.0).abs() < 1e-6);
        assert!((points[1].area_side - 2000.0).abs() < 1e-6);
    }

    #[test]
    fn substrate_parity_holds_at_small_scale() {
        assert_substrate_parity(600, 3, 3, 5);
    }
}
