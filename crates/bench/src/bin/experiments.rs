//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! experiments <COMMAND> [--quick|--standard|--paper] [--out DIR]
//! ```
//!
//! Paper figures:
//!
//! * `fig11` — total number of hops vs destination count;
//! * `fig12` — per-destination hop count vs destination count;
//! * `fig14` — total energy cost vs destination count;
//! * `fig15` — failed tasks vs network density;
//!
//! extensions and ablations:
//!
//! * `figlatency` — mean task completion time vs destination count;
//! * `overhead` — header bytes vs the fixed 128 B abstraction;
//! * `treelen` — rrSTR vs MST one-shot tree length;
//! * `planar` — GMP on Gabriel vs RNG planarization;
//! * `pbm` — PBM bounded-search sensitivity;
//! * `mobility` — stale positions under random-waypoint movement;
//! * `power` — distance-scaled transmit power;
//! * `range` — radio-range sweep;
//! * `loss` — Figure 15 over a uniformly lossy channel;
//! * `fig15mac` — Figure 15 with collisions, jitter, and ARQ;
//! * `mactax` — per-protocol MAC retransmission overhead;
//! * `campaign` — fault-injection robustness sweep, oracle-judged
//!   (`BENCH_3.json`);
//! * `guarantees` — the same campaign with the guaranteed-delivery
//!   protocols (MCFR/GVG) on the panel and path stretch/transmission
//!   columns: the guarantees-vs-overhead frontier (`BENCH_6.json`);
//!
//! or `all` for everything. Results are printed as tables and written as
//! CSV (plus SVG charts for the figures) under `--out` (default
//! `results/`). `--threads N` caps the worker pool (default: all cores).
//! `--protocols GMP,MCFR,…` filters the campaign panels (unknown tokens
//! warn and are skipped; an empty selection falls back to the default).
//!
//! `bench` is different: it runs the fixed perf workload and writes
//! `BENCH_1.json` (decisions/sec, tasks/sec, wall-clock, allocs/decision)
//! under `--out` — the machine-readable perf trajectory described in
//! EXPERIMENTS.md. Run it from a `--release` build.
//!
//! `scale` runs the million-node scale curve over the sharded lazy
//! substrate and writes `BENCH_4.json` (per-task throughput, build time,
//! and peak RSS at 1k/10k/100k/1M nodes; `--quick` stops at 10k).
//!
//! `service` runs the concurrent session engine (`gmp-service`) against
//! back-to-back sequential runs of the identical session set and writes
//! `BENCH_5.json` (sessions/s, decisions/s, p50/p99 session latency under
//! churn; `--quick` runs the paper topology at 1k sessions).

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use gmp_bench::chart::LineChart;
use gmp_bench::experiments::{
    density_sweep, destination_sweep, loss_sweep, mac_tax, mobility_ablation, overhead_ablation,
    pbm_sensitivity, planar_ablation, power_ablation, range_sweep, set_worker_threads,
    tree_length_ablation, Scale, SweepRow,
};
use gmp_bench::protocols::ProtocolKind;
use gmp_bench::table::{render_table, write_csv};
use gmp_sim::SimConfig;

/// Counts heap allocations so the `bench` command can report
/// allocs/decision from a real run (the same metric the
/// `alloc_free` integration test asserts to be zero). A relaxed
/// fetch-add per allocation is noise for every other command.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn sweep_protocols() -> Vec<ProtocolKind> {
    vec![
        ProtocolKind::PbmBest,
        ProtocolKind::Lgs,
        ProtocolKind::Gmp,
        ProtocolKind::GmpNr,
        ProtocolKind::Smt,
        ProtocolKind::Grd,
    ]
}

/// Pivot sweep rows into a k × protocol table for one metric.
fn pivot(
    rows: &[SweepRow],
    protocols: &[ProtocolKind],
    metric: impl Fn(&SweepRow) -> f64,
) -> Vec<Vec<String>> {
    let mut ks: Vec<usize> = rows.iter().map(|r| r.k).collect();
    ks.sort_unstable();
    ks.dedup();
    let mut table = Vec::new();
    let mut header = vec!["k".to_string()];
    header.extend(protocols.iter().map(|p| p.label()));
    table.push(header);
    for k in ks {
        let mut line = vec![k.to_string()];
        for p in protocols {
            let label = p.label();
            let cell = rows
                .iter()
                .find(|r| r.k == k && r.protocol == label)
                .map(|r| format!("{:.2}", metric(r)))
                .unwrap_or_else(|| "-".into());
            line.push(cell);
        }
        table.push(line);
    }
    table
}

struct Args {
    command: String,
    scale: Scale,
    out: PathBuf,
    threads: usize,
    /// `--protocols` filter for the campaign commands; `None` = the
    /// command's default panel.
    protocols: Option<Vec<ProtocolKind>>,
}

/// Parses the `--protocols` comma-separated token list with the same
/// warn-and-default discipline as the environment knobs: unknown tokens
/// are reported on stderr and skipped, and a list that selects nothing
/// falls back to the command's default panel.
fn parse_protocol_filter(list: &str) -> Option<Vec<ProtocolKind>> {
    let mut kinds: Vec<ProtocolKind> = Vec::new();
    for token in list.split(',').filter(|t| !t.trim().is_empty()) {
        match ProtocolKind::from_token(token) {
            Some(kind) => {
                if !kinds.contains(&kind) {
                    kinds.push(kind);
                }
            }
            None => eprintln!(
                "warning: unknown protocol {token:?} in --protocols; ignoring it (known: \
                 GMP, GMPnr, PBM, LGS, LGK, GRD, DSM, SMT, MCFR, GVG)"
            ),
        }
    }
    if kinds.is_empty() {
        eprintln!("warning: --protocols {list:?} selects nothing; using the default panel");
        None
    } else {
        Some(kinds)
    }
}

fn parse_args() -> Result<Args, String> {
    let mut command = None;
    let mut scale = Scale::standard();
    let mut out = PathBuf::from("results");
    let mut threads = 0usize;
    let mut protocols = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = Scale::quick(),
            "--standard" => scale = Scale::standard(),
            "--paper" => scale = Scale::paper(),
            "--out" => {
                out = PathBuf::from(it.next().ok_or("--out needs a directory")?);
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a count")?;
                threads = n
                    .parse()
                    .map_err(|_| format!("invalid thread count: {n}"))?;
            }
            "--protocols" => {
                let list = it
                    .next()
                    .ok_or("--protocols needs a comma-separated list")?;
                protocols = parse_protocol_filter(&list);
            }
            c if !c.starts_with('-') && command.is_none() => command = Some(c.to_string()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        command: command.unwrap_or_else(|| "all".into()),
        scale,
        out,
        threads,
        protocols,
    })
}

fn run_sweep_figures(args: &Args, which: &[&str]) {
    let config = SimConfig::paper();
    let protocols = sweep_protocols();
    eprintln!(
        "running destination sweep: k ∈ {:?}, {} networks × {} tasks, {} protocols…",
        args.scale.k_values,
        args.scale.networks,
        args.scale.tasks_per_network,
        protocols.len()
    );
    let start = Instant::now();
    let rows = destination_sweep(&config, &args.scale, &protocols);
    eprintln!("sweep finished in {:.1}s", start.elapsed().as_secs_f64());

    type Metric = Box<dyn Fn(&SweepRow) -> f64>;
    let figures: [(&str, &str, Metric); 4] = [
        (
            "fig11",
            "Figure 11 — total number of hops per task",
            Box::new(|r: &SweepRow| r.total_hops),
        ),
        (
            "fig12",
            "Figure 12 — per-destination hop count",
            Box::new(|r: &SweepRow| r.dest_hops),
        ),
        (
            "fig14",
            "Figure 14 — total energy cost per task (J)",
            Box::new(|r: &SweepRow| r.energy_j),
        ),
        (
            "figlatency",
            "Extension — mean task completion time (ms)",
            Box::new(|r: &SweepRow| r.latency_ms),
        ),
    ];
    for (name, title, metric) in figures {
        if !which.contains(&name) {
            continue;
        }
        let table = pivot(&rows, &protocols, metric.as_ref());
        println!("\n{title}\n{}", render_table(&table));
        let path = args.out.join(format!("{name}.csv"));
        if let Err(e) = write_csv(&path, &table) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
        // Regenerate the figure itself.
        let mut chart = LineChart::new(
            title,
            "number of destinations (k)",
            title.split("— ").nth(1).unwrap_or("value"),
        );
        for p in &protocols {
            let label = p.label();
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .filter(|r| r.protocol == label)
                .map(|r| (r.k as f64, metric(r)))
                .collect();
            chart.series(label, pts);
        }
        let svg_path = args.out.join(format!("{name}.svg"));
        match std::fs::write(&svg_path, chart.render_svg()) {
            Ok(()) => eprintln!("wrote {}", svg_path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", svg_path.display()),
        }
    }
}

fn run_fig15(args: &Args) {
    let config = SimConfig::paper();
    let protocols = [ProtocolKind::PbmBest, ProtocolKind::Lgs, ProtocolKind::Gmp];
    // The paper sweeps 400–1000 nodes; under this repo's idealized MAC the
    // void-driven failure regime only starts below ~300 nodes (ns-2's
    // 802.11 losses pushed it higher), so sparser extension points are
    // included to expose the protocols' failure ordering. See
    // EXPERIMENTS.md.
    let node_counts = [120usize, 160, 200, 250, 300, 400, 600, 800, 1000];
    eprintln!(
        "running density sweep: nodes ∈ {node_counts:?}, k = 12, {} networks × {} tasks…",
        args.scale.networks, args.scale.tasks_per_network
    );
    let start = Instant::now();
    let rows = density_sweep(&config, &args.scale, &protocols, &node_counts);
    eprintln!(
        "density sweep finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    let mut table = vec![vec![
        "nodes".to_string(),
        "protocol".to_string(),
        "failed".to_string(),
        "tasks".to_string(),
        "failed/1000".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.nodes.to_string(),
            r.protocol.clone(),
            r.failed_tasks.to_string(),
            r.total_tasks.to_string(),
            format!("{:.1}", r.failed_per_1000),
        ]);
    }
    println!(
        "\nFigure 15 — failed tasks for different network densities\n{}",
        render_table(&table)
    );
    let path = args.out.join("fig15.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    let mut chart = LineChart::new(
        "Figure 15 — failed tasks per 1000 vs density",
        "number of nodes",
        "failed tasks per 1000",
    );
    for proto in &protocols {
        let label = proto.label();
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.protocol == label)
            .map(|r| (r.nodes as f64, r.failed_per_1000))
            .collect();
        chart.series(label, pts);
    }
    let svg_path = args.out.join("fig15.svg");
    match std::fs::write(&svg_path, chart.render_svg()) {
        Ok(()) => eprintln!("wrote {}", svg_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", svg_path.display()),
    }
}

fn run_overhead(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running header-overhead ablation…");
    let rows = overhead_ablation(&config, &args.scale);
    let mut table = vec![vec![
        "k".to_string(),
        "fixed B/task".to_string(),
        "encoded B/task".to_string(),
        "fixed J/task".to_string(),
        "encoded J/task".to_string(),
        "byte overhead".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.k.to_string(),
            format!("{:.0}", r.fixed_bytes),
            format!("{:.0}", r.encoded_bytes),
            format!("{:.4}", r.fixed_energy_j),
            format!("{:.4}", r.encoded_energy_j),
            format!("{:.2}×", r.encoded_bytes / r.fixed_bytes),
        ]);
    }
    println!(
        "\nAblation — destination-list header overhead (GMP)\n{}",
        render_table(&table)
    );
    let path = args.out.join("overhead.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_treelen(args: &Args) {
    eprintln!("running rrSTR vs MST tree-length ablation…");
    let rows = tree_length_ablation(&[3, 5, 10, 15, 20, 25], 200);
    let mut table = vec![vec![
        "n".to_string(),
        "rrSTR len".to_string(),
        "MST len".to_string(),
        "ratio".to_string(),
        "virtual junctions".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.n.to_string(),
            format!("{:.0}", r.rrstr_len),
            format!("{:.0}", r.mst_len),
            format!("{:.4}", r.ratio),
            format!("{:.2}", r.virtuals),
        ]);
    }
    println!(
        "\nAblation — rrSTR vs MST tree length (range-oblivious)\n{}",
        render_table(&table)
    );
    let path = args.out.join("treelen.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_planar(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running planar-subgraph ablation (GMP, k = 12)…");
    let rows = planar_ablation(&config, &args.scale, &[150, 200, 300, 500]);
    let mut table = vec![vec![
        "nodes".to_string(),
        "planar".to_string(),
        "failed".to_string(),
        "tasks".to_string(),
        "total hops".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.nodes.to_string(),
            r.planar.clone(),
            r.failed_tasks.to_string(),
            r.total_tasks.to_string(),
            format!("{:.2}", r.total_hops),
        ]);
    }
    println!(
        "\nAblation — perimeter routing on Gabriel vs RNG (GMP)\n{}",
        render_table(&table)
    );
    let path = args.out.join("planar.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_pbm_sensitivity(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running PBM search-bound sensitivity (λ = 0.3, k = 15)…");
    let rows = pbm_sensitivity(&config, &args.scale, 15);
    let mut table = vec![vec![
        "|W| cap".to_string(),
        "cands/dest".to_string(),
        "total hops".to_string(),
        "per-dest hops".to_string(),
        "routing secs".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.max_subset_size.to_string(),
            r.candidates_per_dest.to_string(),
            format!("{:.2}", r.total_hops),
            format!("{:.2}", r.dest_hops),
            format!("{:.2}", r.routing_seconds),
        ]);
    }
    println!(
        "\nAblation — PBM bounded-search sensitivity\n{}",
        render_table(&table)
    );
    let path = args.out.join("pbm_sensitivity.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_mobility(args: &Args) {
    eprintln!("running position-staleness (mobility) ablation…");
    let rows = mobility_ablation(
        500,
        (1.0, 5.0),
        &[0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 60.0],
        30,
        9,
    );
    let mut table = vec![vec![
        "staleness (s)".to_string(),
        "broken links".to_string(),
        "stale GMP transmissions".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            format!("{:.0}", r.staleness_s),
            format!("{:.1}%", r.broken_links * 100.0),
            format!("{:.1}%", r.stale_tx_fraction * 100.0),
        ]);
    }
    println!(
        "\nAblation — random-waypoint mobility vs stale positions (500 nodes, 1–5 m/s)\n{}",
        render_table(&table)
    );
    let path = args.out.join("mobility.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_power(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running power-control ablation…");
    let mut scale = args.scale.clone();
    scale.k_values = vec![3, 12, 25];
    let protocols = [
        ProtocolKind::Gmp,
        ProtocolKind::Lgs,
        ProtocolKind::Smt,
        ProtocolKind::Grd,
    ];
    let rows = power_ablation(&config, &scale, &protocols);
    let mut table = vec![vec![
        "k".to_string(),
        "protocol".to_string(),
        "fixed J/task".to_string(),
        "α=2 J/task".to_string(),
        "saving".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.k.to_string(),
            r.protocol.clone(),
            format!("{:.3}", r.fixed_energy_j),
            format!("{:.3}", r.controlled_energy_j),
            format!(
                "{:.0}%",
                (1.0 - r.controlled_energy_j / r.fixed_energy_j) * 100.0
            ),
        ]);
    }
    println!(
        "\nAblation — fixed vs distance-scaled transmit power\n{}",
        render_table(&table)
    );
    let path = args.out.join("power.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_range(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running radio-range sweep (k = 12)…");
    let protocols = [ProtocolKind::Gmp, ProtocolKind::Lgs, ProtocolKind::PbmBest];
    let ranges = [100.0, 125.0, 150.0, 175.0, 200.0];
    let rows = range_sweep(&config, &args.scale, &protocols, &ranges);
    let mut table = vec![vec![
        "range (m)".to_string(),
        "protocol".to_string(),
        "total hops".to_string(),
        "energy (J)".to_string(),
        "failed".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            format!("{:.0}", r.radio_range),
            r.protocol.clone(),
            format!("{:.2}", r.total_hops),
            format!("{:.3}", r.energy_j),
            r.failed_tasks.to_string(),
        ]);
    }
    println!(
        "\nExtension — radio-range sweep (1000 nodes, k = 12)\n{}",
        render_table(&table)
    );
    let path = args.out.join("range.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_fig15mac(args: &Args) {
    let config = SimConfig::paper()
        .with_collisions(true)
        .with_tx_jitter(0.005)
        .with_retransmissions(7);
    eprintln!(
        "running Figure 15 with collisions, 5 ms carrier-sense jitter, 7 retransmissions (k = 12)…"
    );
    let protocols = [ProtocolKind::Pbm(0.3), ProtocolKind::Lgs, ProtocolKind::Gmp];
    let node_counts = [400usize, 600, 800, 1000];
    let rows = density_sweep(&config, &args.scale, &protocols, &node_counts);
    let mut table = vec![vec![
        "nodes".to_string(),
        "protocol".to_string(),
        "failed".to_string(),
        "tasks".to_string(),
        "failed/1000".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.nodes.to_string(),
            r.protocol.clone(),
            r.failed_tasks.to_string(),
            r.total_tasks.to_string(),
            format!("{:.1}", r.failed_per_1000),
        ]);
    }
    println!(
        "\nFidelity ablation — Figure 15 with half-duplex/co-channel collisions\n{}",
        render_table(&table)
    );
    let path = args.out.join("fig15_mac.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_mactax(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running MAC retransmission-tax ablation (k = 15)…");
    let protocols = [
        ProtocolKind::Gmp,
        ProtocolKind::Lgs,
        ProtocolKind::Pbm(0.3),
        ProtocolKind::Smt,
        ProtocolKind::Grd,
    ];
    let rows = mac_tax(&config, &args.scale, &protocols, 15);
    let mut table = vec![vec![
        "protocol".to_string(),
        "ideal tx".to_string(),
        "MAC tx".to_string(),
        "tax".to_string(),
        "failed".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.protocol.clone(),
            format!("{:.1}", r.ideal_tx),
            format!("{:.1}", r.mac_tx),
            format!("{:+.1}%", r.tax * 100.0),
            r.failed_tasks.to_string(),
        ]);
    }
    println!(
        "\nFidelity ablation — MAC retransmission tax (collisions + ARQ)\n{}",
        render_table(&table)
    );
    let path = args.out.join("mac_tax.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn run_loss(args: &Args) {
    let config = SimConfig::paper();
    eprintln!("running lossy-channel Figure 15 variant (k = 12)…");
    let protocols = [ProtocolKind::Pbm(0.3), ProtocolKind::Lgs, ProtocolKind::Gmp];
    let rows = loss_sweep(
        &config,
        &args.scale,
        &protocols,
        &[400, 600, 800, 1000],
        &[0.01, 0.03],
    );
    let mut table = vec![vec![
        "nodes".to_string(),
        "loss".to_string(),
        "protocol".to_string(),
        "failed/1000".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            r.nodes.to_string(),
            format!("{:.0}%", r.loss * 100.0),
            r.protocol.clone(),
            format!("{:.0}", r.failed_per_1000),
        ]);
    }
    println!(
        "\nFidelity ablation — Figure 15 over a lossy channel\n{}",
        render_table(&table)
    );
    let path = args.out.join("fig15_loss.csv");
    match write_csv(&path, &table) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The fixed perf workload behind `BENCH_1.json`: steady-state forwarding
/// decisions through one warmed [`gmp_core::DecisionScratch`] fronted by
/// the [`gmp_core::TreeCache`] (the decision path as the router actually
/// runs it), full multicast tasks through the simulator, and the
/// allocation counter sampled around the decision loop.
fn run_bench(args: &Args) {
    use gmp_core::{DecisionScratch, TreeCache};
    use gmp_net::Topology;
    use gmp_sim::MulticastTask;

    let wall_start = Instant::now();
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 1);
    let ks = [5usize, 15, 25];
    let tasks: Vec<MulticastTask> = (0..30)
        .map(|i| MulticastTask::random(&topo, ks[i % ks.len()], 100 + i as u64))
        .collect();

    // Per-hop decision throughput at the source, through the decision
    // cache exactly as GmpRouter runs it. Two warm-up passes grow the
    // scratch to its high-water capacities and populate the cache; the
    // measured passes then serve verified hits allocation-free (the
    // `alloc_free` test asserts exactly this).
    eprintln!(
        "bench: decision throughput over {} tasks, k ∈ {ks:?}…",
        tasks.len()
    );
    let mut scratch = DecisionScratch::new();
    let mut cache = TreeCache::new();
    for _ in 0..2 {
        for t in &tasks {
            cache.group_destinations_cached(
                &mut scratch,
                &topo,
                t.source,
                &t.dests,
                true,
                None,
                None,
            );
        }
    }
    let warm_stats = cache.stats();
    let rounds = 300usize;
    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    let t0 = Instant::now();
    let mut covered = 0usize;
    for _ in 0..rounds {
        for t in &tasks {
            let g = cache.group_destinations_cached(
                &mut scratch,
                &topo,
                t.source,
                &t.dests,
                true,
                None,
                None,
            );
            covered += g.covered.len();
        }
    }
    let decision_secs = t0.elapsed().as_secs_f64();
    let allocs_after = ALLOCS.load(Ordering::SeqCst);
    let decisions = rounds * tasks.len();
    let decisions_per_sec = decisions as f64 / decision_secs;
    let allocs_per_decision = ratio((allocs_after - allocs_before) as f64, decisions as f64);
    assert!(covered > 0, "decision workload routed nothing");
    // Steady-state cache behaviour over the measured window only.
    let end_stats = cache.stats();
    let cache_hits = end_stats.hits - warm_stats.hits;
    let cache_misses = end_stats.misses - warm_stats.misses;
    let cache_fallbacks = end_stats.fallbacks - warm_stats.fallbacks;
    let cache_evictions = end_stats.evictions - warm_stats.evictions;
    let cache_epoch_flushes = end_stats.epoch_flushes - warm_stats.epoch_flushes;
    let cache_pool_reused = end_stats.pool_reused - warm_stats.pool_reused;
    let cache_entries_live = end_stats.entries_live;
    let cache_hit_rate = ratio(cache_hits as f64, decisions as f64);

    // End-to-end task throughput: the whole simulator loop (routing at
    // every hop, delivery bookkeeping, energy accounting).
    eprintln!("bench: end-to-end task throughput…");
    let task_rounds = 10usize;
    let t0 = Instant::now();
    let mut delivered = 0usize;
    for _ in 0..task_rounds {
        for t in &tasks {
            let report = ProtocolKind::Gmp.run_task(&topo, &config, t);
            delivered += usize::from(report.delivered_all());
        }
    }
    let task_secs = t0.elapsed().as_secs_f64();
    let task_count = task_rounds * tasks.len();
    let tasks_per_sec = task_count as f64 / task_secs;
    assert!(delivered > 0, "task workload delivered nothing");

    let wall_clock_s = wall_start.elapsed().as_secs_f64();
    let peak_rss_fields = gmp_bench::rss::peak_rss_json_fields();
    let json = format!(
        "{{\n  \"schema\": \"gmp-bench/1\",\n  \"workload\": {{\n    \"nodes\": {},\n    \"topology_seed\": 1,\n    \"k_values\": [5, 15, 25],\n    \"decision_samples\": {decisions},\n    \"task_samples\": {task_count}\n  }},\n  \"decisions_per_sec\": {decisions_per_sec:.1},\n  \"tasks_per_sec\": {tasks_per_sec:.1},\n  \"wall_clock_s\": {wall_clock_s:.3},\n  \"allocs_per_decision\": {allocs_per_decision:.4},\n  {peak_rss_fields},\n  \"decision_cache\": {{\n    \"hits\": {cache_hits},\n    \"misses\": {cache_misses},\n    \"fallbacks\": {cache_fallbacks},\n    \"evictions\": {cache_evictions},\n    \"epoch_flushes\": {cache_epoch_flushes},\n    \"entries_live\": {cache_entries_live},\n    \"pool_reused\": {cache_pool_reused},\n    \"hit_rate\": {cache_hit_rate:.4}\n  }}\n}}\n",
        config.node_count,
    );
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: could not create {}: {e}", args.out.display());
    }
    let path = args.out.join("BENCH_1.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    run_bench2(args);
}

/// The event-loop workload behind `BENCH_2.json`: whole-task simulation
/// throughput at the paper scale (1000 nodes, k = 25) through one warmed
/// [`gmp_sim::SimScratch`], with the collision model off and on (jittered
/// carrier sense, 7 retransmissions). The recorded `seed_baseline` numbers
/// were measured on the identical workload at the pre-overhaul commit;
/// `speedup_*` relates the two. The criterion bench `sim_throughput`
/// tracks the same workload interactively.
fn run_bench2(args: &Args) {
    use gmp_core::GmpRouter;
    use gmp_net::Topology;
    use gmp_sim::{MulticastTask, SimScratch, TaskRunner};

    let base = SimConfig::paper();
    let topo = Topology::random(&base.topology_config(), 1);
    let task_count = 64usize;
    let tasks: Vec<MulticastTask> = (0..task_count)
        .map(|i| MulticastTask::random(&topo, 25, 100 + i as u64))
        .collect();
    // Throughput numbers measured on the identical workload (same topology
    // seed, same tasks, warmed scratch) at the commit preceding the event-
    // loop overhaul, on the reference container.
    let seed_baseline_off = 6010.0f64;
    let seed_baseline_on = 5740.0f64;
    let window_s = 2.0f64;

    let mut measured = [0.0f64; 2];
    let mut cache_stats = [gmp_core::CacheStats::default(); 2];
    for (slot, (label, config)) in [
        ("collisions_off", base.clone()),
        (
            "collisions_on",
            base.clone()
                .with_collisions(true)
                .with_tx_jitter(0.005)
                .with_retransmissions(7),
        ),
    ]
    .into_iter()
    .enumerate()
    {
        eprintln!("bench: task throughput, {label} (n=1000, k=25)…");
        let runner = TaskRunner::new(&topo, &config);
        let mut router = GmpRouter::new();
        let mut scratch = SimScratch::new();
        for t in &tasks {
            let r = runner.run_with_scratch(&mut router, t, 0, &mut scratch);
            assert!(!r.truncated, "bench workload truncated");
        }
        // Best of three windows: throughput benchmarks on shared machines
        // are one-sided — interference only ever slows a run down, so the
        // fastest window is the closest estimate of the code's own cost.
        let mut best = 0.0f64;
        for _ in 0..3 {
            let t0 = Instant::now();
            let mut ran = 0usize;
            while t0.elapsed().as_secs_f64() < window_s {
                for t in &tasks {
                    let _ = runner.run_with_scratch(&mut router, t, 0, &mut scratch);
                }
                ran += tasks.len();
            }
            best = best.max(ran as f64 / t0.elapsed().as_secs_f64());
        }
        measured[slot] = best;
        cache_stats[slot] = router.cache_stats();
    }
    let [off, on] = measured;
    let cache_json = |s: gmp_core::CacheStats| {
        format!(
            "{{ \"hits\": {}, \"misses\": {}, \"fallbacks\": {}, \"evictions\": {}, \"epoch_flushes\": {}, \"entries_live\": {}, \"pool_reused\": {}, \"hit_rate\": {:.4} }}",
            s.hits,
            s.misses,
            s.fallbacks,
            s.evictions,
            s.epoch_flushes,
            s.entries_live,
            s.pool_reused,
            s.hit_rate()
        )
    };

    let peak_rss_fields = gmp_bench::rss::peak_rss_json_fields();
    let json = format!(
        "{{\n  \"schema\": \"gmp-bench/2\",\n  \"workload\": {{\n    \"nodes\": {},\n    \"topology_seed\": 1,\n    \"k\": 25,\n    \"tasks\": {task_count},\n    \"collision_config\": {{ \"tx_jitter_s\": 0.005, \"max_retransmissions\": 7 }},\n    \"window_s\": {window_s:.1}\n  }},\n  \"collisions_off_tasks_per_sec\": {off:.1},\n  \"collisions_on_tasks_per_sec\": {on:.1},\n  \"seed_baseline\": {{\n    \"collisions_off_tasks_per_sec\": {seed_baseline_off:.1},\n    \"collisions_on_tasks_per_sec\": {seed_baseline_on:.1}\n  }},\n  \"speedup_collisions_off\": {:.3},\n  \"speedup_collisions_on\": {:.3},\n  {peak_rss_fields},\n  \"decision_cache\": {{\n    \"collisions_off\": {},\n    \"collisions_on\": {}\n  }}\n}}\n",
        base.node_count,
        off / seed_baseline_off,
        on / seed_baseline_on,
        cache_json(cache_stats[0]),
        cache_json(cache_stats[1]),
    );
    print!("{json}");
    let path = args.out.join("BENCH_2.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The scale curve behind `BENCH_4.json`: per-task routing cost at
/// 1k/10k/100k/1M nodes over the sharded lazy substrate, at constant paper
/// density. `--quick` runs the 1k/10k prefix (the CI smoke gate). See
/// EXPERIMENTS.md for the trajectory table and DESIGN.md for the substrate.
fn run_scale(args: &Args) {
    use gmp_bench::rss::json_opt_u64;
    use gmp_bench::scale::{scale_curve, EAGER_CUTOFF, MARGIN, RADIO_RANGE, WINDOW_SIDE};

    let quick = args.scale == Scale::quick();
    let node_counts: Vec<usize> = if quick {
        vec![1_000, 10_000]
    } else {
        vec![1_000, 10_000, 100_000, 1_000_000]
    };
    let (windows, tasks_per_window) = if quick { (4, 25) } else { (8, 50) };
    let k = 10usize;
    eprintln!(
        "running scale curve: nodes ∈ {node_counts:?}, {windows} windows × {tasks_per_window} tasks, k = {k}…"
    );
    let start = Instant::now();
    let alloc_counter = || ALLOCS.load(Ordering::Relaxed);
    let points = scale_curve(
        &node_counts,
        windows,
        tasks_per_window,
        k,
        Some(&alloc_counter),
    );
    eprintln!(
        "scale curve finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    let mut table = vec![vec![
        "nodes".to_string(),
        "area side".to_string(),
        "substrate (s)".to_string(),
        "eager (s)".to_string(),
        "mat. nodes".to_string(),
        "tasks/s/core".to_string(),
        "decisions/s".to_string(),
        "allocs/dec".to_string(),
        "peak RSS".to_string(),
    ]];
    for p in &points {
        table.push(vec![
            p.nodes.to_string(),
            format!("{:.0} m", p.area_side),
            format!("{:.4}", p.substrate_build_s),
            p.eager_build_s
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "-".into()),
            p.materialized_nodes.to_string(),
            format!("{:.1}", p.tasks_per_sec),
            format!("{:.0}", p.decisions_per_sec),
            p.allocs_per_decision
                .map(|a| format!("{a:.4}"))
                .unwrap_or_else(|| "-".into()),
            p.peak_rss_bytes
                .map(|b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!(
        "\nScale curve — per-task cost vs network size (paper density)\n{}",
        render_table(&table)
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gmp-bench/4\",\n  \"workload\": {\n");
    json.push_str(&format!("    \"window_side_m\": {WINDOW_SIDE},\n"));
    json.push_str(&format!("    \"margin_m\": {MARGIN},\n"));
    json.push_str(&format!("    \"radio_range_m\": {RADIO_RANGE},\n"));
    json.push_str("    \"density_per_m2\": 0.001,\n");
    json.push_str(&format!("    \"windows\": {windows},\n"));
    json.push_str(&format!("    \"tasks_per_window\": {tasks_per_window},\n"));
    json.push_str(&format!("    \"k\": {k},\n"));
    json.push_str(&format!("    \"eager_cutoff_nodes\": {EAGER_CUTOFF}\n"));
    json.push_str("  },\n  \"note\": \"throughput figures are per worker-core; peak_rss_bytes is the process high-water mark, cumulative across points\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"nodes\": {}, \"area_side_m\": {}, \"tile_count\": {}, \
             \"substrate_build_s\": {}, \"eager_build_s\": {}, \"region_build_s\": {}, \
             \"materialized_tiles\": {}, \"materialized_nodes\": {}, \"substrate_heap_bytes\": {}, \
             \"windows\": {}, \"tasks\": {}, \"failed_tasks\": {}, \"tasks_per_sec\": {}, \
             \"decisions_per_sec\": {}, \"allocs_per_decision\": {}, \"wall_clock_s\": {}, \
             \"peak_rss_bytes\": {} }}{}\n",
            p.nodes,
            json_f64(p.area_side),
            p.tile_count,
            json_f64(p.substrate_build_s),
            p.eager_build_s.map_or_else(|| "null".into(), json_f64),
            json_f64(p.region_build_s),
            p.materialized_tiles,
            p.materialized_nodes,
            p.substrate_heap_bytes,
            p.windows,
            p.tasks,
            p.failed_tasks,
            json_f64(p.tasks_per_sec),
            json_f64(p.decisions_per_sec),
            p.allocs_per_decision
                .map_or_else(|| "null".into(), json_f64),
            json_f64(p.wall_clock_s),
            json_opt_u64(p.peak_rss_bytes),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  {}\n}}\n",
        gmp_bench::rss::peak_rss_json_fields()
    ));
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: could not create {}: {e}", args.out.display());
    }
    let path = args.out.join("BENCH_4.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The concurrent-service benchmark behind `BENCH_5.json`: sustained
/// multicast session throughput under churn through the `gmp-service`
/// engine, against back-to-back sequential runs of the identical session
/// set (the ≥2x headline gate), plus the multi-worker core-scaling curve
/// (1/2/4/8 workers over one shared [`gmp_core::ConcurrentTreeCache`]).
/// `--quick` runs the paper topology at 1k sessions (the CI smoke gate);
/// the full run adds 10k sessions and the sharded 100k-node substrate.
/// `--threads`/`GMP_BENCH_THREADS` collapses the worker axis to one
/// count. Run it from a `--release` build.
fn run_service(args: &Args) {
    use gmp_bench::service::{paper_scaling_curve, sharded_service_point, ServicePoint};

    let quick = args.scale == Scale::quick();
    let alloc_counter = || ALLOCS.load(Ordering::Relaxed);
    let axis: Vec<usize> = if args.threads > 0 {
        vec![args.threads]
    } else {
        vec![1, 2, 4, 8]
    };
    let start = Instant::now();
    let mut points: Vec<ServicePoint> = Vec::new();
    eprintln!("service: paper topology, 1000 sessions, workers ∈ {axis:?}…");
    points.extend(paper_scaling_curve(1_000, 42, Some(&alloc_counter), &axis));
    if !quick {
        eprintln!("service: paper topology, 10000 sessions, workers ∈ {axis:?}…");
        points.extend(paper_scaling_curve(10_000, 43, Some(&alloc_counter), &axis));
        eprintln!("service: sharded 100k substrate, 1000 sessions over 4 windows…");
        points.push(sharded_service_point(100_000, 4, 1_000, 44, 4));
        eprintln!("service: sharded 100k substrate, 10000 sessions over 8 windows…");
        points.push(sharded_service_point(100_000, 8, 10_000, 45, 8));
    }
    eprintln!(
        "service bench finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    let mut table = vec![vec![
        "topology".to_string(),
        "sessions".to_string(),
        "workers".to_string(),
        "seq/s".to_string(),
        "conc/s".to_string(),
        "speedup".to_string(),
        "par/s".to_string(),
        "scaling".to_string(),
        "par p50 ms".to_string(),
        "par p99 ms".to_string(),
        "hit rate".to_string(),
        "match".to_string(),
    ]];
    for p in &points {
        table.push(vec![
            p.topology.clone(),
            p.sessions.to_string(),
            p.threads.to_string(),
            format!("{:.0}", p.sequential_sessions_per_sec),
            format!("{:.0}", p.concurrent_sessions_per_sec),
            format!("{:.2}x", p.speedup),
            format!("{:.0}", p.parallel_sessions_per_sec),
            format!("{:.2}x", p.parallel_scaling),
            format!("{:.3}", p.parallel_p50_latency_ms),
            format!("{:.3}", p.parallel_p99_latency_ms),
            format!("{:.3}", p.cache.hit_rate()),
            p.reports_match.to_string(),
        ]);
    }
    println!(
        "\nConcurrent session service — throughput under churn vs sequential baseline\n{}",
        render_table(&table)
    );

    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"gmp-bench/5\",\n");
    json.push_str(
        "  \"note\": \"sequential baseline = back-to-back self-contained runs of the identical \
         session set (fresh protocol + scratch per session); latency is wall-clock admission to \
         completion of the as-fast-as-possible engine loop; the worker axis shards one engine \
         over a shared concurrent decision cache; reports_match certifies every concurrent and \
         parallel session report bit-identical to its sequential twin at every worker count\",\n",
    );
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"topology\": \"{}\", \"nodes\": {}, \"sessions\": {}, \"groups\": {}, \
             \"membership_updates\": {}, \"fault_crashes\": {}, \"skipped_empty\": {}, \
             \"sequential_wall_s\": {}, \"sequential_sessions_per_sec\": {}, \
             \"concurrent_wall_s\": {}, \"concurrent_sessions_per_sec\": {}, \
             \"decisions_per_sec\": {}, \"p50_latency_ms\": {}, \"p99_latency_ms\": {}, \
             \"threads\": {}, \"parallel_wall_s\": {}, \"parallel_sessions_per_sec\": {}, \
             \"parallel_p50_latency_ms\": {}, \"parallel_p99_latency_ms\": {}, \
             \"speedup\": {}, \"parallel_scaling\": {}, \"allocs_per_session\": {}, \
             \"steady_alloc_drift\": {}, \
             \"reports_match\": {}, \"decision_cache\": {{ \"hits\": {}, \"misses\": {}, \
             \"fallbacks\": {}, \"evictions\": {}, \"epoch_flushes\": {}, \"entries_live\": {}, \
             \"pool_reused\": {}, \"hit_rate\": {:.4} }} }}{}\n",
            p.topology,
            p.nodes,
            p.sessions,
            p.groups,
            p.membership_updates,
            p.fault_crashes,
            p.skipped_empty,
            json_f64(p.sequential_wall_s),
            json_f64(p.sequential_sessions_per_sec),
            json_f64(p.concurrent_wall_s),
            json_f64(p.concurrent_sessions_per_sec),
            json_f64(p.decisions_per_sec),
            json_f64(p.p50_latency_ms),
            json_f64(p.p99_latency_ms),
            p.threads,
            json_f64(p.parallel_wall_s),
            json_f64(p.parallel_sessions_per_sec),
            json_f64(p.parallel_p50_latency_ms),
            json_f64(p.parallel_p99_latency_ms),
            json_f64(p.speedup),
            json_f64(p.parallel_scaling),
            p.allocs_per_session.map_or_else(|| "null".into(), json_f64),
            p.steady_alloc_drift
                .map_or_else(|| "null".to_string(), |d| d.to_string()),
            p.reports_match,
            p.cache.hits,
            p.cache.misses,
            p.cache.fallbacks,
            p.cache.evictions,
            p.cache.epoch_flushes,
            p.cache.entries_live,
            p.cache.pool_reused,
            p.cache.hit_rate(),
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  {}\n}}\n",
        gmp_bench::rss::peak_rss_json_fields()
    ));
    print!("{json}");
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: could not create {}: {e}", args.out.display());
    }
    let path = args.out.join("BENCH_5.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// A ratio that is 0.0 (not NaN) when the denominator is zero, so
/// zero-sample runs emit gateable numbers instead of `null`.
fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Formats an f64 for JSON: non-finite values become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Identity of one campaign flavor: its table heading and output names.
struct CampaignSpec {
    title: &'static str,
    schema: &'static str,
    csv_name: &'static str,
    json_name: &'static str,
}

/// Runs a fault-injection campaign over `protocols` × `intensities` and
/// emits the table, the CSV, and the schema'd JSON under `--out`. Shared
/// by `campaign` (`BENCH_3.json`) and `guarantees` (`BENCH_6.json`).
fn emit_campaign(
    args: &Args,
    config: &SimConfig,
    protocols: &[ProtocolKind],
    intensities: &[f64],
    k: usize,
    spec: &CampaignSpec,
) {
    let &CampaignSpec {
        title,
        schema,
        csv_name,
        json_name,
    } = spec;
    use gmp_bench::campaign::robustness_campaign;
    use gmp_sim::FailureCause;

    eprintln!(
        "running {}: intensity ∈ {intensities:?}, k = {k}, {} networks × {} tasks, {} protocols…",
        args.command,
        args.scale.networks,
        args.scale.tasks_per_network,
        protocols.len()
    );
    let start = Instant::now();
    let rows = robustness_campaign(config, &args.scale, protocols, intensities, k);
    eprintln!(
        "{} finished in {:.1}s",
        args.command,
        start.elapsed().as_secs_f64()
    );

    let mut table = vec![vec![
        "intensity".to_string(),
        "protocol".to_string(),
        "delivery".to_string(),
        "justified".to_string(),
        "unjustified".to_string(),
        "unjust rate".to_string(),
        "dest hops".to_string(),
        "stretch".to_string(),
        "txs".to_string(),
        "hop overhead".to_string(),
    ]];
    for r in &rows {
        table.push(vec![
            format!("{:.2}", r.intensity),
            r.protocol.clone(),
            format!("{:.4}", r.delivery_ratio),
            r.justified_failures.to_string(),
            r.unjustified_failures.to_string(),
            format!("{:.4}", r.unjustified_rate),
            format!("{:.2}", r.mean_dest_hops),
            if r.mean_path_stretch.is_finite() {
                format!("{:.3}", r.mean_path_stretch)
            } else {
                "-".into()
            },
            format!("{:.1}", r.total_hops),
            if r.hop_overhead.is_finite() {
                format!("{:+.1}%", r.hop_overhead * 100.0)
            } else {
                "-".into()
            },
        ]);
    }
    println!("\n{title}\n{}", render_table(&table));
    let csv_path = args.out.join(csv_name);
    match write_csv(&csv_path, &table) {
        Ok(()) => eprintln!("wrote {}", csv_path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", csv_path.display()),
    }

    let mut json = String::new();
    json.push_str(&format!(
        "{{\n  \"schema\": \"{schema}\",\n  \"workload\": {{\n"
    ));
    json.push_str(&format!("    \"nodes\": {},\n", config.node_count));
    json.push_str(&format!("    \"k\": {k},\n"));
    json.push_str(&format!("    \"networks\": {},\n", args.scale.networks));
    json.push_str(&format!(
        "    \"tasks_per_network\": {},\n",
        args.scale.tasks_per_network
    ));
    json.push_str(&format!(
        "    \"max_path_hops\": {},\n",
        config.max_path_hops
    ));
    json.push_str(&format!(
        "    \"intensities\": [{}],\n",
        intensities
            .iter()
            .map(|i| format!("{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "    \"protocols\": [{}]\n  }},\n  \"rows\": [\n",
        protocols
            .iter()
            .map(|p| format!("\"{}\"", p.label()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for (i, r) in rows.iter().enumerate() {
        let causes = FailureCause::ALL
            .iter()
            .map(|c| format!("\"{}\": {}", c.as_str(), r.cause_counts[c.index()]))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{ \"intensity\": {}, \"protocol\": \"{}\", \"delivered\": {}, \"total_dests\": {}, \
             \"delivery_ratio\": {}, \"justified_failures\": {}, \"unjustified_failures\": {}, \
             \"unjustified_rate\": {}, \"mean_dest_hops\": {}, \"mean_path_stretch\": {}, \
             \"total_hops\": {}, \"hop_overhead\": {}, \"causes\": {{ {} }} }}{}\n",
            r.intensity,
            r.protocol,
            r.delivered,
            r.total_dests,
            json_f64(r.delivery_ratio),
            r.justified_failures,
            r.unjustified_failures,
            json_f64(r.unjustified_rate),
            json_f64(r.mean_dest_hops),
            json_f64(r.mean_path_stretch),
            json_f64(r.total_hops),
            json_f64(r.hop_overhead),
            causes,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  {}\n}}\n",
        gmp_bench::rss::peak_rss_json_fields()
    ));
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("warning: could not create {}: {e}", args.out.display());
    }
    let path = args.out.join(json_name);
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// The robustness campaign behind `BENCH_3.json`: crash an increasing
/// fraction of nodes at t = 0 and let the delivery-guarantee oracle split
/// every failed destination into justified (graph-disconnected) and
/// unjustified (protocol-attributable) losses. See EXPERIMENTS.md.
fn run_campaign(args: &Args) {
    let config = SimConfig::paper();
    let protocols = args.protocols.clone().unwrap_or_else(|| {
        vec![
            ProtocolKind::Gmp,
            ProtocolKind::Lgs,
            ProtocolKind::Grd,
            ProtocolKind::Smt,
        ]
    });
    emit_campaign(
        args,
        &config,
        &protocols,
        &[0.0, 0.05, 0.10, 0.20],
        10,
        &CampaignSpec {
            title: "Robustness campaign — delivery under node crashes, oracle-judged",
            schema: "gmp-bench/3",
            csv_name: "campaign.csv",
            json_name: "BENCH_3.json",
        },
    );
}

/// The guarantees-vs-overhead frontier behind `BENCH_6.json`: the same
/// oracle-judged crash campaign, with the guaranteed-delivery protocols
/// (MCFR/GVG) alongside the best-effort panel so delivery ratio,
/// unjustified failures, transmissions, and path stretch can be traded
/// off in one table. The hop budget is raised well above the campaign
/// default because FACE-1 void detours are long but finite — a truncated
/// walk would void the certificate. See EXPERIMENTS.md.
fn run_guarantees(args: &Args) {
    let config = SimConfig::paper().with_max_path_hops(4000);
    let protocols = args.protocols.clone().unwrap_or_else(|| {
        vec![
            ProtocolKind::Gmp,
            ProtocolKind::Lgs,
            ProtocolKind::Grd,
            ProtocolKind::Smt,
            ProtocolKind::Mcfr,
            ProtocolKind::Gvg,
        ]
    });
    emit_campaign(
        args,
        &config,
        &protocols,
        &[0.0, 0.05, 0.10, 0.20],
        10,
        &CampaignSpec {
            title: "Guarantees frontier — guaranteed delivery vs overhead, oracle-judged",
            schema: "gmp-bench/6",
            csv_name: "guarantees.csv",
            json_name: "BENCH_6.json",
        },
    );
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: experiments <all|bench|scale|service|fig11|fig12|fig14|figlatency|fig15|overhead|treelen|planar|pbm|mobility|power|range|loss|fig15mac|mactax|campaign|guarantees> \
                 [--quick|--standard|--paper] [--threads N] [--out DIR] [--protocols LIST]"
            );
            return ExitCode::FAILURE;
        }
    };
    // Precedence: an explicit --threads wins; otherwise the
    // GMP_BENCH_THREADS environment knob (malformed values warn and fall
    // back to the default); otherwise all available cores.
    if args.threads == 0 {
        args.threads = gmp_bench::experiments::threads_from_env();
    }
    set_worker_threads(args.threads);
    match args.command.as_str() {
        "all" => {
            run_sweep_figures(&args, &["fig11", "fig12", "fig14", "figlatency"]);
            run_fig15(&args);
            run_overhead(&args);
            run_treelen(&args);
            run_planar(&args);
            run_pbm_sensitivity(&args);
            run_mobility(&args);
            run_power(&args);
            run_range(&args);
            run_loss(&args);
            run_fig15mac(&args);
            run_mactax(&args);
            run_campaign(&args);
            run_guarantees(&args);
        }
        "fig11" => run_sweep_figures(&args, &["fig11"]),
        "fig12" => run_sweep_figures(&args, &["fig12"]),
        "fig14" => run_sweep_figures(&args, &["fig14"]),
        "figlatency" => run_sweep_figures(&args, &["figlatency"]),
        "planar" => run_planar(&args),
        "pbm" => run_pbm_sensitivity(&args),
        "mobility" => run_mobility(&args),
        "power" => run_power(&args),
        "range" => run_range(&args),
        "loss" => run_loss(&args),
        "fig15mac" => run_fig15mac(&args),
        "mactax" => run_mactax(&args),
        "campaign" => run_campaign(&args),
        "guarantees" => run_guarantees(&args),
        "fig15" => run_fig15(&args),
        "overhead" => run_overhead(&args),
        "treelen" => run_treelen(&args),
        "bench" => run_bench(&args),
        "scale" => run_scale(&args),
        "service" => run_service(&args),
        other => {
            eprintln!("unknown command: {other}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
