//! Peak-RSS measurement shared by the `bench`, `campaign`, and `scale`
//! commands.
//!
//! Linux exposes the high-water mark of a process's resident set as the
//! `VmHWM` line of `/proc/self/status`; that is exactly the "how much
//! memory did this run ever need" number the perf trajectory files record.
//! The value is cumulative over the process lifetime — a command that runs
//! several workloads reports the largest of them — which the JSON consumers
//! document.

/// Peak resident set size of the current process in bytes, or `None` where
/// the kernel does not expose it (non-Linux, or a locked-down `/proc`).
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm(&status)
}

/// Parses the `VmHWM` line (reported in kB) out of `/proc/self/status`
/// contents.
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

/// Formats an optional byte count as a JSON value: the number, or `null`.
pub fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |b| b.to_string())
}

/// Renders the peak-RSS fields every `BENCH_*.json` emitter embeds:
/// `"peak_rss_bytes"` plus, when the value is unavailable, a
/// `"peak_rss_note"` naming why (`VmHWM` is Linux-only, so off-Linux runs
/// record an explicit `null` with the platform spelled out rather than a
/// silently absent metric).
pub fn peak_rss_json_fields() -> String {
    render_peak_rss_fields(
        peak_rss_bytes(),
        cfg!(target_os = "linux"),
        std::env::consts::OS,
    )
}

/// Testable core of [`peak_rss_json_fields`].
fn render_peak_rss_fields(peak: Option<u64>, is_linux: bool, os: &str) -> String {
    match peak {
        Some(bytes) => format!("\"peak_rss_bytes\": {bytes}"),
        None if is_linux => "\"peak_rss_bytes\": null,\n  \"peak_rss_note\": \
                             \"VmHWM missing from /proc/self/status\""
            .into(),
        None => format!(
            "\"peak_rss_bytes\": null,\n  \"peak_rss_note\": \
             \"unavailable on {os}: VmHWM requires linux /proc\""
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\ttest\nVmPeak:\t  123 kB\nVmHWM:\t    2048 kB\nVmRSS:\t 1 kB\n";
        assert_eq!(parse_vm_hwm(status), Some(2048 * 1024));
    }

    #[test]
    fn missing_line_is_none() {
        assert_eq!(parse_vm_hwm("Name:\ttest\n"), None);
    }

    #[test]
    fn malformed_value_is_none() {
        assert_eq!(parse_vm_hwm("VmHWM:\tpotato kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn linux_reports_a_positive_peak() {
        let rss = peak_rss_bytes().expect("VmHWM available on Linux");
        assert!(rss > 1024 * 1024, "a test process uses at least a MiB");
    }

    #[test]
    fn json_formatting() {
        assert_eq!(json_opt_u64(None), "null");
        assert_eq!(json_opt_u64(Some(42)), "42");
    }

    #[test]
    fn present_peak_renders_a_bare_number_field() {
        assert_eq!(
            render_peak_rss_fields(Some(2048), true, "linux"),
            "\"peak_rss_bytes\": 2048"
        );
    }

    #[test]
    fn non_linux_records_explicit_null_with_platform_note() {
        let fields = render_peak_rss_fields(None, false, "macos");
        assert!(fields.starts_with("\"peak_rss_bytes\": null"));
        assert!(
            fields.contains("unavailable on macos: VmHWM requires linux /proc"),
            "platform note must name the OS: {fields}"
        );
    }

    #[test]
    fn linux_without_vmhwm_notes_the_missing_proc_line() {
        let fields = render_peak_rss_fields(None, true, "linux");
        assert!(fields.starts_with("\"peak_rss_bytes\": null"));
        assert!(fields.contains("VmHWM missing from /proc/self/status"));
    }

    #[test]
    fn emitter_fields_are_valid_json_fragments() {
        // Whatever platform the tests run on, the rendered fragment must
        // embed into `{ ... }` as valid JSON.
        let json = format!("{{\n  {}\n}}\n", peak_rss_json_fields());
        assert!(json.contains("\"peak_rss_bytes\""));
        let colons = json.matches(':').count();
        assert!(colons == 1 || colons == 2);
    }
}
