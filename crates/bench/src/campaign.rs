//! Fault-injection robustness campaigns (`BENCH_3.json`).
//!
//! The paper evaluates GMP on ideal static networks and only discusses
//! voids qualitatively (Section 4.2). This campaign makes robustness a
//! measured trajectory: sweep a fault-intensity dial (the fraction of
//! nodes crashed at t = 0 by [`FaultPlan::random_crashes`]) against a
//! protocol panel, and let the delivery-guarantee oracle split every
//! failed destination into *justified* (the faulted graph is genuinely
//! disconnected — no protocol could have delivered) and *unjustified*
//! (a route existed and the protocol missed it). The unjustified rate is
//! the metric the ideal-channel figures cannot show: it isolates
//! protocol-attributable loss from topology-attributable loss.

use std::sync::Arc;

use gmp_net::{NodeId, Topology};
use gmp_sim::{FailureCause, FaultEvent, FaultPlan, MulticastTask, SimConfig};

use crate::experiments::{network_seed, parallel_map, task_seed, Scale};
use crate::protocols::ProtocolKind;

/// Number of distinct [`FailureCause`] values (histogram width).
pub const CAUSE_COUNT: usize = FailureCause::ALL.len();

/// One aggregated line of the robustness campaign: a (fault intensity,
/// protocol) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Fraction of nodes crashed at t = 0.
    pub intensity: f64,
    /// Protocol label.
    pub protocol: String,
    /// Destinations delivered across all tasks.
    pub delivered: usize,
    /// Destinations attempted across all tasks.
    pub total_dests: usize,
    /// `delivered / total_dests`.
    pub delivery_ratio: f64,
    /// Failed destinations the oracle blames on the faulted graph
    /// (disconnected or dead destination) — unavoidable losses.
    pub justified_failures: usize,
    /// Failed destinations that were reachable on the faulted graph —
    /// protocol-attributable losses.
    pub unjustified_failures: usize,
    /// `unjustified_failures / total_dests`.
    pub unjustified_rate: f64,
    /// Mean per-destination hop count over delivered destinations.
    pub mean_dest_hops: f64,
    /// Mean path stretch over delivered destinations: delivered hop count
    /// divided by the BFS hop distance on the faulted graph (1.0 =
    /// shortest possible; `NaN` when nothing was delivered). The
    /// guarantees-vs-overhead frontier plots this against
    /// `unjustified_rate`.
    pub mean_path_stretch: f64,
    /// Mean transmissions per task.
    pub total_hops: f64,
    /// `total_hops` relative to the same protocol's intensity-0 row
    /// (`NaN` when the sweep has no zero-intensity baseline).
    pub hop_overhead: f64,
    /// Failure histogram indexed by [`FailureCause::index`].
    pub cause_counts: [usize; CAUSE_COUNT],
    /// Tasks aggregated into this row.
    pub tasks: usize,
}

/// Per-node liveness implied by a campaign fault plan at t = 0 (the
/// campaigns crash nodes only at the start, so this is the whole story).
/// The task source is always exempt, matching the runtime.
fn initial_alive(plan: &FaultPlan, n: usize, source: NodeId) -> Vec<bool> {
    let mut alive = vec![true; n];
    for e in &plan.events {
        if let FaultEvent::Crash { node, at_s } = e {
            if *at_s <= 0.0 {
                alive[node.index()] = false;
            }
        }
    }
    alive[source.index()] = true;
    alive
}

/// BFS hop distances from `source` over the alive unit-disk graph
/// (`u32::MAX` = unreachable).
fn bfs_hops(topo: &Topology, alive: &[bool], source: NodeId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.len()];
    dist[source.index()] = 0;
    let mut q = std::collections::VecDeque::from([source]);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for &v in topo.neighbors(u) {
            if alive[v.index()] && dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// Seed of the crash-placement shuffle for one (network, intensity) cell.
/// Distinct from the topology and task seeds so the three random layers
/// never correlate.
pub(crate) fn crash_seed(net: usize, intensity_idx: usize) -> u64 {
    0xFA17_0000 + net as u64 * 64 + intensity_idx as u64
}

/// Runs the robustness campaign: for every intensity, every protocol
/// routes the *same* tasks over the *same* networks with the *same*
/// crash sets, so the rows differ only in the protocol's reaction to the
/// faults. `k` destinations per task.
pub fn robustness_campaign(
    base: &SimConfig,
    scale: &Scale,
    protocols: &[ProtocolKind],
    intensities: &[f64],
    k: usize,
) -> Vec<CampaignRow> {
    let topologies: Vec<Arc<Topology>> = (0..scale.networks)
        .map(|i| Arc::new(Topology::random(&base.topology_config(), network_seed(i))))
        .collect();

    struct Job {
        intensity_idx: usize,
        net: usize,
        proto: ProtocolKind,
    }
    struct Partial {
        intensity_idx: usize,
        label: String,
        delivered: usize,
        total_dests: usize,
        justified: usize,
        unjustified: usize,
        dest_hops: f64,
        dest_hops_n: usize,
        stretch: f64,
        stretch_n: usize,
        hops: f64,
        causes: [usize; CAUSE_COUNT],
    }
    let mut jobs = Vec::new();
    for intensity_idx in 0..intensities.len() {
        for net in 0..scale.networks {
            for &proto in protocols {
                jobs.push(Job {
                    intensity_idx,
                    net,
                    proto,
                });
            }
        }
    }
    let partials = parallel_map(jobs, |job| {
        let intensity = intensities[job.intensity_idx];
        let topo = &topologies[job.net];
        let plan = FaultPlan::random_crashes(
            base.node_count,
            intensity,
            0.0,
            crash_seed(job.net, job.intensity_idx),
        );
        let config = base.clone().with_faults(plan);
        let mut p = Partial {
            intensity_idx: job.intensity_idx,
            label: job.proto.label(),
            delivered: 0,
            total_dests: 0,
            justified: 0,
            unjustified: 0,
            dest_hops: 0.0,
            dest_hops_n: 0,
            stretch: 0.0,
            stretch_n: 0,
            hops: 0.0,
            causes: [0; CAUSE_COUNT],
        };
        for t in 0..scale.tasks_per_network {
            let task = MulticastTask::random(topo, k, task_seed(job.net, t));
            let report = job.proto.run_task(topo, &config, &task);
            p.total_dests += task.dests.len();
            p.delivered += report.delivered_count();
            p.hops += report.transmissions as f64;
            if let Some(h) = report.mean_dest_hops() {
                p.dest_hops += h;
                p.dest_hops_n += 1;
            }
            if !report.delivery_hops.is_empty() {
                let alive = initial_alive(&config.faults, base.node_count, task.source);
                let shortest = bfs_hops(topo, &alive, task.source);
                for (&d, &h) in &report.delivery_hops {
                    let s = shortest[d.index()];
                    if s > 0 && s != u32::MAX {
                        p.stretch += h as f64 / s as f64;
                        p.stretch_n += 1;
                    }
                }
            }
            for f in &report.failed_dests {
                p.causes[f.cause.index()] += 1;
                if f.is_justified() {
                    p.justified += 1;
                } else {
                    p.unjustified += 1;
                }
            }
        }
        p
    });

    // Aggregate over networks, then relate hop counts to the protocol's
    // own zero-intensity baseline.
    let mut rows: Vec<CampaignRow> = Vec::new();
    for (intensity_idx, &intensity) in intensities.iter().enumerate() {
        for proto in protocols {
            let label = proto.label();
            let mut delivered = 0usize;
            let mut total_dests = 0usize;
            let mut justified = 0usize;
            let mut unjustified = 0usize;
            let mut dest_hops = 0.0;
            let mut dest_hops_n = 0usize;
            let mut stretch = 0.0;
            let mut stretch_n = 0usize;
            let mut hops = 0.0;
            let mut causes = [0usize; CAUSE_COUNT];
            for p in &partials {
                if p.intensity_idx == intensity_idx && p.label == label {
                    delivered += p.delivered;
                    total_dests += p.total_dests;
                    justified += p.justified;
                    unjustified += p.unjustified;
                    dest_hops += p.dest_hops;
                    dest_hops_n += p.dest_hops_n;
                    stretch += p.stretch;
                    stretch_n += p.stretch_n;
                    hops += p.hops;
                    for (slot, c) in causes.iter_mut().zip(p.causes) {
                        *slot += c;
                    }
                }
            }
            let tasks = scale.tasks();
            rows.push(CampaignRow {
                intensity,
                protocol: label,
                delivered,
                total_dests,
                delivery_ratio: delivered as f64 / total_dests.max(1) as f64,
                justified_failures: justified,
                unjustified_failures: unjustified,
                unjustified_rate: unjustified as f64 / total_dests.max(1) as f64,
                mean_dest_hops: if dest_hops_n > 0 {
                    dest_hops / dest_hops_n as f64
                } else {
                    f64::NAN
                },
                mean_path_stretch: if stretch_n > 0 {
                    stretch / stretch_n as f64
                } else {
                    f64::NAN
                },
                total_hops: hops / tasks as f64,
                hop_overhead: f64::NAN, // filled below
                cause_counts: causes,
                tasks,
            });
        }
    }
    for i in 0..rows.len() {
        let baseline = rows
            .iter()
            .find(|r| r.intensity == 0.0 && r.protocol == rows[i].protocol)
            .map(|r| r.total_hops);
        if let Some(b) = baseline {
            if b > 0.0 {
                rows[i].hop_overhead = rows[i].total_hops / b - 1.0;
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (SimConfig, Scale) {
        (
            SimConfig::paper()
                .with_area_side(600.0)
                .with_node_count(250),
            Scale {
                networks: 1,
                tasks_per_network: 4,
                k_values: vec![6],
            },
        )
    }

    #[test]
    fn campaign_produces_full_grid_with_consistent_counts() {
        let (config, scale) = tiny();
        let rows = robustness_campaign(
            &config,
            &scale,
            &[ProtocolKind::Gmp, ProtocolKind::Smt],
            &[0.0, 0.1],
            6,
        );
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert_eq!(
                r.delivered + r.justified_failures + r.unjustified_failures,
                r.total_dests,
                "{r:?}"
            );
            assert_eq!(
                r.cause_counts.iter().sum::<usize>(),
                r.justified_failures + r.unjustified_failures
            );
            assert!((0.0..=1.0).contains(&r.delivery_ratio));
        }
    }

    #[test]
    fn zero_intensity_rows_are_fault_free() {
        let (config, scale) = tiny();
        let rows = robustness_campaign(&config, &scale, &[ProtocolKind::Gmp], &[0.0], 6);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].delivery_ratio, 1.0, "{:?}", rows[0]);
        assert_eq!(rows[0].hop_overhead, 0.0);
    }

    #[test]
    fn path_stretch_is_at_least_one_and_tracks_shortest_paths() {
        let (config, scale) = tiny();
        let rows = robustness_campaign(
            &config,
            &scale,
            &[ProtocolKind::Grd, ProtocolKind::Mcfr, ProtocolKind::Gvg],
            &[0.0, 0.1],
            6,
        );
        for r in &rows {
            if r.delivered > 0 {
                assert!(
                    r.mean_path_stretch >= 1.0 - 1e-9,
                    "no protocol can beat BFS shortest hops: {r:?}"
                );
                assert!(r.mean_path_stretch.is_finite(), "{r:?}");
            }
        }
    }

    #[test]
    fn guaranteed_protocols_have_zero_unjustified_failures_in_campaign() {
        let (config, scale) = tiny();
        let config = config.with_max_path_hops(4000);
        let rows = robustness_campaign(
            &config,
            &scale,
            &[ProtocolKind::Mcfr, ProtocolKind::Gvg],
            &[0.0, 0.15, 0.3],
            6,
        );
        for r in &rows {
            assert_eq!(
                r.unjustified_failures, 0,
                "{} leaked unjustified failures at intensity {}: {r:?}",
                r.protocol, r.intensity
            );
        }
    }

    #[test]
    fn crash_seeds_are_distinct_across_cells() {
        let mut seen = std::collections::BTreeSet::new();
        for net in 0..10 {
            for ii in 0..8 {
                assert!(seen.insert(crash_seed(net, ii)));
            }
        }
    }
}
