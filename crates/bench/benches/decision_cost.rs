//! Section 4.2 — per-hop forwarding decision cost.
//!
//! The paper argues GMP's per-step complexity is `O(n² log n + n·m)`
//! (destinations × neighbors), comparable to LGS's `O(n² + n·m)` and far
//! below PBM's exponential subset search. These benchmarks measure one
//! forwarding decision at the source for each protocol across destination
//! counts at the paper's density.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_baselines::{LgsRouter, PbmRouter};
use gmp_core::{group_destinations, DecisionScratch, GmpRouter};
use gmp_net::Topology;
use gmp_sim::{MulticastPacket, MulticastTask, NodeContext, Protocol, SimConfig};

fn bench_decisions(c: &mut Criterion) {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 1);
    let mut group = c.benchmark_group("forwarding_decision");
    for k in [5usize, 15, 25] {
        let task = MulticastTask::random(&topo, k, 7);
        let ctx = NodeContext {
            topo: &topo,
            node: task.source,
            config: &config,
            alive: None,
        };
        let packet = MulticastPacket::new(0, task.source, task.dests.clone());
        group.bench_with_input(BenchmarkId::new("GMP", k), &k, |b, _| {
            let mut p = GmpRouter::new();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                p.on_packet(&ctx, packet.clone(), &mut out)
            });
        });
        group.bench_with_input(BenchmarkId::new("GMPnr", k), &k, |b, _| {
            let mut p = GmpRouter::without_radio_range_awareness();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                p.on_packet(&ctx, packet.clone(), &mut out)
            });
        });
        group.bench_with_input(BenchmarkId::new("LGS", k), &k, |b, _| {
            let mut p = LgsRouter::new();
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                p.on_packet(&ctx, packet.clone(), &mut out)
            });
        });
        group.bench_with_input(BenchmarkId::new("PBM", k), &k, |b, _| {
            let mut p = PbmRouter::with_lambda(0.3);
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                p.on_packet(&ctx, packet.clone(), &mut out)
            });
        });
    }
    group.finish();
}

/// The tentpole regression guard: one grouping decision through the reused
/// [`DecisionScratch`] versus the allocating [`group_destinations`] (which
/// builds every buffer from scratch) versus `seed_ref`, a faithful replica
/// of the pre-optimization algorithm (eager ratio evaluation, dead-pair
/// `HashSet`, fresh buffers per decision). The acceptance bar is
/// `scratch_reuse` ≥ 2× faster than `seed_reference` at k = 25.
fn bench_scratch_vs_fresh(c: &mut Criterion) {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 1);
    let mut group = c.benchmark_group("decision_scratch");
    for k in [5usize, 15, 25] {
        let task = MulticastTask::random(&topo, k, 7);
        // The replica must still make the exact same decisions.
        assert_eq!(
            seed_ref::group_destinations(&topo, task.source, &task.dests, true, None),
            group_destinations(&topo, task.source, &task.dests, true, None),
            "seed replica diverged from the current grouping at k={k}"
        );
        group.bench_with_input(BenchmarkId::new("seed_reference", k), &k, |b, _| {
            b.iter(|| {
                let g = seed_ref::group_destinations(&topo, task.source, &task.dests, true, None);
                black_box(g.covered.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("fresh_alloc", k), &k, |b, _| {
            b.iter(|| {
                let g = group_destinations(&topo, task.source, &task.dests, true, None);
                black_box(g.covered.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("scratch_reuse", k), &k, |b, _| {
            let mut scratch = DecisionScratch::new();
            b.iter(|| {
                let g = scratch.group_destinations_into(
                    &topo,
                    task.source,
                    &task.dests,
                    true,
                    None,
                    None,
                );
                black_box(g.covered.len())
            });
        });
    }
    group.finish();
}

/// A faithful replica of the forwarding decision as shipped in the growth
/// seed, kept as the benchmark's fixed reference point: eager
/// `reduction_ratio` on every heap push, a 40-byte `PairEntry` carrying the
/// Steiner point, a `HashSet` of dead pairs consulted on every pop, and a
/// fresh tree / heap / activity vector / destination buffers per decision.
/// Behavior (not code) is pinned by the equality assertion above.
mod seed_ref {
    use std::cmp::Ordering;
    use std::collections::{BinaryHeap, HashSet, VecDeque};

    use gmp_core::grouping::find_next_hop;
    use gmp_core::{CoveredGroup, Grouping};
    use gmp_geom::Point;
    use gmp_net::{NodeId, Topology};
    use gmp_steiner::tree::VertexId;
    use gmp_steiner::{reduction_ratio, RadioRange, SteinerTree, VertexKind};

    #[derive(Debug, Clone, Copy)]
    struct PairEntry {
        ratio: f64,
        steiner: Point,
        u: VertexId,
        v: VertexId,
    }

    impl PartialEq for PairEntry {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }
    impl Eq for PairEntry {}
    impl PartialOrd for PairEntry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for PairEntry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.ratio
                .total_cmp(&other.ratio)
                .then_with(|| other.u.cmp(&self.u))
                .then_with(|| other.v.cmp(&self.v))
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn rrstr(source: Point, dests: &[Point], mode: RadioRange) -> SteinerTree {
        let mut tree = SteinerTree::new(source);
        let n = dests.len();
        let mut active: Vec<bool> = vec![false];
        for (i, &d) in dests.iter().enumerate() {
            tree.add_vertex(VertexKind::Terminal(i), d);
            active.push(true);
        }

        let mut heap: BinaryHeap<PairEntry> = BinaryHeap::new();
        let mut dead_pairs: HashSet<(VertexId, VertexId)> = HashSet::new();
        let push_pair =
            |heap: &mut BinaryHeap<PairEntry>, tree: &SteinerTree, u: VertexId, v: VertexId| {
                let (a, b) = (u.min(v), u.max(v));
                let e = reduction_ratio(source, tree.pos(a), tree.pos(b));
                heap.push(PairEntry {
                    ratio: e.ratio,
                    steiner: e.steiner.location,
                    u: a,
                    v: b,
                });
            };
        for u in 1..=n {
            for v in (u + 1)..=n {
                push_pair(&mut heap, &tree, u, v);
            }
        }

        loop {
            let entry = loop {
                match heap.pop() {
                    None => break None,
                    Some(e) => {
                        if active[e.u] && active[e.v] && !dead_pairs.contains(&(e.u, e.v)) {
                            break Some(e);
                        }
                    }
                }
            };
            let Some(e) = entry else {
                for v in 1..tree.len() {
                    if active[v] {
                        tree.add_edge(tree.root(), v);
                        active[v] = false;
                    }
                }
                break;
            };

            let (u, v) = (e.u, e.v);
            let (pu, pv) = (tree.pos(u), tree.pos(v));
            let t = e.steiner;

            if t.almost_eq(source) {
                tree.add_edge(tree.root(), u);
                tree.add_edge(tree.root(), v);
                active[u] = false;
                active[v] = false;
            } else if t.almost_eq(pu) {
                tree.add_edge(u, v);
                active[v] = false;
            } else if t.almost_eq(pv) {
                tree.add_edge(v, u);
                active[u] = false;
            } else if let RadioRange::Aware(rr) = mode {
                let du = source.dist(pu);
                let dv = source.dist(pv);
                let spokes = du + dv;
                let via_t = t.dist(pu) + t.dist(pv);
                if du < rr && dv < rr {
                    dead_pairs.insert((u, v));
                } else if du < rr {
                    if rr + via_t > spokes {
                        dead_pairs.insert((u, v));
                    } else {
                        tree.add_edge(u, v);
                        active[v] = false;
                    }
                } else if dv < rr {
                    if rr + via_t > spokes {
                        dead_pairs.insert((u, v));
                    } else {
                        tree.add_edge(v, u);
                        active[u] = false;
                    }
                } else if source.dist(t) < rr && rr + via_t > spokes {
                    tree.add_edge(tree.root(), u);
                    tree.add_edge(tree.root(), v);
                    active[u] = false;
                    active[v] = false;
                } else {
                    create_virtual(&mut tree, &mut active, &mut heap, t, u, v, push_pair);
                }
            } else {
                create_virtual(&mut tree, &mut active, &mut heap, t, u, v, push_pair);
            }
        }
        tree
    }

    fn create_virtual(
        tree: &mut SteinerTree,
        active: &mut Vec<bool>,
        heap: &mut BinaryHeap<PairEntry>,
        t: Point,
        u: VertexId,
        v: VertexId,
        push_pair: impl Fn(&mut BinaryHeap<PairEntry>, &SteinerTree, VertexId, VertexId),
    ) {
        let w = tree.add_vertex(VertexKind::Virtual, t);
        tree.add_edge(w, u);
        tree.add_edge(w, v);
        active[u] = false;
        active[v] = false;
        active.push(true);
        for (i, &a) in active.iter().enumerate().take(w).skip(1) {
            if a {
                push_pair(heap, tree, w, i);
            }
        }
    }

    pub fn group_destinations(
        topo: &Topology,
        node: NodeId,
        dests: &[NodeId],
        radio_range_aware: bool,
        perimeter_entry: Option<Point>,
    ) -> Grouping {
        let here = topo.pos(node);
        let mode = if radio_range_aware {
            RadioRange::Aware(topo.radio_range())
        } else {
            RadioRange::Ignored
        };
        let dest_points: Vec<Point> = dests.iter().map(|&d| topo.pos(d)).collect();
        let mut tree = rrstr(here, &dest_points, mode);

        let mut queue: VecDeque<usize> = tree.children(tree.root()).to_vec().into();
        let mut out = Grouping::default();

        while let Some(pivot) = queue.pop_front() {
            loop {
                let terminal_idx = tree.terminals_in_subtree(pivot);
                if terminal_idx.is_empty() {
                    break;
                }
                let group: Vec<NodeId> = terminal_idx.iter().map(|&i| dests[i]).collect();
                let pivot_pos = tree.pos(pivot);
                if let Some(n) = find_next_hop(topo, node, pivot_pos, &group, perimeter_entry, None)
                {
                    out.covered.push(CoveredGroup {
                        dests: group,
                        next_hop: n,
                    });
                    break;
                }
                if tree.children(pivot).is_empty() {
                    if let VertexKind::Terminal(i) = tree.kind(pivot) {
                        out.voids.push(dests[i])
                    }
                    break;
                }
                let last = tree
                    .detach_last_child(pivot)
                    .expect("children checked non-empty");
                tree.reattach_to_root(last);
                queue.push_back(last);
                if tree.children(pivot).len() == 1 && tree.is_virtual(pivot) {
                    let only = tree.detach_last_child(pivot).expect("one child");
                    tree.reattach_to_root(only);
                    queue.push_back(only);
                    break;
                }
            }
        }
        out.voids.sort();
        out
    }
}

criterion_group!(benches, bench_decisions, bench_scratch_vs_fresh);
criterion_main!(benches);
