//! Section 4.2 — per-hop forwarding decision cost.
//!
//! The paper argues GMP's per-step complexity is `O(n² log n + n·m)`
//! (destinations × neighbors), comparable to LGS's `O(n² + n·m)` and far
//! below PBM's exponential subset search. These benchmarks measure one
//! forwarding decision at the source for each protocol across destination
//! counts at the paper's density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_baselines::{LgsRouter, PbmRouter};
use gmp_core::GmpRouter;
use gmp_net::Topology;
use gmp_sim::{MulticastPacket, MulticastTask, NodeContext, Protocol, SimConfig};

fn bench_decisions(c: &mut Criterion) {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 1);
    let mut group = c.benchmark_group("forwarding_decision");
    for k in [5usize, 15, 25] {
        let task = MulticastTask::random(&topo, k, 7);
        let ctx = NodeContext {
            topo: &topo,
            node: task.source,
            config: &config,
        };
        let packet = MulticastPacket::new(0, task.source, task.dests.clone());
        group.bench_with_input(BenchmarkId::new("GMP", k), &k, |b, _| {
            let mut p = GmpRouter::new();
            b.iter(|| p.on_packet(&ctx, packet.clone()));
        });
        group.bench_with_input(BenchmarkId::new("GMPnr", k), &k, |b, _| {
            let mut p = GmpRouter::without_radio_range_awareness();
            b.iter(|| p.on_packet(&ctx, packet.clone()));
        });
        group.bench_with_input(BenchmarkId::new("LGS", k), &k, |b, _| {
            let mut p = LgsRouter::new();
            b.iter(|| p.on_packet(&ctx, packet.clone()));
        });
        group.bench_with_input(BenchmarkId::new("PBM", k), &k, |b, _| {
            let mut p = PbmRouter::with_lambda(0.3);
            b.iter(|| p.on_packet(&ctx, packet.clone()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decisions);
criterion_main!(benches);
