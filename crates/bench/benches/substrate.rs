//! Substrate micro-benchmarks: topology construction, planarization, face
//! routing, and a full end-to-end GMP task at paper scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_core::GmpRouter;
use gmp_net::face::gpsr_route;
use gmp_net::planar::{planarize, PlanarKind};
use gmp_net::{NodeId, Topology};
use gmp_sim::{MulticastTask, SimConfig, TaskRunner};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    for n in [250usize, 500, 1000] {
        let config = SimConfig::paper().with_node_count(n);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| Topology::random(&config.topology_config(), 1))
        });
    }
    group.finish();
}

fn bench_planarize(c: &mut Criterion) {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 1);
    c.bench_function("planarize_gabriel_1000n", |b| {
        b.iter(|| planarize(&topo, PlanarKind::Gabriel))
    });
    c.bench_function("planarize_rng_1000n", |b| {
        b.iter(|| planarize(&topo, PlanarKind::RelativeNeighborhood))
    });
}

fn bench_routing(c: &mut Criterion) {
    let config = SimConfig::paper();
    let topo = Topology::random(&config.topology_config(), 1);
    c.bench_function("gpsr_unicast_1000n", |b| {
        b.iter(|| gpsr_route(&topo, PlanarKind::Gabriel, NodeId(3), NodeId(997), 500))
    });
    let mut group = c.benchmark_group("gmp_task");
    for k in [5usize, 15, 25] {
        let task = MulticastTask::random(&topo, k, 11);
        group.bench_with_input(BenchmarkId::new("end_to_end", k), &k, |b, _| {
            b.iter(|| {
                let mut router = GmpRouter::new();
                TaskRunner::new(&topo, &config).run(&mut router, &task)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topology, bench_planarize, bench_routing);
criterion_main!(benches);
