//! Tentpole regression guard for the event-loop overhaul: full-task
//! simulation throughput at the paper scale (1000 nodes, k = 25
//! destinations), with the collision model off and on. Every figure in the
//! paper is an average over thousands of simulated tasks, so this is the
//! number that bounds experiment turnaround; `results/BENCH_2.json`
//! (written by `experiments bench`) records the same workload untethered
//! from criterion for CI artifacts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gmp_core::GmpRouter;
use gmp_net::Topology;
use gmp_sim::{MulticastTask, SimConfig, SimScratch, TaskRunner};

fn bench_full_tasks(c: &mut Criterion) {
    let base = SimConfig::paper();
    let topo = Topology::random(&base.topology_config(), 1);
    let tasks: Vec<MulticastTask> = (0..16)
        .map(|i| MulticastTask::random(&topo, 25, 100 + i))
        .collect();
    let mut group = c.benchmark_group("sim_task");
    group.sample_size(20);
    for (label, config) in [
        ("collisions_off", base.clone()),
        (
            "collisions_on",
            base.clone()
                .with_collisions(true)
                .with_tx_jitter(0.005)
                .with_retransmissions(7),
        ),
    ] {
        let runner = TaskRunner::new(&topo, &config);
        group.bench_function(label, |b| {
            let mut router = GmpRouter::new();
            let mut scratch = SimScratch::new();
            // Warm the scratch to its high-water capacities so the
            // measurement sees the allocation-free steady state.
            for t in &tasks {
                let _ = runner.run_with_scratch(&mut router, t, 0, &mut scratch);
            }
            let mut i = 0usize;
            b.iter(|| {
                let t = &tasks[i % tasks.len()];
                i += 1;
                black_box(
                    runner
                        .run_with_scratch(&mut router, t, 0, &mut scratch)
                        .transmissions,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_tasks);
criterion_main!(benches);
