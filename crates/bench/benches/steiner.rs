//! Steiner-tree machinery micro-benchmarks: the `O(n² log n)` growth of
//! rrSTR (Section 4.2), the 3-point Fermat kernel, MST, and KMB.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmp_geom::fermat::fermat_point;
use gmp_geom::Point;
use gmp_steiner::kmb::kmb;
use gmp_steiner::mst::euclidean_mst;
use gmp_steiner::ratio::reduction_ratio;
use gmp_steiner::rrstr::{rrstr, RadioRange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..1000.0), rng.gen_range(0.0..1000.0)))
        .collect()
}

fn bench_fermat(c: &mut Criterion) {
    let pts = random_points(300, 3);
    c.bench_function("fermat_point", |b| {
        let mut i = 0;
        b.iter(|| {
            let f = fermat_point(pts[i % 100], pts[(i + 100) % 300], pts[(i + 200) % 300]);
            i += 1;
            f
        })
    });
    c.bench_function("reduction_ratio", |b| {
        let mut i = 0;
        b.iter(|| {
            let r = reduction_ratio(pts[i % 100], pts[(i + 100) % 300], pts[(i + 200) % 300]);
            i += 1;
            r
        })
    });
}

fn bench_rrstr(c: &mut Criterion) {
    let mut group = c.benchmark_group("rrstr");
    for n in [5usize, 10, 25, 50, 100] {
        let dests = random_points(n, n as u64);
        group.bench_with_input(BenchmarkId::new("aware", n), &n, |b, _| {
            b.iter(|| rrstr(Point::new(500.0, 500.0), &dests, RadioRange::Aware(150.0)))
        });
        group.bench_with_input(BenchmarkId::new("ignored", n), &n, |b, _| {
            b.iter(|| rrstr(Point::new(500.0, 500.0), &dests, RadioRange::Ignored))
        });
        // The audited O(n³) reference implementation: quantifies what the
        // priority queue buys (Section 4.2's complexity argument).
        if n <= 25 {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
                b.iter(|| {
                    gmp_steiner::reference::rrstr_reference(
                        Point::new(500.0, 500.0),
                        &dests,
                        RadioRange::Aware(150.0),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_mst_kmb(c: &mut Criterion) {
    let mut group = c.benchmark_group("trees");
    for n in [10usize, 25, 50] {
        let pts = random_points(n, 17 + n as u64);
        group.bench_with_input(BenchmarkId::new("euclidean_mst", n), &n, |b, _| {
            b.iter(|| euclidean_mst(&pts))
        });
    }
    // KMB over a 20×20 unit grid with 12 terminals.
    let cols = 20usize;
    let mut graph = vec![Vec::new(); cols * cols];
    for y in 0..cols {
        for x in 0..cols {
            let id = (y * cols + x) as u32;
            if x + 1 < cols {
                graph[id as usize].push((id + 1, 1.0));
                graph[(id + 1) as usize].push((id, 1.0));
            }
            if y + 1 < cols {
                graph[id as usize].push((id + cols as u32, 1.0));
                graph[(id + cols as u32) as usize].push((id, 1.0));
            }
        }
    }
    let terminals: Vec<u32> = (0..12).map(|i| (i * 33) % (cols * cols) as u32).collect();
    group.bench_function("kmb_grid_400v_12t", |b| b.iter(|| kmb(&graph, &terminals)));
    group.finish();
}

criterion_group!(benches, bench_fermat, bench_rrstr, bench_mst_kmb);
criterion_main!(benches);
