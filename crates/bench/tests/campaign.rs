//! Robustness-campaign invariants under pinned seeds.
//!
//! The headline acceptance bar: the delivery-guarantee oracle must report
//! **zero unjustified failures for GMP** across the crash sweep — every
//! destination GMP misses is one the faulted graph genuinely cut off.
//! GMP routes on the beacon-timeout liveness view, so it steers around
//! crashed relays; the crash-unaware baselines (SMT routes a tree frozen
//! at the source) leak unjustified failures as soon as the intensity is
//! non-zero, which is exactly the contrast BENCH_3 curves show.

use gmp_bench::campaign::{robustness_campaign, CampaignRow};
use gmp_bench::experiments::Scale;
use gmp_bench::protocols::ProtocolKind;
use gmp_sim::SimConfig;

fn sweep() -> Vec<CampaignRow> {
    let config = SimConfig::paper()
        .with_area_side(600.0)
        .with_node_count(250);
    let scale = Scale {
        networks: 2,
        tasks_per_network: 5,
        k_values: vec![8],
    };
    robustness_campaign(
        &config,
        &scale,
        &[ProtocolKind::Gmp, ProtocolKind::Smt],
        &[0.0, 0.1, 0.2],
        8,
    )
}

#[test]
fn gmp_has_zero_unjustified_failures_under_crashes() {
    let rows = sweep();
    assert_eq!(rows.len(), 6); // 3 intensities × 2 protocols
    for r in rows.iter().filter(|r| r.protocol == "GMP") {
        assert_eq!(
            r.unjustified_failures, 0,
            "oracle blames GMP at intensity {}: {r:?}",
            r.intensity
        );
    }
}

#[test]
fn zero_intensity_is_lossless_for_every_protocol() {
    let rows = sweep();
    for r in rows.iter().filter(|r| r.intensity == 0.0) {
        assert_eq!(r.delivery_ratio, 1.0, "{r:?}");
        assert_eq!(r.justified_failures, 0, "{r:?}");
        assert_eq!(r.unjustified_failures, 0, "{r:?}");
        assert_eq!(r.hop_overhead, 0.0, "{r:?}");
    }
}

#[test]
fn crash_unaware_baseline_leaks_unjustified_failures() {
    let rows = sweep();
    let smt_leaked: usize = rows
        .iter()
        .filter(|r| r.protocol == "SMT" && r.intensity > 0.0)
        .map(|r| r.unjustified_failures)
        .sum();
    assert!(
        smt_leaked > 0,
        "SMT routes a source-frozen tree; crashes must cost it reachable destinations"
    );
    // Justified losses are protocol-independent: the oracle judges the
    // graph, not the router, so GMP and SMT agree on them cell by cell.
    for r in &rows {
        let twin = rows
            .iter()
            .find(|o| o.intensity == r.intensity && o.protocol != r.protocol)
            .expect("both protocols present");
        assert_eq!(r.justified_failures, twin.justified_failures, "{r:?}");
    }
}
