//! The delivery-guarantee certificate for MCFR and GVG.
//!
//! The claim these protocols ship with — greedy-face-greedy on the live
//! planar subgraph delivers to every reachable destination — is
//! machine-checked here rather than argued in prose. The certificate
//! proptest throws randomized topologies (uniform, circle-void, and
//! rect-void generators), destination sets, and fault plans (t = 0
//! crashes and from-start blackouts) at both protocols and asserts,
//! against the BFS ground-truth oracle, that **every** failed destination
//! is justified (dead or graph-disconnected) and that no run hides
//! behind a truncated hop/event budget. The oracle itself is
//! independently certified by `gmp-faults`' `oracle_consistency` suite,
//! so the two test layers close the loop: the judge is checked, then the
//! protocols are checked against the judge.
//!
//! The remaining tests pin the properties the campaigns lean on:
//! bit-identical reports across repeat runs (scratch reuse is pure), an
//! inert timed event flipping the runner into liveness-mask mode without
//! changing a single bit (the live-filtered planarization parity
//! contract), and session-engine runs matching solo replays (MCFR/GVG
//! are safe to multiplex).

use gmp_baselines::{GvgRouter, McfrRouter};
use gmp_geom::Point;
use gmp_net::topology::{Hole, Topology, TopologyConfig};
use gmp_net::NodeId;
use gmp_service::{EngineProtocol, ServiceConfig, ServiceWorkload, SessionEngine, WorkloadParams};
use gmp_sim::{FaultPlan, FaultRegion, MulticastTask, Protocol, SimConfig, TaskRunner};
use proptest::prelude::*;

const SIDE: f64 = 800.0;

/// Fresh router for one of the two guaranteed-delivery protocols.
fn guaranteed(proto: usize) -> Box<dyn Protocol> {
    if proto == 0 {
        Box::new(McfrRouter::new())
    } else {
        Box::new(GvgRouter::new())
    }
}

/// Topology generator: uniform, circle void, or rect void.
fn make_topology(shape: usize, n: usize, seed: u64) -> Topology {
    let mut config = TopologyConfig::new(SIDE, n, 150.0);
    config = match shape {
        0 => config,
        1 => config.with_hole(Hole::Circle {
            center: Point::new(SIDE / 2.0, SIDE / 2.0),
            radius: 190.0,
        }),
        _ => config.with_hole(Hole::Rect(gmp_geom::Aabb::new(
            Point::new(200.0, 250.0),
            Point::new(600.0, 550.0),
        ))),
    };
    Topology::random(&config, seed)
}

/// Fault generator: none, t = 0 crashes, or a from-start blackout.
fn make_plan(fault: usize, n: usize, crash_frac: f64, seed: u64) -> FaultPlan {
    match fault {
        0 => FaultPlan::none(),
        1 => FaultPlan::random_crashes(n, crash_frac, 0.0, seed),
        _ => FaultPlan::none().with_blackout(
            FaultRegion::Rect {
                min: Point::new(0.0, 300.0),
                max: Point::new(350.0, 800.0),
            },
            0.0,
            1e9,
        ),
    }
}

/// A generous budget: FACE-1 void detours are long but finite, and the
/// certificate is meaningless if the runner truncates a walk — which is
/// why `truncated` is asserted false in every case.
fn certificate_config(n: usize, plan: FaultPlan) -> SimConfig {
    let mut config = SimConfig::paper()
        .with_area_side(SIDE)
        .with_node_count(n)
        .with_max_path_hops(20_000)
        .with_faults(plan);
    config.max_events = 2_000_000;
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The guarantee certificate: zero unjustified failures, no budget
    /// truncation, and bit-identical repeat runs, for both protocols on
    /// any generated topology/workload/fault combination.
    #[test]
    fn mcfr_and_gvg_never_fail_unjustified(
        topo_seed in 0u64..10_000,
        shape in 0usize..3,
        n in 120usize..260,
        k in 2usize..9,
        task_seed in 0u64..10_000,
        fault in 0usize..3,
        crash_frac in 0.0f64..0.3,
        crash_seed in 0u64..10_000,
    ) {
        let topo = make_topology(shape, n, topo_seed);
        let plan = make_plan(fault, n, crash_frac, crash_seed);
        let config = certificate_config(n, plan);
        let task = MulticastTask::random(&topo, k.min(topo.len() - 1), task_seed);
        let runner = TaskRunner::new(&topo, &config);

        for proto in 0..2usize {
            let mut router = guaranteed(proto);
            let report = runner.run(router.as_mut(), &task);
            prop_assert!(
                !report.truncated,
                "{} hit the hop/event budget (shape {shape}, fault {fault})",
                router.name()
            );
            let unjustified: Vec<_> = report.unjustified_failures().collect();
            prop_assert!(
                unjustified.is_empty(),
                "{} failed unjustified: {:?} (shape {shape}, fault {fault}, n {n})",
                router.name(),
                unjustified
            );
            // Determinism: the same router instance must reproduce the
            // report bit for bit — scratch reuse carries no state.
            let again = runner.run(router.as_mut(), &task);
            prop_assert_eq!(&report, &again, "{} is not deterministic", router.name());
        }
    }
}

/// A timed event aimed past the topology compiles to nothing, but its
/// presence flips the runner into liveness-mask mode (`ctx.alive` becomes
/// `Some(all-true)`). The reports must not move by a single bit: this
/// pins the contract that the live-filtered planarization and greedy
/// filters are bit-identical to their unfiltered (cached) counterparts
/// when every node is alive.
#[test]
fn inert_timed_event_changes_nothing() {
    for topo_seed in 0..3u64 {
        let topo = make_topology(topo_seed as usize % 3, 220, topo_seed);
        let task = MulticastTask::random(&topo, 8, 7 + topo_seed);
        let plain = certificate_config(220, FaultPlan::none());
        let inert = certificate_config(
            220,
            FaultPlan::none().with_crash(NodeId(topo.len() as u32), 5.0),
        );
        for proto in 0..2usize {
            let mut a = guaranteed(proto);
            let mut b = guaranteed(proto);
            let without = TaskRunner::new(&topo, &plain).run(a.as_mut(), &task);
            let with = TaskRunner::new(&topo, &inert).run(b.as_mut(), &task);
            assert_eq!(
                without,
                with,
                "{} diverged under an inert fault plan (seed {topo_seed})",
                a.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// MCFR/GVG keep their decisions pure under the concurrent session
    /// engine: every interleaved session's report is bit-identical to a
    /// solo replay, and the guarantee holds across the whole run.
    #[test]
    fn guaranteed_protocols_survive_the_session_engine(
        topo_seed in 0u64..4,
        workload_seed in 0u64..u64::MAX,
        proto in 0usize..2,
        capacity in 1usize..32,
    ) {
        let base = SimConfig::paper()
            .with_node_count(300)
            .with_max_path_hops(4000);
        let topo = Topology::random(&base.topology_config(), topo_seed);
        let candidates: Vec<NodeId> = (0..topo.len() as u32).map(NodeId).collect();
        // t = 0 crashes on a stride: the protocol's liveness view matches
        // the oracle's pessimistic graph, so the guarantee must hold.
        let mut plan = FaultPlan::none();
        for &node in candidates.iter().step_by(37).take(8) {
            plan = plan.with_crash(node, 0.0);
        }
        let config = base.with_faults(plan.clone());

        let params = WorkloadParams {
            groups: 5,
            members_per_group: 6,
            churn_updates: 30,
            sessions: 24,
            duration_s: 20.0,
            min_members: 2,
            max_members: 12,
            crash_detect_s: 10.0,
        };
        let workload = ServiceWorkload::random(&candidates, &params, &plan, workload_seed);

        let mut engine = SessionEngine::with_service(
            &topo,
            &config,
            ServiceConfig { max_in_flight: capacity },
        );
        let mut shared = guaranteed(proto);
        let run = engine.run(EngineProtocol::Shared(shared.as_mut()), &workload);
        prop_assert!(!run.outcomes.is_empty(), "workload produced no sessions");

        let runner = TaskRunner::new(&topo, &config);
        for outcome in &run.outcomes {
            prop_assert_eq!(
                outcome.report.unjustified_failures().count(),
                0,
                "{} session {} failed unjustified: {:?}",
                shared.name(),
                outcome.id,
                outcome.report.failed_dests
            );
            prop_assert!(!outcome.report.truncated);
            let mut solo = guaranteed(proto);
            let report = runner.run_seeded(solo.as_mut(), &outcome.task, outcome.seed);
            prop_assert_eq!(
                &outcome.report,
                &report,
                "{} session {} diverged from solo (capacity {})",
                shared.name(),
                outcome.id,
                capacity
            );
        }
    }
}
