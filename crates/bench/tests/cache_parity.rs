//! Satellite of the decision cache: a *populated* [`gmp_core::TreeCache`]
//! must never change a [`TaskReport`] bit-for-bit against a cold one.
//!
//! The harness runs every protocol twice over the same (config, task,
//! seed) matrix: **cold** — a fresh router per run, so GMP's decision
//! cache starts empty every time — and **warm** — one router reused
//! across the whole matrix, so GMP replays later tasks against a cache
//! populated by *earlier, different* configurations and fault plans.
//! The matrix deliberately interleaves a fault-free run with crash,
//! blackout, duty-cycle and Bernoulli-failure plans over the same tasks:
//! the warm cache first fills with all-alive decisions, then the faulted
//! replays hit the same fingerprints with flipped liveness bits and must
//! recompute (the exact-input check rejects the stored entries), then the
//! fault-free run comes back and must still serve the originals.
//!
//! The non-GMP protocols ride along to pin the broader contract the
//! benches rely on: reusing a protocol instance across tasks is
//! observationally identical to constructing it fresh.

use gmp_baselines::{DsmRouter, GrdRouter, LgkRouter, LgsRouter, PbmRouter, SmtRouter};
use gmp_core::GmpRouter;
use gmp_geom::Point;
use gmp_net::Topology;
use gmp_sim::{
    FaultPlan, FaultRegion, MulticastTask, Protocol, SimConfig, SimScratch, TaskReport, TaskRunner,
};
use proptest::prelude::*;

/// Every protocol in the workspace, freshly constructed.
fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![
        Box::new(GmpRouter::new()),
        Box::new(GrdRouter::new()),
        Box::new(LgsRouter::new()),
        Box::new(LgkRouter::default()),
        Box::new(DsmRouter::new()),
        Box::new(PbmRouter::new()),
        Box::new(SmtRouter::new()),
    ]
}

fn fresh(name: &str) -> Box<dyn Protocol> {
    protocols()
        .into_iter()
        .find(|p| p.name() == name)
        .expect("known protocol")
}

/// Fault-free plus the PR-5 fault families, all timed to fire inside a
/// task's first few airtimes (~1 ms each) so they actually flip liveness
/// mid-run.
fn configs(node_count: usize) -> Vec<(&'static str, SimConfig)> {
    let base = SimConfig::paper().with_node_count(node_count);
    vec![
        ("plain", base.clone()),
        (
            "crashes",
            base.clone()
                .with_faults(FaultPlan::random_crashes(node_count, 0.1, 0.002, 77)),
        ),
        (
            "blackout",
            base.clone().with_faults(FaultPlan::none().with_blackout(
                FaultRegion::Disk {
                    center: Point::new(500.0, 500.0),
                    radius: 300.0,
                },
                0.001,
                0.004,
            )),
        ),
        (
            "duty-cycle",
            base.clone()
                .with_faults(FaultPlan::none().with_duty_cycle(0.004, 0.6)),
        ),
        ("bernoulli", base.clone().with_node_failure_prob(0.1)),
        // Back to fault-free: the warm cache must still serve the
        // entries the faulted rounds were forbidden from using.
        ("plain-again", base),
    ]
}

fn assert_bit_identical(cold: &TaskReport, warm: &TaskReport, what: &str) {
    assert_eq!(cold, warm, "cold/warm reports diverged: {what}");
    assert_eq!(
        cold.energy_j.to_bits(),
        warm.energy_j.to_bits(),
        "energy bits diverged: {what}"
    );
    assert_eq!(
        cold.completion_time_s.to_bits(),
        warm.completion_time_s.to_bits(),
        "completion-time bits diverged: {what}"
    );
    for (a, b) in cold.link_times_s.iter().zip(&warm.link_times_s) {
        assert_eq!(a.to_bits(), b.to_bits(), "link-time bits diverged: {what}");
    }
}

fn run_matrix(topo: &Topology, tasks: &[MulticastTask], run_seed: u64) {
    let node_count = topo.len();
    let mut cold_scratch = SimScratch::new();
    for proto in protocols() {
        let name = proto.name();
        let mut warm = proto;
        let mut warm_scratch = SimScratch::new();
        for (config_name, config) in configs(node_count) {
            let runner = TaskRunner::new(topo, &config);
            for (task_i, task) in tasks.iter().enumerate() {
                let mut cold = fresh(&name);
                let cold_report =
                    runner.run_with_scratch(cold.as_mut(), task, run_seed, &mut cold_scratch);
                let warm_report =
                    runner.run_with_scratch(warm.as_mut(), task, run_seed, &mut warm_scratch);
                assert_bit_identical(
                    &cold_report,
                    &warm_report,
                    &format!("protocol {name} config {config_name} task {task_i} seed {run_seed}"),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn populated_cache_never_changes_reports(
        topo_seed in 0u64..100,
        task_seed in 0u64..1000,
        k in 2usize..12,
        run_seed in 0u64..6,
    ) {
        let config = SimConfig::paper().with_node_count(300);
        let topo = Topology::random(&config.topology_config(), topo_seed);
        let tasks: Vec<MulticastTask> = (0..2)
            .map(|i| MulticastTask::random(&topo, k, task_seed * 7 + i))
            .collect();
        run_matrix(&topo, &tasks, run_seed);
    }
}

/// The concurrent cache substituted for the private one: a
/// [`gmp_core::ConcurrentTreeCache`] shared across the whole
/// config × task matrix (including the faulted rounds, whose flipped
/// liveness bits must be rejected by the exact-input check and served
/// fresh) never changes a GMP report bit-for-bit against the cold
/// private-cache router.
#[test]
fn shared_concurrent_cache_never_changes_reports() {
    use std::sync::Arc;

    use gmp_core::{CacheConfig, ConcurrentTreeCache};

    let node_count = 300;
    let seed_config = SimConfig::paper().with_node_count(node_count);
    let topo = Topology::random(&seed_config.topology_config(), 11);
    let tasks: Vec<MulticastTask> = (0..3)
        .map(|i| MulticastTask::random(&topo, 4 + 3 * i as usize, 400 + i))
        .collect();

    let cache = Arc::new(ConcurrentTreeCache::with_config(CacheConfig::default()));
    let mut cold_scratch = SimScratch::new();
    let mut warm_scratch = SimScratch::new();
    // Two passes over the matrix: the second replays every task against a
    // cache fully populated by the first, so warm hits (not just misses)
    // are compared against the cold router.
    for pass in 0..2 {
        for (config_name, config) in configs(node_count) {
            let runner = TaskRunner::new(&topo, &config);
            for (task_i, task) in tasks.iter().enumerate() {
                let mut cold = GmpRouter::new();
                let cold_report = runner.run_with_scratch(&mut cold, task, 3, &mut cold_scratch);
                let mut shared = GmpRouter::with_shared_cache(Arc::clone(&cache));
                let shared_report =
                    runner.run_with_scratch(&mut shared, task, 3, &mut warm_scratch);
                assert_bit_identical(
                    &cold_report,
                    &shared_report,
                    &format!("concurrent cache, pass {pass} config {config_name} task {task_i}"),
                );
            }
        }
    }
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "second pass must be served from the shared cache: {stats:?}"
    );
    assert_eq!(
        stats.fallbacks, 0,
        "exact verification must never fail: {stats:?}"
    );
}

#[test]
fn populated_cache_parity_holds_under_paranoid_mode() {
    // With GMP_CACHE_PARANOID every warm hit recomputes the decision and
    // asserts the stored grouping identical — the run fails loudly if a
    // single served entry drifts from recomputation. Routers read the
    // variable at construction, and this file is its own test binary, so
    // setting it here cannot leak into other suites.
    std::env::set_var("GMP_CACHE_PARANOID", "1");
    let config = SimConfig::paper().with_node_count(300);
    let topo = Topology::random(&config.topology_config(), 31);
    let tasks: Vec<MulticastTask> = (0..2)
        .map(|i| MulticastTask::random(&topo, 9, 600 + i))
        .collect();
    run_matrix(&topo, &tasks, 1);
    std::env::remove_var("GMP_CACHE_PARANOID");
}
