//! Paper-scale TaskReport parity between the eager topology path and the
//! sharded lazy substrate, plus sanity for the scale-curve machinery.
//!
//! The load-bearing constraint of the million-node substrate is that it
//! changes *where nodes come from*, never *what routing does*: a 1000-node
//! deployment generated tile-by-tile and routed with GMP must produce
//! bit-identical [`gmp_sim::TaskReport`]s to the same positions fed through
//! the eager [`gmp_net::Topology`] constructor.

use gmp_bench::scale::assert_substrate_parity;
use gmp_core::GmpRouter;
use gmp_geom::{Aabb, Point};
use gmp_net::{ShardConfig, ShardedTopology};
use gmp_sim::{MulticastTask, RegionSim, SimConfig, SimScratch, TaskRunner};
use proptest::prelude::*;

#[test]
fn paper_scale_task_reports_are_bit_identical() {
    assert_substrate_parity(1000, 42, 10, 10);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn task_report_parity_across_seeds_and_group_sizes(
        seed in 0u64..200,
        k in 3usize..20,
    ) {
        assert_substrate_parity(600, seed, 3, k);
    }
}

/// Tasks drawn inside a window of a large network route exactly like the
/// same tasks on the full materialization: the region contains every node
/// a window task can touch (up to the margin), and node positions agree,
/// so the per-hop decisions — and hence the whole report — coincide.
#[test]
fn window_tasks_match_full_network_reports() {
    let st = ShardedTopology::new(ShardConfig::paper_density(10_000, 150.0), 5);
    let side = st.area().width();
    let window = Aabb::new(
        Point::new(side * 0.4, side * 0.4),
        Point::new(side * 0.4 + 1000.0, side * 0.4 + 1000.0),
    );
    let sim = RegionSim::new(&st, window, 300.0);
    let full = st.materialize_full();
    let config = SimConfig::paper();
    let region_runner = sim.runner(&config);
    let full_runner = TaskRunner::new(&full, &config);
    let mut scratch_a = SimScratch::new();
    let mut scratch_b = SimScratch::new();
    for t in 0..5 {
        let task = sim.random_task(10, 400 + t);
        let global_task = MulticastTask::new(
            sim.view().global(task.source),
            task.dests.iter().map(|&d| sim.view().global(d)).collect(),
        );
        let mut router_a = GmpRouter::new();
        let mut router_b = GmpRouter::new();
        let a = region_runner.run_with_scratch(&mut router_a, &task, 9, &mut scratch_a);
        let b = full_runner.run_with_scratch(&mut router_b, &global_task, 9, &mut scratch_b);
        // Node ids differ between the two frames, so compare the
        // id-independent outcome of every simulated event.
        assert_eq!(a.transmissions, b.transmissions, "task {t}");
        assert_eq!(a.energy_j, b.energy_j, "task {t}");
        assert_eq!(a.delivered_all(), b.delivered_all(), "task {t}");
    }
}
